"""repro — Adaptive QoS Management for Collaboration in Heterogeneous
Environments (IPPS 2002), a faithful open-source reproduction.

Public API highlights
---------------------
* :class:`repro.core.CollaborationFramework` — build a deployment:
  wired clients, base station, wireless clients.
* :mod:`repro.core` — profiles, selectors, contracts, policies, the
  inference engine, clients and the base station.
* :mod:`repro.messaging` — the semantic publisher/subscriber substrate.
* :mod:`repro.snmp` — from-scratch SNMP (BER codec, MIB, agent, manager).
* :mod:`repro.network` — the discrete-event packet network.
* :mod:`repro.wireless` — path loss, SIR (paper Eq. 1), power control.
* :mod:`repro.media` — progressive EZW image coding, sketch, description,
  synthetic speech, the information-transformer registry.
* :mod:`repro.hosts` — simulated workstations + SNMP extension agents.
* :mod:`repro.experiments` — the figure reproductions (FIG6–FIG10).
"""

from .core.framework import CollaborationFramework
from .core.profiles import ClientProfile, TransformRule
from .core.selectors import Selector
from .core.session import SessionDescriptor

__version__ = "1.0.0"

__all__ = [
    "CollaborationFramework",
    "ClientProfile",
    "TransformRule",
    "Selector",
    "SessionDescriptor",
    "__version__",
]
