"""Lock construction with opt-in sanitizer instrumentation.

Runtime layers (messaging, snmp) name their locks through
:func:`make_lock` so the lock-order sanitizer
(:mod:`repro.analysis.sanitizer`) can observe them during sanitized test
runs — and so the static verifier (:mod:`repro.analysis.concurrency`)
sees one recognisable construction idiom either way.

This indirection lives outside :mod:`repro.analysis` on purpose: the
analysis package imports :mod:`repro.core`, which imports the messaging
layer, so messaging importing the analysis package at module scope would
cycle.  Here the sanitizer is imported lazily, and only when
``REPRO_SANITIZE`` is set or the sanitizer module is already loaded —
an unsanitized process pays one ``dict`` lookup per lock construction
and holds plain ``threading`` locks.
"""

from __future__ import annotations

import os
import sys
import threading
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from .analysis.sanitizer import LockLike


def make_lock(name: str, *, reentrant: bool = False) -> "LockLike":
    """A named lock: sanitizer-tracked when sanitizing, plain otherwise."""
    mod = sys.modules.get("repro.analysis.sanitizer")
    if mod is None and os.environ.get("REPRO_SANITIZE"):
        from .analysis import sanitizer as mod  # type: ignore[no-redef]
    if mod is not None and mod.is_enabled():
        return mod.TrackedLock(name, reentrant=reentrant)
    return threading.RLock() if reentrant else threading.Lock()
