"""Compact binary wire codec for semantic messages.

A from-scratch, deterministic format (no pickle — the substrate must not
execute peer-controlled bytecode; no JSON — bodies are binary):

========== ==========================================================
section    encoding
========== ==========================================================
magic      ``b"SM"`` + version byte (1)
msg id     varstr sender + varint seq
kind       varstr
sender     varstr
selector   varstr (source text; receivers re-compile)
headers    varint count, then (varstr name, typed value) pairs
body       varint length + raw bytes
========== ==========================================================

Typed values: 1-byte tag then payload — ``s`` UTF-8 varstr, ``i`` zigzag
varint, ``f`` 8-byte IEEE754 big-endian, ``b`` 0/1, ``l`` varint count +
items (no nesting, matching the attribute model).
"""

from __future__ import annotations

import struct
from typing import Any

from ..core.attributes import AttributeValue
from ..core.matching_engine import compile_selector
from ..core.selectors import SelectorError
from .message import MessageId, SemanticMessage

__all__ = ["encode_message", "decode_message", "WireError"]

_MAGIC = b"SM"
_VERSION = 1


class WireError(ValueError):
    """Raised on corrupt or unsupported wire data."""


# ----------------------------------------------------------------------
# primitives
# ----------------------------------------------------------------------
def _write_varint(out: bytearray, value: int) -> None:
    if value < 0:
        raise WireError(f"varint must be non-negative, got {value}")
    while True:
        b = value & 0x7F
        value >>= 7
        if value:
            out.append(b | 0x80)
        else:
            out.append(b)
            return


def _read_varint(data: bytes, pos: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise WireError("truncated varint")
        b = data[pos]
        pos += 1
        result |= (b & 0x7F) << shift
        if not (b & 0x80):
            return result, pos
        shift += 7
        if shift > 63:
            raise WireError("varint too long")


def _zigzag(v: int) -> int:
    return (v << 1) ^ (v >> 63) if v < 0 else v << 1


def _unzigzag(v: int) -> int:
    return (v >> 1) ^ -(v & 1)


def _write_str(out: bytearray, s: str) -> None:
    raw = s.encode("utf-8")
    _write_varint(out, len(raw))
    out += raw


def _read_str(data: bytes, pos: int) -> tuple[str, int]:
    n, pos = _read_varint(data, pos)
    if pos + n > len(data):
        raise WireError("truncated string")
    raw = data[pos : pos + n]
    try:
        return raw.decode("utf-8"), pos + n
    except UnicodeDecodeError as exc:
        raise WireError("wire string is not valid UTF-8") from exc


def _write_value(out: bytearray, value: Any, allow_list: bool = True) -> None:
    if isinstance(value, bool):
        out += b"b"
        out.append(1 if value else 0)
    elif isinstance(value, int):
        out += b"i"
        _write_varint(out, _zigzag(value))
    elif isinstance(value, float):
        out += b"f"
        out += struct.pack(">d", value)
    elif isinstance(value, str):
        out += b"s"
        _write_str(out, value)
    elif isinstance(value, (list, tuple)) and allow_list:
        out += b"l"
        _write_varint(out, len(value))
        for item in value:
            _write_value(out, item, allow_list=False)
    else:
        raise WireError(f"unencodable header value: {value!r}")


def _read_value(data: bytes, pos: int, allow_list: bool = True) -> tuple[Any, int]:
    if pos >= len(data):
        raise WireError("truncated value tag")
    tag = data[pos : pos + 1]
    pos += 1
    if tag == b"b":
        if pos >= len(data):
            raise WireError("truncated bool")
        return data[pos] != 0, pos + 1
    if tag == b"i":
        v, pos = _read_varint(data, pos)
        return _unzigzag(v), pos
    if tag == b"f":
        if pos + 8 > len(data):
            raise WireError("truncated float")
        return struct.unpack(">d", data[pos : pos + 8])[0], pos + 8
    if tag == b"s":
        return _read_str(data, pos)
    if tag == b"l" and allow_list:
        n, pos = _read_varint(data, pos)
        items = []
        for _ in range(n):
            item, pos = _read_value(data, pos, allow_list=False)
            items.append(item)
        return items, pos
    raise WireError(f"unknown value tag {tag!r}")


# ----------------------------------------------------------------------
# message codec
# ----------------------------------------------------------------------
def encode_message(msg: SemanticMessage) -> bytes:
    """Serialize a :class:`SemanticMessage` to wire bytes."""
    out = bytearray(_MAGIC)
    out.append(_VERSION)
    _write_str(out, msg.msg_id.sender)
    _write_varint(out, msg.msg_id.seq)
    _write_str(out, msg.kind)
    _write_str(out, msg.sender)
    _write_str(out, msg.selector.text)
    _write_varint(out, len(msg.headers))
    for name in sorted(msg.headers):  # deterministic wire form
        _write_str(out, name)
        _write_value(out, msg.headers[name])
    _write_varint(out, len(msg.body))
    out += msg.body
    return bytes(out)


def decode_message(data: bytes) -> SemanticMessage:
    """Inverse of :func:`encode_message`."""
    if data[:2] != _MAGIC:
        raise WireError(f"bad magic {data[:2]!r}")
    if len(data) < 3 or data[2] != _VERSION:
        raise WireError("unsupported wire version")
    pos = 3
    id_sender, pos = _read_str(data, pos)
    seq, pos = _read_varint(data, pos)
    kind, pos = _read_str(data, pos)
    sender, pos = _read_str(data, pos)
    selector_text, pos = _read_str(data, pos)
    n_headers, pos = _read_varint(data, pos)
    headers: dict[str, AttributeValue] = {}
    for _ in range(n_headers):
        name, pos = _read_str(data, pos)
        value, pos = _read_value(data, pos)
        headers[name] = value
    body_len, pos = _read_varint(data, pos)
    if pos + body_len > len(data):
        raise WireError("truncated body")
    body = data[pos : pos + body_len]
    try:
        selector = compile_selector(selector_text)
    except SelectorError as exc:
        raise WireError(f"message carries an unparseable selector: {exc}") from exc
    return SemanticMessage(
        msg_id=MessageId(id_sender, seq),
        selector=selector,
        headers=headers,
        body=body,
        kind=kind,
        sender=sender,
    )
