"""Semantic publisher/subscriber messaging substrate.

Profile-addressed multicast with an RTP-thin reliability layer; in-process
(:class:`SemanticBus`) and networked (:class:`SemanticEndpoint`) flavours
share the receiver-side interpretation semantics.
"""

from .message import MessageId, SemanticMessage, next_message_id
from .serialization import WireError, decode_message, encode_message
from .rtp import (
    DEFAULT_MTU,
    RtcpReport,
    RtpError,
    RtpPacket,
    RtpPacketizer,
    RtpReassembler,
)
from .broker import BatchPublishResult, Delivery, PublishResult, SemanticBus, Subscription
from .sharded import ShardedSemanticBus, ShardSubscription, SlowSubscriberPolicy
from .transport import (
    BrokerAPI,
    BrokerLike,
    DatagramTransport,
    LoopbackUDP,
    SemanticEndpoint,
    SimTransport,
    Transport,
    make_broker,
)

__all__ = [
    "MessageId",
    "SemanticMessage",
    "next_message_id",
    "WireError",
    "decode_message",
    "encode_message",
    "DEFAULT_MTU",
    "RtcpReport",
    "RtpError",
    "RtpPacket",
    "RtpPacketizer",
    "RtpReassembler",
    "Delivery",
    "PublishResult",
    "BatchPublishResult",
    "SemanticBus",
    "Subscription",
    "ShardedSemanticBus",
    "ShardSubscription",
    "SlowSubscriberPolicy",
    "BrokerAPI",
    "BrokerLike",
    "make_broker",
    "Transport",
    "DatagramTransport",
    "SimTransport",
    "LoopbackUDP",
    "SemanticEndpoint",
]
