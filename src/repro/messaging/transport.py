"""Networked transport: semantic messages over RTP over pluggable datagram fabrics.

This is the client's *event communication module* wire path (paper
Sec. 5.3): outgoing messages are serialized, fragmented by the RTP-thin
layer and multicast; incoming fragments are reassembled, decoded, and
semantically interpreted against the local profile before anything
reaches the application.

The wire fabric is abstracted behind the :class:`Transport` protocol:

* :class:`SimTransport` — the default, riding the discrete-event
  simulator's multicast groups (:mod:`repro.network`);
* :class:`LoopbackUDP` — real OS UDP sockets on 127.0.0.1 with an
  explicit peer set, proving the stack is wire-real (poll-driven, no
  threads).

:class:`SemanticEndpoint` itself only ever touches the protocol surface
(``send`` / ``unicast`` / ``close`` / ``local_address``), so any object
implementing it plugs in via :meth:`SemanticEndpoint.over_transport`.

Unicast is also supported (base station ↔ wireless client legs).
"""

from __future__ import annotations

import socket as _socketlib
import struct
import zlib
from typing import Callable, Iterable, Optional, Protocol, runtime_checkable

from .._locks import make_lock
from ..core.matching import Decision, MatchResult, interpret
from ..core.profiles import ClientProfile
from ..network.clock import Scheduler
from ..network.multicast import MulticastGroup, MulticastSocket
from ..network.simnet import Network
from .broker import BatchPublishResult, Delivery, PublishResult, SemanticBus, Subscription
from .message import SemanticMessage
from .rtp import (
    DEFAULT_MTU,
    RetransmitBuffer,
    RtpError,
    RtpPacketizer,
    RtpReassembler,
    SelectiveRepeat,
    decode_nack,
    encode_nack,
    is_nack,
)
from .serialization import WireError, decode_message, encode_message

__all__ = [
    "Transport",
    "DatagramTransport",
    "BrokerAPI",
    "BrokerLike",
    "make_broker",
    "SimTransport",
    "LoopbackUDP",
    "SemanticEndpoint",
]

#: ``on_receive`` signature shared by every transport: (payload, (host, port)).
ReceiveCallback = Callable[[bytes, tuple[str, int]], None]


@runtime_checkable
class BrokerAPI(Protocol):
    """The broker contract every semantic dispatch backend satisfies.

    Previously implicit in :class:`~repro.messaging.broker.SemanticBus`'s
    concrete surface, now explicit so clients, the base station, and
    experiments can select a backend by *capability* rather than
    concrete class: the in-process
    :class:`~repro.messaging.broker.SemanticBus`, the partitioned
    :class:`~repro.messaging.sharded.ShardedSemanticBus`, and the
    networked :class:`SemanticEndpoint` all conform (use
    :func:`make_broker` to pick one by scale).

    Notes on semantics the protocol deliberately leaves backend-shaped:

    * ``publish``/``publish_many`` return :class:`PublishResult` /
      :class:`BatchPublishResult` on in-process buses; the networked
      endpoint — whose deliveries are decided remotely, at each
      receiver — returns sent-fragment counts (int-compatible, like
      ``PublishResult`` itself).
    * ``exclude`` suppresses sender loopback where loopback exists; a
      networked endpoint never re-receives its own sends, so it accepts
      and ignores the argument.
    """

    def attach(
        self, profile: ClientProfile, callback: Callable[[Delivery], None]
    ) -> Subscription: ...

    def detach(self, sub: Subscription) -> None: ...

    def publish(
        self, message: SemanticMessage, exclude: Optional[ClientProfile] = None
    ): ...

    def publish_many(self, messages: Iterable[SemanticMessage]): ...

    @property
    def subscribers(self) -> int: ...

    def stats(self) -> dict: ...


#: Alias matching the "unified BrokerLike API" naming used in docs.
BrokerLike = BrokerAPI


def make_broker(
    expected_subscribers: int = 0,
    *,
    shards: Optional[int] = None,
    indexed: bool = True,
    validate_profiles: bool = False,
    **sharded_options,
) -> BrokerAPI:
    """Pick an in-process broker backend by capability.

    ``shards`` (explicitly, or implied by an ``expected_subscribers``
    population large enough to want partitioning) selects the
    :class:`~repro.messaging.sharded.ShardedSemanticBus`; otherwise the
    plain :class:`~repro.messaging.broker.SemanticBus` is returned.
    Extra keyword options (``queue_capacity``, ``slow_policy``,
    ``workers``) pass through to the sharded backend.  For a
    *networked* broker, construct a :class:`SemanticEndpoint` — it
    satisfies the same :class:`BrokerAPI`.
    """
    from .sharded import ShardedSemanticBus

    if shards is None and expected_subscribers >= 10_000:
        shards = 8
    if shards is not None:
        return ShardedSemanticBus(
            shards=shards, validate_profiles=validate_profiles, **sharded_options
        )
    if sharded_options:
        raise TypeError(
            f"options {sorted(sharded_options)} require the sharded backend; pass shards="
        )
    return SemanticBus(indexed=indexed, validate_profiles=validate_profiles)


@runtime_checkable
class Transport(Protocol):
    """Group-capable datagram fabric the semantic endpoint runs over.

    Implementations deliver inbound datagrams by invoking the
    ``on_receive`` attribute (when set) with ``(data, (src_host, src_port))``.
    """

    on_receive: Optional[ReceiveCallback]

    @property
    def local_address(self) -> tuple[str, int]:
        """(host, port) peers can unicast replies to."""
        ...

    def send(self, data: bytes) -> int:
        """Fan ``data`` out to the whole group; returns datagrams sent."""
        ...

    def unicast(self, data: bytes, dest: tuple[str, int]) -> bool:
        """Point-to-point send; returns False when the datagram was dropped."""
        ...

    def close(self) -> None:
        """Release the underlying socket(s).  Idempotent."""
        ...


@runtime_checkable
class DatagramTransport(Protocol):
    """Point-to-point datagram surface (what the SNMP layers consume).

    :class:`repro.network.udp.DatagramSocket` satisfies this
    structurally; so would a thin wrapper over a real UDP socket.
    """

    on_receive: Optional[ReceiveCallback]
    port: Optional[int]

    def bind(self, port: int) -> None: ...

    def bind_ephemeral(self) -> int: ...

    def sendto(self, data: bytes, dest: tuple[str, int]) -> bool: ...

    def close(self) -> None: ...


class SimTransport:
    """:class:`Transport` over the simulated network's multicast fabric."""

    def __init__(
        self,
        network: Network,
        host: str,
        group: MulticastGroup,
        on_receive: Optional[ReceiveCallback] = None,
        loopback: bool = False,
    ) -> None:
        self.network = network
        self.host = host
        self.group = group
        self.on_receive = on_receive
        self._socket = MulticastSocket(
            network, host, group, on_receive=self._dispatch, loopback=loopback
        )
        self._closed = False

    @property
    def scheduler(self) -> Scheduler:
        """The simulator clock this transport runs on."""
        return self.network.scheduler

    @property
    def local_address(self) -> tuple[str, int]:
        return (self.host, self._socket.local_port)

    def _dispatch(self, data: bytes, src: tuple[str, int]) -> None:
        if self.on_receive is not None:
            self.on_receive(data, src)

    def send(self, data: bytes) -> int:
        if self._closed:
            raise RuntimeError("transport is closed")
        return self._socket.send(data)

    def unicast(self, data: bytes, dest: tuple[str, int]) -> bool:
        if self._closed:
            raise RuntimeError("transport is closed")
        return self._socket.unicast(data, dest)

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._socket.leave()


class LoopbackUDP:
    """:class:`Transport` over real OS UDP sockets on the loopback device.

    Group semantics are emulated with an explicit peer set: ``send``
    unicasts to every registered peer (multicast groups on loopback are
    not portable).  Reception is poll-driven — call :meth:`poll` to
    drain ready datagrams into ``on_receive`` — so no threads are
    involved and tests stay deterministic.
    """

    def __init__(
        self,
        peers: tuple[tuple[str, int], ...] = (),
        host: str = "127.0.0.1",
        port: int = 0,
        on_receive: Optional[ReceiveCallback] = None,
    ) -> None:
        self.on_receive = on_receive
        self._sock = _socketlib.socket(_socketlib.AF_INET, _socketlib.SOCK_DGRAM)
        self._sock.bind((host, port))
        self._sock.setblocking(False)
        self.peers: list[tuple[str, int]] = list(peers)
        self._closed = False
        self.sent_datagrams = 0
        self.received_datagrams = 0

    @property
    def local_address(self) -> tuple[str, int]:
        return self._sock.getsockname()

    def add_peer(self, addr: tuple[str, int]) -> None:
        """Register a peer to fan ``send`` out to (duplicates ignored)."""
        if addr not in self.peers:
            self.peers.append(addr)

    def send(self, data: bytes) -> int:
        if self._closed:
            raise RuntimeError("transport is closed")
        me = self.local_address
        n = 0
        for peer in self.peers:
            if peer == me:
                continue  # no self-loopback, matching multicast semantics
            self._sock.sendto(data, peer)
            n += 1
        self.sent_datagrams += n
        return n

    def unicast(self, data: bytes, dest: tuple[str, int]) -> bool:
        if self._closed:
            raise RuntimeError("transport is closed")
        self._sock.sendto(data, dest)
        self.sent_datagrams += 1
        return True

    def poll(self, max_datagrams: int = 64) -> int:
        """Drain up to ``max_datagrams`` ready datagrams; returns count."""
        drained = 0
        while drained < max_datagrams:
            try:
                data, src = self._sock.recvfrom(65535)
            except BlockingIOError:
                break
            except OSError:
                break
            drained += 1
            self.received_datagrams += 1
            if self.on_receive is not None:
                self.on_receive(data, src)
        return drained

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._sock.close()


class SemanticEndpoint:
    """One host's attachment of the semantic substrate to the network.

    Parameters
    ----------
    network, host, group:
        Where to attach; the endpoint joins ``group`` on ``host`` via a
        :class:`SimTransport`.  (Use :meth:`over_transport` to run on
        any other :class:`Transport`.)
    profile:
        The local profile all incoming messages are interpreted against.
    on_delivery:
        Application callback for accepted messages.
    promiscuous:
        When true, rejected messages are also surfaced (``on_rejected``) —
        the base station uses this to interpret *on behalf of* its
        wireless clients.
    nack:
        Opt-in selective retransmission: the endpoint keeps recently sent
        fragments in a :class:`~repro.messaging.rtp.RetransmitBuffer`,
        answers peers' NACKs with unicast retransmits, and on each expiry
        tick requests its own missing fragments from the last-seen source
        address (paced by :class:`~repro.messaging.rtp.SelectiveRepeat`'s
        bounded backoff).  Off by default: loss-free fabrics get zero
        overhead.
    """

    def __init__(
        self,
        network: Network,
        host: str,
        group: MulticastGroup,
        profile: ClientProfile,
        on_delivery: Callable[[Delivery], None],
        mtu: int = DEFAULT_MTU,
        expire_interval: float = 0.5,
        on_rejected: Optional[Callable[[SemanticMessage], None]] = None,
        promiscuous: bool = False,
        nack: bool = False,
    ) -> None:
        transport = SimTransport(network, host, group)
        self.network: Optional[Network] = network
        self._init_over(
            transport,
            profile,
            on_delivery,
            scheduler=network.scheduler,
            mtu=mtu,
            expire_interval=expire_interval,
            on_rejected=on_rejected,
            promiscuous=promiscuous,
            nack=nack,
        )

    @classmethod
    def over_transport(
        cls,
        transport: Transport,
        profile: ClientProfile,
        on_delivery: Callable[[Delivery], None],
        scheduler: Optional[Scheduler] = None,
        mtu: int = DEFAULT_MTU,
        expire_interval: float = 0.5,
        on_rejected: Optional[Callable[[SemanticMessage], None]] = None,
        promiscuous: bool = False,
        nack: bool = False,
    ) -> "SemanticEndpoint":
        """Build an endpoint on any :class:`Transport` implementation.

        Without a ``scheduler`` there is no periodic reassembly
        housekeeping — call :meth:`expire` yourself if partial messages
        can go stale (e.g. lossy real-socket runs).
        """
        self = cls.__new__(cls)
        self.network = getattr(transport, "network", None)
        self._init_over(
            transport,
            profile,
            on_delivery,
            scheduler=scheduler,
            mtu=mtu,
            expire_interval=expire_interval,
            on_rejected=on_rejected,
            promiscuous=promiscuous,
            nack=nack,
        )
        return self

    def _init_over(
        self,
        transport: Transport,
        profile: ClientProfile,
        on_delivery: Callable[[Delivery], None],
        scheduler: Optional[Scheduler],
        mtu: int,
        expire_interval: float,
        on_rejected: Optional[Callable[[SemanticMessage], None]],
        promiscuous: bool,
        nack: bool = False,
    ) -> None:
        self._transport = transport
        self.profile = profile
        self.on_delivery = on_delivery
        self.on_rejected = on_rejected
        self.promiscuous = promiscuous
        transport.on_receive = self._on_datagram
        host, port = transport.local_address
        self.host = host
        #: messages offered to the local subscriptions (backs the
        #: per-subscription accounting; every decoded message is an offer)
        self.published = 0
        self._attach_lock = make_lock("SemanticEndpoint._attach_lock")
        self._seq_counter = 1
        # the endpoint's own profile is its first local subscription —
        # extra co-located subscribers attach() alongside it and every
        # incoming message is interpreted per attached profile
        self._primary = Subscription(self, profile, self._deliver_primary, self._seq_counter)
        self._local_subs: list[Subscription] = [self._primary]
        ssrc = zlib.crc32(f"{host}:{port}".encode()) & 0xFFFFFFFF
        self._packetizer = RtpPacketizer(ssrc, mtu=mtu)
        self._reassembler = RtpReassembler(self._on_payload, clock=self._now)
        self.nack_enabled = nack
        self._retransmit: Optional[RetransmitBuffer] = RetransmitBuffer() if nack else None
        self._repair: Optional[SelectiveRepeat] = SelectiveRepeat() if nack else None
        #: last-seen unicast address per peer ssrc (NACK destination)
        self._sources: dict[int, tuple[str, int]] = {}
        self.scheduler: Optional[Scheduler] = scheduler
        self._expire_interval = expire_interval
        # the reassembler above always gets clock=self._now, so expire()
        # cannot hit the no-time-source RtpError path from this callback
        self._expire_event = (
            scheduler.call_after(expire_interval, self._expire_tick)  # repro: ignore[EXC002]
            if scheduler is not None
            else None
        )
        self._closed = False
        # observability
        self.sent_messages = 0
        self.sent_fragments = 0
        self.received_messages = 0
        self.accepted_messages = 0
        #: undecodable fragments/payloads dropped at the codec boundary
        self.decode_failures = 0
        # selective-retransmission observability (all zero when nack off)
        self.nacks_sent = 0
        self.nacks_received = 0
        self.retransmitted_fragments = 0

    @property
    def transport(self) -> Transport:
        """The fabric this endpoint sends and receives on."""
        return self._transport

    @property
    def ssrc(self) -> int:
        """This endpoint's RTP source identifier."""
        return self._packetizer.ssrc

    @property
    def address(self) -> tuple[str, int]:
        """(host, port) other endpoints can unicast to."""
        return self._transport.local_address

    # ------------------------------------------------------------------
    # local subscriptions (broker-API surface)
    # ------------------------------------------------------------------
    def _deliver_primary(self, delivery: Delivery) -> None:
        """Primary subscription callback: the application's handler."""
        self.on_delivery(delivery)

    def attach(
        self, profile: ClientProfile, callback: Callable[[Delivery], None]
    ) -> Subscription:
        """Attach a co-located subscriber to this endpoint.

        Every message arriving off the wire is interpreted against each
        attached profile (exactly as the in-process bus does), so one
        endpoint can serve several local consumers — e.g. apps sharing
        one host's group membership.  The endpoint's own profile is the
        first subscription; handles detach the usual way.
        """
        with self._attach_lock:
            self._seq_counter += 1
            sub = Subscription(self, profile, callback, self._seq_counter)
            self._local_subs.append(sub)
        return sub

    def _detach(self, sub: Subscription) -> None:
        """Bus-side removal (reached via ``Subscription.detach``)."""
        with self._attach_lock:
            try:
                self._local_subs.remove(sub)
            except ValueError:
                pass
            else:
                sub._frozen_rejected = sub.rejected

    def detach(self, sub: Subscription) -> None:
        """Detach ``sub`` from the endpoint (idempotent)."""
        sub.detach()

    @property
    def subscribers(self) -> int:
        """Locally attached subscriptions (incl. the endpoint's own)."""
        return len(self._local_subs)

    def stats(self) -> dict[str, object]:
        """Counters describing this endpoint (broker-API surface)."""
        return {
            "backend": "semantic-endpoint",
            "shards": 1,
            "subscribers": len(self._local_subs),
            "published": self.published,
            "sent_messages": self.sent_messages,
            "sent_fragments": self.sent_fragments,
            "received_messages": self.received_messages,
            "accepted_messages": self.accepted_messages,
            "decode_failures": self.decode_failures,
            "nacks_sent": self.nacks_sent,
            "nacks_received": self.nacks_received,
            "retransmitted_fragments": self.retransmitted_fragments,
        }

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    def publish(
        self, message: SemanticMessage, exclude: Optional[ClientProfile] = None
    ) -> int:
        """Multicast a message to the session; returns fragments sent.

        ``exclude`` exists for broker-API signature parity and is
        ignored: a networked endpoint never re-receives its own sends
        (multicast loopback is off), so there is nothing to suppress.
        """
        if self._closed:
            raise RuntimeError("endpoint is closed")
        wire = encode_message(message)
        fragments = self._packetizer.packetize(wire)
        if self._retransmit is not None:
            self._retransmit.store(fragments)
        for frag in fragments:
            self._transport.send(frag.encode())
        self.sent_messages += 1
        self.sent_fragments += len(fragments)
        return len(fragments)

    def publish_many(
        self,
        messages: Iterable[SemanticMessage],
        exclude: Optional[ClientProfile] = None,
        suppress_errors: bool = False,
    ) -> list[Optional[int]]:
        """Multicast a batch; returns per-message fragment counts.

        The unified batch entry point mirroring
        :meth:`SemanticBus.publish_many
        <repro.messaging.broker.SemanticBus.publish_many>` for the wire
        path.  With ``suppress_errors`` a message that cannot be
        encoded or fragmented yields ``None`` in its slot instead of
        aborting the rest of the batch (the base station's uplink
        forwarding uses this).
        """
        out: list[Optional[int]] = []
        for message in messages:
            try:
                out.append(self.publish(message))
            except (RtpError, WireError):
                if not suppress_errors:
                    raise
                out.append(None)
        return out

    def unicast(self, message: SemanticMessage, dest: tuple[str, int]) -> int:
        """Point-to-point send (BS → wireless client leg)."""
        if self._closed:
            raise RuntimeError("endpoint is closed")
        wire = encode_message(message)
        fragments = self._packetizer.packetize(wire)
        if self._retransmit is not None:
            self._retransmit.store(fragments)
        for frag in fragments:
            self._transport.unicast(frag.encode(), dest)
        self.sent_messages += 1
        self.sent_fragments += len(fragments)
        return len(fragments)

    # ------------------------------------------------------------------
    # receiving
    # ------------------------------------------------------------------
    def _now(self) -> float:
        return self.scheduler.clock.now if self.scheduler is not None else 0.0

    def _on_datagram(self, data: bytes, src: tuple[str, int]) -> None:
        if is_nack(data):
            self._on_nack(data, src)
            return
        if self.nack_enabled and len(data) >= 4:
            # remember where this source's traffic comes from so our own
            # NACKs have a unicast destination
            self._sources[struct.unpack_from(">I", data)[0]] = src
        try:
            self._reassembler.ingest(data, now=self._now())
        except RtpError:
            # a malformed fragment from the wire must not kill the loop
            self.decode_failures += 1
            self._warn_decode("dropped an undecodable RTP fragment")

    def _on_nack(self, data: bytes, src: tuple[str, int]) -> None:
        """Answer a peer's retransmission request from the send buffer."""
        try:
            ssrc, msg_seq, indices = decode_nack(data)
        except RtpError:
            self.decode_failures += 1
            self._warn_decode("dropped an undecodable NACK")
            return
        if self._retransmit is None or ssrc != self.ssrc:
            return  # not ours to answer (or repair disabled locally)
        self.nacks_received += 1
        for pkt in self._retransmit.fragments(msg_seq, indices):
            self._transport.unicast(pkt.encode(), src)
            self.retransmitted_fragments += 1

    def _on_payload(self, ssrc: int, payload: bytes) -> None:
        try:
            message = decode_message(payload)
        except WireError:
            self.decode_failures += 1
            self._warn_decode("dropped an undecodable message payload")
            return
        self.received_messages += 1
        headers = message.effective_headers()
        with self._attach_lock:
            self.published += 1  # one offer to every local subscription
            subs = list(self._local_subs)
        for sub in subs:
            result = interpret(message.selector, headers, sub.profile)
            if result.decision is Decision.REJECT:
                # promiscuous inspection only ever applied to the
                # endpoint's own profile; co-attached subscribers just
                # miss the message, as on the in-process bus
                if sub is self._primary and self.promiscuous and self.on_rejected is not None:
                    self.on_rejected(message)
                continue
            if result.decision is Decision.ACCEPT_WITH_TRANSFORM:
                sub.transformed += 1
            else:
                sub.accepted += 1
            if sub is self._primary:
                self.accepted_messages += 1
            sub.callback(Delivery(message, result))

    def _warn_decode(self, what: str) -> None:
        import warnings

        from ..analysis.diagnostics import DiagnosticWarning

        warnings.warn(f"endpoint {self.host}: {what}", DiagnosticWarning, stacklevel=3)

    def _repair_tick(self) -> None:
        """NACK every due hole toward its source's last-seen address."""
        if self._repair is None:
            return
        now = self._now()
        live: set[tuple[int, int]] = set()
        for ssrc, addr in self._sources.items():
            pending = self._reassembler.pending(ssrc)
            live.update((ssrc, msg_seq) for msg_seq, _ in pending)
            for msg_seq, missing in self._repair.due(ssrc, pending, now):
                self._transport.unicast(encode_nack(ssrc, msg_seq, missing), addr)
                self.nacks_sent += 1
        self._repair.prune(live)

    def _expire_tick(self) -> None:
        if self._closed or self.scheduler is None:
            return
        self._repair_tick()
        self._reassembler.expire()
        self._expire_event = self.scheduler.call_after(  # repro: ignore[EXC002]
            self._expire_interval, self._expire_tick
        )

    def expire(self) -> int:
        """Manually abandon stale partial messages (schedulerless runs).

        Runs the NACK repair pass first when enabled, so a lossy
        schedulerless run still gets selective retransmission by calling
        this periodically.
        """
        self._repair_tick()
        return self._reassembler.expire()

    # ------------------------------------------------------------------
    def reception_report(self, ssrc: int):
        """RTCP-style stats for a peer source."""
        return self._reassembler.report(ssrc)

    def close(self) -> None:
        """Leave the group and stop housekeeping."""
        if not self._closed:
            self._closed = True
            if self._expire_event is not None:
                self._expire_event.cancel()
            self._transport.close()
