"""Networked transport: semantic messages over RTP over simulated multicast.

This is the client's *event communication module* wire path (paper
Sec. 5.3): outgoing messages are serialized, fragmented by the RTP-thin
layer and multicast; incoming fragments are reassembled, decoded, and
semantically interpreted against the local profile before anything
reaches the application.

Unicast is also supported (base station ↔ wireless client legs).
"""

from __future__ import annotations

import zlib
from typing import Callable, Optional

from ..core.matching import Decision, MatchResult, interpret
from ..core.profiles import ClientProfile
from ..network.clock import Scheduler
from ..network.multicast import MulticastGroup, MulticastSocket
from ..network.simnet import Network
from .broker import Delivery
from .message import SemanticMessage
from .rtp import DEFAULT_MTU, RtpPacketizer, RtpReassembler
from .serialization import decode_message, encode_message

__all__ = ["SemanticEndpoint"]


class SemanticEndpoint:
    """One host's attachment of the semantic substrate to the network.

    Parameters
    ----------
    network, host, group:
        Where to attach; the endpoint joins ``group`` on ``host``.
    profile:
        The local profile all incoming messages are interpreted against.
    on_delivery:
        Application callback for accepted messages.
    promiscuous:
        When true, rejected messages are also surfaced (``on_rejected``) —
        the base station uses this to interpret *on behalf of* its
        wireless clients.
    """

    def __init__(
        self,
        network: Network,
        host: str,
        group: MulticastGroup,
        profile: ClientProfile,
        on_delivery: Callable[[Delivery], None],
        mtu: int = DEFAULT_MTU,
        expire_interval: float = 0.5,
        on_rejected: Optional[Callable[[SemanticMessage], None]] = None,
        promiscuous: bool = False,
    ) -> None:
        self.network = network
        self.host = host
        self.profile = profile
        self.on_delivery = on_delivery
        self.on_rejected = on_rejected
        self.promiscuous = promiscuous
        self._socket = MulticastSocket(network, host, group, on_receive=self._on_datagram)
        ssrc = zlib.crc32(f"{host}:{self._socket.local_port}".encode()) & 0xFFFFFFFF
        self._packetizer = RtpPacketizer(ssrc, mtu=mtu)
        self._reassembler = RtpReassembler(self._on_payload)
        self.scheduler: Scheduler = network.scheduler
        self._expire_interval = expire_interval
        self._expire_event = self.scheduler.call_after(expire_interval, self._expire_tick)
        self._closed = False
        # observability
        self.sent_messages = 0
        self.sent_fragments = 0
        self.received_messages = 0
        self.accepted_messages = 0

    @property
    def ssrc(self) -> int:
        """This endpoint's RTP source identifier."""
        return self._packetizer.ssrc

    @property
    def address(self) -> tuple[str, int]:
        """(host, port) other endpoints can unicast to."""
        return (self.host, self._socket.local_port)

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    def publish(self, message: SemanticMessage) -> int:
        """Multicast a message to the session; returns fragments sent."""
        if self._closed:
            raise RuntimeError("endpoint is closed")
        wire = encode_message(message)
        fragments = self._packetizer.packetize(wire)
        for frag in fragments:
            self._socket.send(frag.encode())
        self.sent_messages += 1
        self.sent_fragments += len(fragments)
        return len(fragments)

    def unicast(self, message: SemanticMessage, dest: tuple[str, int]) -> int:
        """Point-to-point send (BS → wireless client leg)."""
        if self._closed:
            raise RuntimeError("endpoint is closed")
        wire = encode_message(message)
        fragments = self._packetizer.packetize(wire)
        for frag in fragments:
            self._socket.unicast(frag.encode(), dest)
        self.sent_messages += 1
        self.sent_fragments += len(fragments)
        return len(fragments)

    # ------------------------------------------------------------------
    # receiving
    # ------------------------------------------------------------------
    def _on_datagram(self, data: bytes, src: tuple[str, int]) -> None:
        self._reassembler.ingest(data, now=self.scheduler.clock.now)

    def _on_payload(self, ssrc: int, payload: bytes) -> None:
        message = decode_message(payload)
        self.received_messages += 1
        result = interpret(message.selector, message.effective_headers(), self.profile)
        if result.decision is Decision.REJECT:
            if self.promiscuous and self.on_rejected is not None:
                self.on_rejected(message)
            return
        self.accepted_messages += 1
        self.on_delivery(Delivery(message, result))

    def _expire_tick(self) -> None:
        if self._closed:
            return
        self._reassembler.expire()
        self._expire_event = self.scheduler.call_after(self._expire_interval, self._expire_tick)

    # ------------------------------------------------------------------
    def reception_report(self, ssrc: int):
        """RTCP-style stats for a peer source."""
        return self._reassembler.report(ssrc)

    def close(self) -> None:
        """Leave the group and stop housekeeping."""
        if not self._closed:
            self._closed = True
            self._expire_event.cancel()
            self._socket.leave()
