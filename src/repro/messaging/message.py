"""Semantic messages: selector + headers + opaque body.

"Communications between the collaborating clients are ... state-based
multicast messages where a message is semantically enhanced to include a
sender-specified 'semantic-selector' in addition to the message body"
(paper Sec. 3).

``headers`` describe the *content* (media, encoding, modality, size) and
are what receiver interests / transform rules operate on; ``selector``
describes the *audience*.  The body is opaque bytes — image packets,
serialized events, text.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from ..core.attributes import AttributeValue
from ..core.matching_engine import compile_selector
from ..core.selectors import Selector

__all__ = ["SemanticMessage", "MessageId", "next_message_id"]

_counter = itertools.count(1)


@dataclass(frozen=True, order=True)
class MessageId:
    """Globally unique (within a run) message identity: (sender, seq)."""

    sender: str
    seq: int

    def __str__(self) -> str:
        return f"{self.sender}#{self.seq}"


def next_message_id(sender: str) -> MessageId:
    """Mint a fresh id; the shared counter keeps ids unique across senders."""
    return MessageId(sender, next(_counter))


@dataclass(frozen=True)
class SemanticMessage:
    """One state-based multicast message.

    Attributes
    ----------
    msg_id:
        Identity for fragmentation/reassembly and dedup.
    selector:
        Audience expression, evaluated against receiver profiles.
    headers:
        Content attributes, evaluated against receiver interests.
    body:
        Opaque payload bytes.
    kind:
        Application event type (``"chat"``, ``"image-share"``,
        ``"whiteboard"``, ``"profile-update"``, ...); also exposed to
        selectors via an implicit ``kind`` header.
    sender:
        Diagnostic label of the producing client (never used for routing).
    """

    msg_id: MessageId
    selector: Selector
    headers: dict[str, AttributeValue]
    body: bytes = b""
    kind: str = "event"
    sender: str = ""

    def effective_headers(self) -> dict[str, AttributeValue]:
        """Headers plus the implicit ``kind`` attribute."""
        out = dict(self.headers)
        out.setdefault("kind", self.kind)
        return out

    @property
    def size(self) -> int:
        """Body size in bytes."""
        return len(self.body)

    @classmethod
    def create(
        cls,
        sender: str,
        selector: Selector | str,
        headers: Optional[dict[str, AttributeValue]] = None,
        body: bytes = b"",
        kind: str = "event",
    ) -> "SemanticMessage":
        """Convenience constructor minting a fresh id.

        Selector strings are compiled through the process-wide LRU cache
        (:func:`repro.core.matching_engine.compile_selector`), so a hot
        selector is lexed/parsed once, not once per message.
        """
        sel = compile_selector(selector)
        return cls(
            msg_id=next_message_id(sender),
            selector=sel,
            headers=dict(headers or {}),
            body=body,
            kind=kind,
            sender=sender,
        )
