"""In-process semantic bus: the pub/sub substrate without a network.

Useful on its own (single-process collaboration, tests, the quickstart
example) and as the reference semantics the networked transport must
match: *delivery is decided at each receiver by interpreting the selector
against that receiver's current profile* — the bus holds no roster of
interests, only opaque endpoints to offer every message to.

Dispatch is accelerated by the :mod:`repro.core.matching_engine`: each
publish first shortlists candidate subscribers through the predicate
index, then runs the full interpreter only on the shortlist.  Decisions
are identical to a linear scan (the index only ever over-approximates);
construct the bus with ``indexed=False`` to force the linear path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Optional

from .._locks import make_lock
from ..core.matching import Decision, MatchResult, interpret
from ..core.matching_engine import MatchingEngine
from ..core.profiles import ClientProfile
from .message import SemanticMessage

__all__ = [
    "SemanticBus",
    "Delivery",
    "PublishResult",
    "BatchPublishResult",
    "Subscription",
]


@dataclass(frozen=True)
class Delivery:
    """What a subscriber's callback receives."""

    message: SemanticMessage
    result: MatchResult


@dataclass(frozen=True, eq=False)
class PublishResult:
    """Structured outcome of one :meth:`SemanticBus.publish`.

    ``delivered`` counts every accepted delivery (plain accepts *and*
    transformation-mediated ones); ``transformed`` is the subset that
    needed a transformation; ``rejected`` counts subscribers the message
    did not reach; ``candidates_checked`` is how many subscribers ran the
    full interpreter (the index's shortlist size); ``matched_via_index``
    tells whether the predicate index served this publish or the bus
    fell back to a linear scan.

    Compares equal to a bare ``int`` (the historical return type) so
    pre-existing callers like ``bus.publish(...) == 2`` keep working;
    use ``int(result)`` to get the delivery count explicitly.
    """

    delivered: int
    transformed: int
    rejected: int
    candidates_checked: int
    matched_via_index: bool

    def __int__(self) -> int:
        return self.delivered

    def __index__(self) -> int:
        return self.delivered

    def __bool__(self) -> bool:
        return self.delivered > 0

    def __eq__(self, other: object) -> bool:
        if isinstance(other, PublishResult):
            return (
                self.delivered,
                self.transformed,
                self.rejected,
                self.candidates_checked,
                self.matched_via_index,
            ) == (
                other.delivered,
                other.transformed,
                other.rejected,
                other.candidates_checked,
                other.matched_via_index,
            )
        if isinstance(other, int):
            return self.delivered == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.delivered)


@dataclass(frozen=True)
class BatchPublishResult:
    """Aggregated outcome of one :meth:`publish_many` call.

    Wraps the per-message :class:`PublishResult`\\ s (in submission
    order) and aggregates their counters, so callers write to one batch
    API regardless of backend.  ``shed`` and ``detached_slow`` are zero
    on the plain bus; backpressure-enforcing backends (the sharded
    broker) report deliveries dropped / subscribers detached by their
    :class:`~repro.messaging.sharded.SlowSubscriberPolicy` there.
    """

    results: tuple[PublishResult, ...]
    shed: int = 0
    detached_slow: int = 0

    @property
    def messages(self) -> int:
        return len(self.results)

    @property
    def delivered(self) -> int:
        return sum(r.delivered for r in self.results)

    @property
    def transformed(self) -> int:
        return sum(r.transformed for r in self.results)

    @property
    def rejected(self) -> int:
        return sum(r.rejected for r in self.results)

    @property
    def candidates_checked(self) -> int:
        return sum(r.candidates_checked for r in self.results)

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[PublishResult]:
        return iter(self.results)

    def __getitem__(self, i: int) -> PublishResult:
        return self.results[i]

    def __int__(self) -> int:
        return self.delivered

    def __bool__(self) -> bool:
        return self.delivered > 0


class Subscription:
    """Handle returned by :meth:`SemanticBus.attach`; detach to leave.

    ``seq`` is the attach ordinal the owning bus allocated (under its
    lock): it keeps indexed delivery order identical to the linear path.
    A class-level counter would be shared by every bus in the process —
    cross-bus interleavings and attach races would leak into it.
    """

    def __init__(
        self,
        bus: "SemanticBus",
        profile: ClientProfile,
        callback: Callable[[Delivery], None],
        seq: int,
    ) -> None:
        self.bus = bus
        self.profile = profile
        self.callback = callback
        self.active = True
        self._seq = seq  # attach order, for stable delivery order
        # per-subscriber observability
        self.accepted = 0
        self.transformed = 0
        self._offer_base = bus.published  # publishes that predate this subscription
        self._excluded = 0  # offers suppressed as sender loopback
        self._frozen_rejected: Optional[int] = None

    @property
    def rejected(self) -> int:
        """Messages offered to this subscriber that it did not receive.

        Derived rather than incremented: every publish offered to an
        attached subscriber ends in exactly one of accept / transform /
        reject, so the reject count is the remainder — which lets the
        indexed dispatch path skip non-candidates without touching them.
        """
        if self._frozen_rejected is not None:
            return self._frozen_rejected
        offered = self.bus.published - self._offer_base - self._excluded
        return offered - self.accepted - self.transformed

    def detach(self) -> None:
        """Leave the session (idempotent)."""
        if self.active:
            self.active = False
            self.bus._detach(self)


class SemanticBus:
    """Profile-addressed multicast dispatch.

    >>> from repro.core.profiles import ClientProfile
    >>> bus = SemanticBus()
    >>> got = []
    >>> p = ClientProfile("a", {"role": "medic"})
    >>> sub = bus.attach(p, lambda d: got.append(d.message.kind))
    >>> _ = bus.publish(SemanticMessage.create("b", "role == 'medic'", kind="alert"))
    >>> got
    ['alert']

    Parameters
    ----------
    indexed:
        When true (default) the bus maintains a predicate index over
        attached profiles and shortlists candidates per publish; when
        false every publish linearly interprets against every profile.
        Either way the delivery decisions are identical.
    validate_profiles:
        When true, every :meth:`attach` statically analyzes the profile
        (interest-selector satisfiability/vacuity, transform-rule lint —
        see :mod:`repro.analysis`) and emits a
        :class:`~repro.analysis.diagnostics.DiagnosticWarning` per
        finding.  Delivery behaviour is never changed: a diagnosable
        profile still attaches.
    """

    def __init__(self, indexed: bool = True, validate_profiles: bool = False) -> None:
        self._subs: list[Subscription] = []
        self.engine: Optional[MatchingEngine] = MatchingEngine() if indexed else None
        self.published = 0
        self.validate_profiles = validate_profiles
        # per-bus attach ordinal, allocated under the lock: two buses (or
        # two threads attaching to one bus) never contend on shared state
        self._seq_counter = 0
        self._attach_lock = make_lock("SemanticBus._attach_lock")
        # profile identity -> subscriptions, so sender-loopback exclusion
        # is O(subs sharing that profile) instead of a full-bus walk
        self._by_profile: dict[int, list[Subscription]] = {}

    def attach(self, profile: ClientProfile, callback: Callable[[Delivery], None]) -> Subscription:
        """Join the bus with a profile and a delivery callback."""
        if self.validate_profiles:
            self._warn_diagnosable(profile)
        with self._attach_lock:
            self._seq_counter += 1
            sub = Subscription(self, profile, callback, self._seq_counter)
            self._subs.append(sub)
            self._by_profile.setdefault(id(profile), []).append(sub)
            if self.engine is not None:
                self.engine.add(sub, profile)
        return sub

    @staticmethod
    def _warn_diagnosable(profile: ClientProfile) -> None:
        """Surface static-analysis findings for a profile as warnings."""
        import warnings

        from ..analysis import DiagnosticWarning, lint_profile

        for diag in lint_profile(profile):
            warnings.warn(diag.format(), DiagnosticWarning, stacklevel=3)

    def _detach(self, sub: Subscription) -> None:
        """Remove a subscription; safe to call more than once."""
        with self._attach_lock:
            try:
                self._subs.remove(sub)
            except ValueError:
                pass
            else:
                sub._frozen_rejected = sub.rejected  # stop tracking offers
                bucket = self._by_profile.get(id(sub.profile))
                if bucket is not None:
                    if sub in bucket:
                        bucket.remove(sub)
                    if not bucket:
                        del self._by_profile[id(sub.profile)]
            if self.engine is not None:
                self.engine.remove(sub)

    def detach(self, sub: Subscription) -> None:
        """Detach ``sub`` from the bus (idempotent; broker-API surface)."""
        sub.detach()

    @property
    def subscribers(self) -> int:
        return len(self._subs)

    def _plan_publish(
        self, message: SemanticMessage, exclude: Optional[ClientProfile]
    ) -> tuple[list[Subscription], int, int, bool]:
        """Admission stage of one publish, caller holds ``_attach_lock``.

        Returns ``(candidates, offered, excluded, via_index)`` computed
        against a consistent snapshot of the subscription list and the
        index — a concurrent :meth:`attach`/:meth:`Subscription.detach`
        can no longer skew ``rejected`` accounting or mutate the list
        mid-iteration (interpretation and delivery then run outside the
        lock, so callbacks may themselves attach or detach).
        """
        self.published += 1
        offered = len(self._subs)
        excluded = 0
        if exclude is not None:
            # O(subs sharing the sender's profile), not O(all subs)
            for sub in self._by_profile.get(id(exclude), ()):
                sub._excluded += 1
                excluded += 1
        shortlist = None
        via_index = False
        if self.engine is not None:
            sl = self.engine.shortlist(message.selector)
            shortlist, via_index = sl.keys, sl.via_index
        if shortlist is None:
            # linear fallback by design: disjunctions/negations defeat the
            # index, and the snapshot copy is what lets delivery run
            # outside the lock (callbacks may attach/detach)
            candidates = list(self._subs)  # repro: ignore[PERF001]
        else:
            # subscribers the index excluded are rejected without running
            # the interpreter — same outcome it would reach; attach order
            # keeps delivery order identical to the linear path
            candidates = sorted(shortlist, key=lambda s: s._seq)
        return candidates, offered, excluded, via_index

    def publish(
        self, message: SemanticMessage, exclude: Optional[ClientProfile] = None
    ) -> PublishResult:
        """Offer ``message`` to every endpoint; returns a :class:`PublishResult`.

        ``exclude`` suppresses sender loopback (a client does not
        re-receive its own events).
        """
        headers = message.effective_headers()
        with self._attach_lock:
            candidates, offered, excluded, via_index = self._plan_publish(message, exclude)
        delivered = transformed = checked = 0
        for sub in candidates:
            if exclude is not None and sub.profile is exclude:
                continue
            checked += 1
            result = interpret(message.selector, headers, sub.profile)
            if result.decision is Decision.REJECT:
                continue
            if result.decision is Decision.ACCEPT_WITH_TRANSFORM:
                sub.transformed += 1
                transformed += 1
            else:
                sub.accepted += 1
            delivered += 1
            sub.callback(Delivery(message, result))
        return PublishResult(
            delivered=delivered,
            transformed=transformed,
            rejected=offered - excluded - delivered,
            candidates_checked=checked,
            matched_via_index=via_index,
        )

    def publish_many(
        self,
        messages: Iterable[SemanticMessage],
        exclude: Optional[ClientProfile] = None,
    ) -> BatchPublishResult:
        """Publish a batch of messages; returns a :class:`BatchPublishResult`.

        Single-shard fallback semantics: messages are dispatched in
        submission order with decisions, per-message results, and
        delivery order identical to calling :meth:`publish` in a loop —
        the point is the *API*, so callers write to one batch entry
        point regardless of backend (see
        :class:`~repro.messaging.sharded.ShardedSemanticBus` for the
        backend that actually amortizes batch work).
        """
        return BatchPublishResult(
            results=tuple(self.publish(message, exclude=exclude) for message in messages)
        )

    def stats(self) -> dict[str, object]:
        """Counters describing this broker (broker-API surface)."""
        out: dict[str, object] = {
            "backend": "semantic-bus",
            "shards": 1,
            "subscribers": len(self._subs),
            "published": self.published,
            "indexed": self.engine is not None,
        }
        if self.engine is not None:
            out["indexed_publishes"] = self.engine.indexed_publishes
            out["linear_publishes"] = self.engine.linear_publishes
            out["reindexes"] = self.engine.reindexes
        return out
