"""In-process semantic bus: the pub/sub substrate without a network.

Useful on its own (single-process collaboration, tests, the quickstart
example) and as the reference semantics the networked transport must
match: *delivery is decided at each receiver by interpreting the selector
against that receiver's current profile* — the bus holds no roster of
interests, only opaque endpoints to offer every message to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..core.matching import Decision, MatchResult, interpret
from ..core.profiles import ClientProfile
from .message import SemanticMessage

__all__ = ["SemanticBus", "Delivery", "Subscription"]


@dataclass(frozen=True)
class Delivery:
    """What a subscriber's callback receives."""

    message: SemanticMessage
    result: MatchResult


class Subscription:
    """Handle returned by :meth:`SemanticBus.attach`; detach to leave."""

    def __init__(self, bus: "SemanticBus", profile: ClientProfile, callback: Callable[[Delivery], None]) -> None:
        self.bus = bus
        self.profile = profile
        self.callback = callback
        self.active = True
        # per-subscriber observability
        self.accepted = 0
        self.transformed = 0
        self.rejected = 0

    def detach(self) -> None:
        """Leave the session (idempotent)."""
        if self.active:
            self.bus._detach(self)
            self.active = False


class SemanticBus:
    """Profile-addressed multicast dispatch.

    >>> from repro.core.profiles import ClientProfile
    >>> bus = SemanticBus()
    >>> got = []
    >>> p = ClientProfile("a", {"role": "medic"})
    >>> sub = bus.attach(p, lambda d: got.append(d.message.kind))
    >>> _ = bus.publish(SemanticMessage.create("b", "role == 'medic'", kind="alert"))
    >>> got
    ['alert']
    """

    def __init__(self) -> None:
        self._subs: list[Subscription] = []
        self.published = 0

    def attach(self, profile: ClientProfile, callback: Callable[[Delivery], None]) -> Subscription:
        """Join the bus with a profile and a delivery callback."""
        sub = Subscription(self, profile, callback)
        self._subs.append(sub)
        return sub

    def _detach(self, sub: Subscription) -> None:
        self._subs.remove(sub)

    @property
    def subscribers(self) -> int:
        return len(self._subs)

    def publish(self, message: SemanticMessage, exclude: Optional[ClientProfile] = None) -> int:
        """Offer ``message`` to every endpoint; returns acceptances.

        ``exclude`` suppresses sender loopback (a client does not
        re-receive its own events).
        """
        self.published += 1
        delivered = 0
        headers = message.effective_headers()
        for sub in list(self._subs):
            if exclude is not None and sub.profile is exclude:
                continue
            result = interpret(message.selector, headers, sub.profile)
            if result.decision is Decision.REJECT:
                sub.rejected += 1
                continue
            if result.decision is Decision.ACCEPT_WITH_TRANSFORM:
                sub.transformed += 1
            else:
                sub.accepted += 1
            delivered += 1
            sub.callback(Delivery(message, result))
        return delivered
