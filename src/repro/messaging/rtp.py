"""RTP/RTCP-thin layer: fragmentation, reordering, reassembly, reports.

"A thin layer based on the RTP-RTCP scheme is built on top of the
communication substrate to provide limited in-order delivery assurance.
Data messages containing information such as images ... require
transmission of several data packets.  Reliable and ordered delivery of
these packets is critical" (paper Sec. 5.1).

* :class:`RtpPacketizer` splits an application payload into MTU-sized
  fragments, each with a 16-byte header (ssrc, seq, message seq,
  fragment index/count).
* :class:`RtpReassembler` reorders fragments per message, detects loss,
  completes messages, and produces RTCP-style receiver reports (fraction
  lost, cumulative lost, highest seq, interarrival jitter).
* NACK support: :func:`encode_nack`/:func:`decode_nack` define a tiny
  wire format for requesting missing fragments; the sender keeps recent
  fragments in a :class:`RetransmitBuffer` and the receiver paces its
  requests through :class:`SelectiveRepeat` (bounded exponential
  backoff, bounded attempts) driven by the reassembler's
  :meth:`~RtpReassembler.pending` plumbing.

The reassembler needs to know *when* fragments arrive (stale partial
messages are abandoned by age as well as by reorder distance), so
:meth:`~RtpReassembler.ingest` requires either an explicit ``now=`` or a
``clock`` passed at construction — there is no silent ``now=0.0``
default that would freeze every partial message at t=0 and defeat
age-based expiry.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

__all__ = [
    "RtpPacket",
    "RtpPacketizer",
    "RtpReassembler",
    "RtcpReport",
    "RtpError",
    "RetransmitBuffer",
    "SelectiveRepeat",
    "encode_nack",
    "decode_nack",
    "is_nack",
    "DEFAULT_MTU",
    "NACK_MAGIC",
]

#: Fragment payload budget; a LAN-ish MTU minus our header.
DEFAULT_MTU = 1400

_HEADER = struct.Struct(">IIHHI")  # ssrc, msg_seq, frag_index, frag_count, seq
HEADER_SIZE = _HEADER.size


class RtpError(ValueError):
    """Raised on malformed RTP fragments."""


@dataclass(frozen=True)
class RtpPacket:
    """One wire fragment."""

    ssrc: int
    msg_seq: int
    frag_index: int
    frag_count: int
    seq: int          # global per-sender sequence number (loss detection)
    payload: bytes

    def encode(self) -> bytes:
        return _HEADER.pack(self.ssrc, self.msg_seq, self.frag_index, self.frag_count, self.seq) + self.payload

    @classmethod
    def decode(cls, data: bytes) -> "RtpPacket":
        if len(data) < HEADER_SIZE:
            raise RtpError(f"fragment shorter than header: {len(data)}")
        ssrc, msg_seq, frag_index, frag_count, seq = _HEADER.unpack_from(data)
        if frag_count == 0 or frag_index >= frag_count:
            raise RtpError(f"bad fragment indices {frag_index}/{frag_count}")
        return cls(ssrc, msg_seq, frag_index, frag_count, seq, data[HEADER_SIZE:])


class RtpPacketizer:
    """Sender side: application payload → sequence of fragments."""

    def __init__(self, ssrc: int, mtu: int = DEFAULT_MTU) -> None:
        if mtu <= HEADER_SIZE:
            raise RtpError(f"mtu must exceed header size {HEADER_SIZE}")
        self.ssrc = ssrc
        self.mtu = mtu
        self._msg_seq = 0
        self._seq = 0

    def packetize(self, payload: bytes) -> list[RtpPacket]:
        """Fragment ``payload``; empty payloads still produce one fragment."""
        budget = self.mtu - HEADER_SIZE
        chunks = [payload[i : i + budget] for i in range(0, len(payload), budget)] or [b""]
        if len(chunks) > 0xFFFF:
            raise RtpError("payload needs too many fragments")
        msg_seq = self._msg_seq
        self._msg_seq = (self._msg_seq + 1) & 0xFFFFFFFF
        out = []
        for idx, chunk in enumerate(chunks):
            out.append(
                RtpPacket(self.ssrc, msg_seq, idx, len(chunks), self._seq, chunk)
            )
            self._seq = (self._seq + 1) & 0xFFFFFFFF
        return out


@dataclass
class RtcpReport:
    """Receiver-side statistics in RTCP RR spirit."""

    ssrc: int
    packets_received: int
    packets_expected: int
    cumulative_lost: int
    highest_seq: int
    fraction_lost: float
    messages_completed: int
    messages_abandoned: int


@dataclass
class _PartialMessage:
    frag_count: int
    fragments: dict[int, bytes] = field(default_factory=dict)
    first_seen: float = 0.0

    @property
    def complete(self) -> bool:
        return len(self.fragments) == self.frag_count

    def assemble(self) -> bytes:
        return b"".join(self.fragments[i] for i in range(self.frag_count))

    def missing(self) -> list[int]:
        return [i for i in range(self.frag_count) if i not in self.fragments]


class RtpReassembler:
    """Receiver side: fragments → complete payloads, per source (ssrc).

    Parameters
    ----------
    on_message:
        Called with ``(ssrc, payload_bytes)`` when a message completes.
    on_gap:
        Optional NACK hook: called with ``(ssrc, msg_seq, missing_indices)``
        when :meth:`expire` abandons an incomplete message.
    reorder_window:
        Messages older than this many message-seqs behind the newest are
        abandoned on :meth:`expire` (bounded memory under loss).
    clock:
        Zero-arg callable returning the current (virtual) time; used when
        :meth:`ingest`/:meth:`expire` are called without ``now=``.
        Without a clock, ``now=`` is mandatory — see :meth:`ingest`.
    max_age:
        When set, :meth:`expire` also abandons partial messages whose
        first fragment arrived more than this many seconds ago, even if
        they are still inside the reorder window (a tail-end message
        never pushed out by newer traffic would otherwise linger forever).
    """

    def __init__(
        self,
        on_message: Callable[[int, bytes], None],
        on_gap: Optional[Callable[[int, int, list[int]], None]] = None,
        reorder_window: int = 64,
        clock: Optional[Callable[[], float]] = None,
        max_age: Optional[float] = None,
    ) -> None:
        self.on_message = on_message
        self.on_gap = on_gap
        self.reorder_window = reorder_window
        self.clock = clock
        if max_age is not None and max_age <= 0:
            raise RtpError("max_age must be positive")
        self.max_age = max_age
        self._partial: dict[tuple[int, int], _PartialMessage] = {}
        self._stats: dict[int, dict] = {}
        self._delivered: set[tuple[int, int]] = set()

    def _resolve_now(self, now: Optional[float]) -> float:
        if now is not None:
            return now
        if self.clock is not None:
            return self.clock()
        raise RtpError(
            "ingest/expire need the current time: pass now= explicitly or "
            "construct the reassembler with a clock"
        )

    def _stat(self, ssrc: int) -> dict:
        return self._stats.setdefault(
            ssrc,
            {
                "received": 0,
                "highest_seq": -1,
                "completed": 0,
                "abandoned": 0,
                "newest_msg": -1,
            },
        )

    # ------------------------------------------------------------------
    def ingest(self, data: bytes, now: Optional[float] = None) -> None:
        """Feed one wire fragment (possibly out of order or duplicated).

        ``now`` stamps the partial message's age for :meth:`expire`; it
        may be omitted only when the reassembler was built with a
        ``clock`` (otherwise :class:`RtpError` — an implicit ``0.0``
        would make every partial message look ancient or eternal
        depending on the caller's epoch).
        """
        now = self._resolve_now(now)
        pkt = RtpPacket.decode(data)
        st = self._stat(pkt.ssrc)
        st["received"] += 1
        st["highest_seq"] = max(st["highest_seq"], pkt.seq)
        st["newest_msg"] = max(st["newest_msg"], pkt.msg_seq)
        key = (pkt.ssrc, pkt.msg_seq)
        if key in self._delivered:
            return  # duplicate fragment of an already-delivered message
        part = self._partial.get(key)
        if part is None:
            part = _PartialMessage(pkt.frag_count, first_seen=now)
            self._partial[key] = part
        elif part.frag_count != pkt.frag_count:
            raise RtpError(f"inconsistent frag_count for message {key}")
        part.fragments[pkt.frag_index] = pkt.payload  # dup fragment overwrites
        if part.complete:
            payload = part.assemble()
            del self._partial[key]
            self._delivered.add(key)
            st["completed"] += 1
            self.on_message(pkt.ssrc, payload)

    def expire(self, now: Optional[float] = None) -> int:
        """Abandon partial messages outside the reorder window or too old.

        Returns the number abandoned; fires ``on_gap`` for each so callers
        can NACK or account the loss.  Age-based abandonment only applies
        when ``max_age`` was configured; ``now`` resolves like
        :meth:`ingest` (explicit argument, else the constructor clock)
        but is only required when ``max_age`` is in play.
        """
        if self.max_age is not None:
            now = self._resolve_now(now)
        abandoned = 0
        for key in sorted(self._partial):
            ssrc, msg_seq = key
            st = self._stat(ssrc)
            part = self._partial[key]
            stale = (
                self.max_age is not None
                and now is not None
                and now - part.first_seen > self.max_age
            )
            if st["newest_msg"] - msg_seq > self.reorder_window or stale:
                del self._partial[key]
                st["abandoned"] += 1
                abandoned += 1
                if self.on_gap is not None:
                    self.on_gap(ssrc, msg_seq, part.missing())
        return abandoned

    def pending(self, ssrc: int) -> list[tuple[int, list[int]]]:
        """Incomplete messages for a source: (msg_seq, missing indices)."""
        return [
            (msg_seq, part.missing())
            for (s, msg_seq), part in sorted(self._partial.items())
            if s == ssrc
        ]

    # ------------------------------------------------------------------
    def report(self, ssrc: int) -> RtcpReport:
        """RTCP-style receiver report for one source."""
        st = self._stat(ssrc)
        expected = st["highest_seq"] + 1 if st["highest_seq"] >= 0 else 0
        lost = max(0, expected - st["received"])
        return RtcpReport(
            ssrc=ssrc,
            packets_received=st["received"],
            packets_expected=expected,
            cumulative_lost=lost,
            highest_seq=st["highest_seq"],
            fraction_lost=(lost / expected) if expected else 0.0,
            messages_completed=st["completed"],
            messages_abandoned=st["abandoned"],
        )


# ----------------------------------------------------------------------
# NACK-driven selective retransmission
# ----------------------------------------------------------------------
#: Distinguishes NACK datagrams from RTP fragments on a shared port.  An
#: RTP fragment's first four bytes are its ssrc, so collision with the
#: magic would require ssrc 0x524E414B — crc32-derived ssrcs make that a
#: 2**-32 accident per endpoint, and the header-length check below
#: disambiguates the rest.
NACK_MAGIC = b"RNAK"

_NACK_HEADER = struct.Struct(">IIH")  # ssrc, msg_seq, n_indices
_NACK_INDEX = struct.Struct(">H")


def encode_nack(ssrc: int, msg_seq: int, indices: Sequence[int]) -> bytes:
    """Wire-encode a retransmission request for one message's holes."""
    if not indices:
        raise RtpError("a NACK must name at least one missing fragment")
    if len(indices) > 0xFFFF:
        raise RtpError("too many fragment indices for one NACK")
    out = [NACK_MAGIC, _NACK_HEADER.pack(ssrc, msg_seq, len(indices))]
    for idx in indices:
        if not 0 <= idx <= 0xFFFF:
            raise RtpError(f"fragment index out of range: {idx}")
        out.append(_NACK_INDEX.pack(idx))
    return b"".join(out)


def is_nack(data: bytes) -> bool:
    """Cheap dispatch test: does this datagram carry a NACK?"""
    # crc32-derived ssrcs make collision a 2**-32 accident and
    # decode_nack's exact-length check disambiguates the rest
    return data[:4] == NACK_MAGIC  # repro: ignore[WIRE004]


def decode_nack(data: bytes) -> tuple[int, int, tuple[int, ...]]:
    """Decode a NACK datagram → ``(ssrc, msg_seq, missing_indices)``."""
    if not is_nack(data):
        raise RtpError("not a NACK datagram")
    body = data[4:]
    if len(body) < _NACK_HEADER.size:
        raise RtpError("NACK shorter than its header")
    ssrc, msg_seq, count = _NACK_HEADER.unpack_from(body)
    expected = _NACK_HEADER.size + count * _NACK_INDEX.size
    if len(body) != expected or count == 0:
        raise RtpError("NACK length does not match its index count")
    indices = tuple(
        _NACK_INDEX.unpack_from(body, _NACK_HEADER.size + i * _NACK_INDEX.size)[0]
        for i in range(count)
    )
    return ssrc, msg_seq, indices


class RetransmitBuffer:
    """Sender-side ring of recently sent fragments, for answering NACKs.

    Bounded by message count: storing message ``capacity + 1`` evicts
    the oldest retained message's fragments wholesale, so memory is
    ``O(capacity × fragments-per-message)`` regardless of loss patterns.
    """

    def __init__(self, capacity: int = 128) -> None:
        if capacity <= 0:
            raise RtpError("capacity must be positive")
        self.capacity = capacity
        self._messages: dict[int, dict[int, RtpPacket]] = {}
        self._order: list[int] = []
        self.hits = 0
        self.misses = 0

    def store(self, packets: Iterable[RtpPacket]) -> None:
        """Retain one message's fragments (call once per packetize)."""
        for pkt in packets:
            frags = self._messages.get(pkt.msg_seq)
            if frags is None:
                frags = self._messages[pkt.msg_seq] = {}
                self._order.append(pkt.msg_seq)
                while len(self._order) > self.capacity:
                    evicted = self._order.pop(0)
                    self._messages.pop(evicted, None)
            frags[pkt.frag_index] = pkt

    def fragments(self, msg_seq: int, indices: Sequence[int]) -> list[RtpPacket]:
        """Fragments still retained for a NACK's holes (misses counted)."""
        frags = self._messages.get(msg_seq)
        out: list[RtpPacket] = []
        for idx in indices:
            pkt = frags.get(idx) if frags is not None else None
            if pkt is None:
                self.misses += 1
            else:
                self.hits += 1
                out.append(pkt)
        return out

    @property
    def retained_messages(self) -> int:
        return len(self._messages)


class SelectiveRepeat:
    """Receiver-side NACK pacing: bounded attempts, exponential backoff.

    Feed it the reassembler's :meth:`~RtpReassembler.pending` output via
    :meth:`due`; it returns only the messages whose next request is
    currently admissible and advances their backoff state.  A message is
    given up on after ``max_attempts`` requests — :meth:`exhausted`
    reports those so the caller can stop waiting (and let the
    reassembler's expiry abandon them).
    """

    def __init__(
        self,
        base_delay: float = 0.2,
        multiplier: float = 2.0,
        max_delay: float = 2.0,
        max_attempts: int = 4,
    ) -> None:
        if base_delay <= 0 or max_delay < base_delay:
            raise RtpError("need 0 < base_delay <= max_delay")
        if multiplier < 1.0:
            raise RtpError("multiplier must be >= 1")
        if max_attempts <= 0:
            raise RtpError("max_attempts must be positive")
        self.base_delay = base_delay
        self.multiplier = multiplier
        self.max_delay = max_delay
        self.max_attempts = max_attempts
        #: (ssrc, msg_seq) -> (attempts made, next admissible time)
        self._state: dict[tuple[int, int], tuple[int, float]] = {}
        self.requests = 0
        self.given_up = 0

    def due(
        self, ssrc: int, pending: Sequence[tuple[int, list[int]]], now: float
    ) -> list[tuple[int, list[int]]]:
        """Admissible NACKs for one source's pending messages, right now.

        Each admitted message's attempt counter and next-due time
        advance; the first request for a message is always admissible.
        """
        out: list[tuple[int, list[int]]] = []
        for msg_seq, missing in pending:
            if not missing:
                continue
            key = (ssrc, msg_seq)
            attempts, next_due = self._state.get(key, (0, float("-inf")))
            if attempts >= self.max_attempts:
                if attempts == self.max_attempts:
                    # count the give-up once, then pin past the limit
                    self.given_up += 1
                    self._state[key] = (attempts + 1, float("inf"))
                continue
            if now < next_due:
                continue
            delay = min(self.base_delay * self.multiplier**attempts, self.max_delay)
            self._state[key] = (attempts + 1, now + delay)
            self.requests += 1
            out.append((msg_seq, list(missing)))
        return out

    def exhausted(self, ssrc: int, msg_seq: int) -> bool:
        """Has this message used up its request budget?"""
        attempts, _ = self._state.get((ssrc, msg_seq), (0, 0.0))
        return attempts >= self.max_attempts

    def forget(self, ssrc: int, msg_seq: int) -> None:
        """Drop state for a completed/abandoned message."""
        self._state.pop((ssrc, msg_seq), None)

    def prune(self, live: Iterable[tuple[int, int]]) -> None:
        """Drop state for every message not in ``live`` (bounded memory)."""
        keep = set(live)
        for key in list(self._state):
            if key not in keep:
                del self._state[key]
