"""RTP/RTCP-thin layer: fragmentation, reordering, reassembly, reports.

"A thin layer based on the RTP-RTCP scheme is built on top of the
communication substrate to provide limited in-order delivery assurance.
Data messages containing information such as images ... require
transmission of several data packets.  Reliable and ordered delivery of
these packets is critical" (paper Sec. 5.1).

* :class:`RtpPacketizer` splits an application payload into MTU-sized
  fragments, each with a 16-byte header (ssrc, seq, message seq,
  fragment index/count).
* :class:`RtpReassembler` reorders fragments per message, detects loss,
  completes messages, and produces RTCP-style receiver reports (fraction
  lost, cumulative lost, highest seq, interarrival jitter).
* Optional NACK support: the reassembler reports missing fragments so a
  caller can request retransmission (used by the image viewer when the
  inference engine demands full delivery of the accepted prefix).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Callable, Optional

__all__ = [
    "RtpPacket",
    "RtpPacketizer",
    "RtpReassembler",
    "RtcpReport",
    "RtpError",
    "DEFAULT_MTU",
]

#: Fragment payload budget; a LAN-ish MTU minus our header.
DEFAULT_MTU = 1400

_HEADER = struct.Struct(">IIHHI")  # ssrc, msg_seq, frag_index, frag_count, seq
HEADER_SIZE = _HEADER.size


class RtpError(ValueError):
    """Raised on malformed RTP fragments."""


@dataclass(frozen=True)
class RtpPacket:
    """One wire fragment."""

    ssrc: int
    msg_seq: int
    frag_index: int
    frag_count: int
    seq: int          # global per-sender sequence number (loss detection)
    payload: bytes

    def encode(self) -> bytes:
        return _HEADER.pack(self.ssrc, self.msg_seq, self.frag_index, self.frag_count, self.seq) + self.payload

    @classmethod
    def decode(cls, data: bytes) -> "RtpPacket":
        if len(data) < HEADER_SIZE:
            raise RtpError(f"fragment shorter than header: {len(data)}")
        ssrc, msg_seq, frag_index, frag_count, seq = _HEADER.unpack_from(data)
        if frag_count == 0 or frag_index >= frag_count:
            raise RtpError(f"bad fragment indices {frag_index}/{frag_count}")
        return cls(ssrc, msg_seq, frag_index, frag_count, seq, data[HEADER_SIZE:])


class RtpPacketizer:
    """Sender side: application payload → sequence of fragments."""

    def __init__(self, ssrc: int, mtu: int = DEFAULT_MTU) -> None:
        if mtu <= HEADER_SIZE:
            raise RtpError(f"mtu must exceed header size {HEADER_SIZE}")
        self.ssrc = ssrc
        self.mtu = mtu
        self._msg_seq = 0
        self._seq = 0

    def packetize(self, payload: bytes) -> list[RtpPacket]:
        """Fragment ``payload``; empty payloads still produce one fragment."""
        budget = self.mtu - HEADER_SIZE
        chunks = [payload[i : i + budget] for i in range(0, len(payload), budget)] or [b""]
        if len(chunks) > 0xFFFF:
            raise RtpError("payload needs too many fragments")
        msg_seq = self._msg_seq
        self._msg_seq = (self._msg_seq + 1) & 0xFFFFFFFF
        out = []
        for idx, chunk in enumerate(chunks):
            out.append(
                RtpPacket(self.ssrc, msg_seq, idx, len(chunks), self._seq, chunk)
            )
            self._seq = (self._seq + 1) & 0xFFFFFFFF
        return out


@dataclass
class RtcpReport:
    """Receiver-side statistics in RTCP RR spirit."""

    ssrc: int
    packets_received: int
    packets_expected: int
    cumulative_lost: int
    highest_seq: int
    fraction_lost: float
    messages_completed: int
    messages_abandoned: int


@dataclass
class _PartialMessage:
    frag_count: int
    fragments: dict[int, bytes] = field(default_factory=dict)
    first_seen: float = 0.0

    @property
    def complete(self) -> bool:
        return len(self.fragments) == self.frag_count

    def assemble(self) -> bytes:
        return b"".join(self.fragments[i] for i in range(self.frag_count))

    def missing(self) -> list[int]:
        return [i for i in range(self.frag_count) if i not in self.fragments]


class RtpReassembler:
    """Receiver side: fragments → complete payloads, per source (ssrc).

    Parameters
    ----------
    on_message:
        Called with ``(ssrc, payload_bytes)`` when a message completes.
    on_gap:
        Optional NACK hook: called with ``(ssrc, msg_seq, missing_indices)``
        when :meth:`expire` abandons an incomplete message.
    reorder_window:
        Messages older than this many message-seqs behind the newest are
        abandoned on :meth:`expire` (bounded memory under loss).
    """

    def __init__(
        self,
        on_message: Callable[[int, bytes], None],
        on_gap: Optional[Callable[[int, int, list[int]], None]] = None,
        reorder_window: int = 64,
    ) -> None:
        self.on_message = on_message
        self.on_gap = on_gap
        self.reorder_window = reorder_window
        self._partial: dict[tuple[int, int], _PartialMessage] = {}
        self._stats: dict[int, dict] = {}
        self._delivered: set[tuple[int, int]] = set()

    def _stat(self, ssrc: int) -> dict:
        return self._stats.setdefault(
            ssrc,
            {
                "received": 0,
                "highest_seq": -1,
                "completed": 0,
                "abandoned": 0,
                "newest_msg": -1,
            },
        )

    # ------------------------------------------------------------------
    def ingest(self, data: bytes, now: float = 0.0) -> None:
        """Feed one wire fragment (possibly out of order or duplicated)."""
        pkt = RtpPacket.decode(data)
        st = self._stat(pkt.ssrc)
        st["received"] += 1
        st["highest_seq"] = max(st["highest_seq"], pkt.seq)
        st["newest_msg"] = max(st["newest_msg"], pkt.msg_seq)
        key = (pkt.ssrc, pkt.msg_seq)
        if key in self._delivered:
            return  # duplicate fragment of an already-delivered message
        part = self._partial.get(key)
        if part is None:
            part = _PartialMessage(pkt.frag_count, first_seen=now)
            self._partial[key] = part
        elif part.frag_count != pkt.frag_count:
            raise RtpError(f"inconsistent frag_count for message {key}")
        part.fragments[pkt.frag_index] = pkt.payload  # dup fragment overwrites
        if part.complete:
            payload = part.assemble()
            del self._partial[key]
            self._delivered.add(key)
            st["completed"] += 1
            self.on_message(pkt.ssrc, payload)

    def expire(self) -> int:
        """Abandon partial messages outside the reorder window.

        Returns the number abandoned; fires ``on_gap`` for each so callers
        can NACK or account the loss.
        """
        abandoned = 0
        for key in sorted(self._partial):
            ssrc, msg_seq = key
            st = self._stat(ssrc)
            if st["newest_msg"] - msg_seq > self.reorder_window:
                part = self._partial.pop(key)
                st["abandoned"] += 1
                abandoned += 1
                if self.on_gap is not None:
                    self.on_gap(ssrc, msg_seq, part.missing())
        return abandoned

    def pending(self, ssrc: int) -> list[tuple[int, list[int]]]:
        """Incomplete messages for a source: (msg_seq, missing indices)."""
        return [
            (msg_seq, part.missing())
            for (s, msg_seq), part in sorted(self._partial.items())
            if s == ssrc
        ]

    # ------------------------------------------------------------------
    def report(self, ssrc: int) -> RtcpReport:
        """RTCP-style receiver report for one source."""
        st = self._stat(ssrc)
        expected = st["highest_seq"] + 1 if st["highest_seq"] >= 0 else 0
        lost = max(0, expected - st["received"])
        return RtcpReport(
            ssrc=ssrc,
            packets_received=st["received"],
            packets_expected=expected,
            cumulative_lost=lost,
            highest_seq=st["highest_seq"],
            fraction_lost=(lost / expected) if expected else 0.0,
            messages_completed=st["completed"],
            messages_abandoned=st["abandoned"],
        )
