"""Sharded batch-throughput semantic broker.

The plain :class:`~repro.messaging.broker.SemanticBus` keeps one
predicate index over every attached profile and dispatches one message
at a time.  That is fast for one bus, but "serves a million
subscribers" needs three things S-ToPSS-style semantic pub/sub practice
calls out (PAPERS.md):

* **partitioning** — the predicate index is split into shards keyed by
  *attribute signature* (the set of attribute names a profile carries at
  attach time).  Subscriptions land on the shard their signature hashes
  to; profiles with no attributes land in the catch-all shard 0.  At
  publish time a selector's :func:`~repro.core.selectors.required_attributes`
  are tested against each shard's attribute universe — a shard whose
  population carries none of a required attribute is skipped outright,
  including for selectors the per-shard index cannot serve (disjunctions,
  negations), which on the plain bus force a full-population linear scan;
* **batching** — :meth:`ShardedSemanticBus.publish_many` amortizes
  header materialization, selector compilation, and shortlist counting
  across a whole batch: each *distinct* selector is shortlisted once per
  touched shard, not once per message;
* **admission control** — every subscriber owns a bounded delivery
  queue.  When a batch overruns it, the configured
  :class:`SlowSubscriberPolicy` decides: ``BLOCK`` makes the publisher
  drain the backlog in order (backpressure), ``DROP_OLDEST`` sheds the
  subscriber's oldest pending delivery, ``DETACH`` evicts the slow
  subscriber from the bus.  Queue-depth highwater and shed counters are
  reported per subscription and in :meth:`ShardedSemanticBus.stats`.

Matching fans out on a per-shard worker pool (when more than one CPU is
available) and an **ordered merge** reassembles the per-shard decision
streams by ``(message index, attach ordinal)`` — so with the default
``BLOCK`` policy, deliveries are decision- *and order-identical* to
publishing the same messages one by one on a linear ``SemanticBus``.
Only the phase structure differs: a batch matches first, then delivers.
"""

from __future__ import annotations

import os
import zlib
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from enum import Enum
from heapq import merge as _ordered_merge
from typing import Callable, Iterable, Optional

from .._locks import make_lock
from ..core.matching import Decision, MatchResult, interpret
from ..core.matching_engine import MatchingEngine, compile_selector
from ..core.profiles import ClientProfile
from ..core.selectors import Selector
from .broker import BatchPublishResult, Delivery, PublishResult, Subscription
from .message import SemanticMessage

__all__ = ["ShardedSemanticBus", "ShardSubscription", "SlowSubscriberPolicy"]


class SlowSubscriberPolicy(Enum):
    """What to do when a subscriber's bounded delivery queue overruns."""

    #: Drain the backlog synchronously, in order — the publisher absorbs
    #: the cost (classic backpressure).  Delivery order stays identical
    #: to the linear bus; this is the default.
    BLOCK = "block"
    #: Shed the subscriber's *oldest* pending delivery and count it.
    DROP_OLDEST = "drop-oldest"
    #: Evict the subscriber from the bus; its pending deliveries are
    #: shed and it receives nothing further.
    DETACH = "detach"


class ShardSubscription(Subscription):
    """A :class:`~repro.messaging.broker.Subscription` plus its shard
    routing and bounded delivery queue."""

    def __init__(
        self,
        bus: "ShardedSemanticBus",
        profile: ClientProfile,
        callback: Callable[[Delivery], None],
        seq: int,
        shard: int,
    ) -> None:
        super().__init__(bus, profile, callback, seq)
        #: index of the shard this subscription's signature routed to
        self.shard = shard
        #: deliveries shed by the slow-subscriber policy
        self.shed = 0
        #: highwater mark of the pending-delivery queue
        self.max_queue_depth = 0
        self._queue: deque = deque()
        self._slow_detached = False

    @property
    def queue_depth(self) -> int:
        """Deliveries currently pending (nonzero only mid-batch)."""
        return len(self._queue)


class _Shard:
    """One partition: its own predicate index plus its members."""

    __slots__ = ("engine", "subs")

    def __init__(self) -> None:
        self.engine = MatchingEngine()
        self.subs: list[ShardSubscription] = []


def _signature_shard(signature: frozenset, nshards: int) -> int:
    """Stable shard id for an attribute-name signature.

    Profiles with no attributes (nothing to key on) land in the
    catch-all shard 0.
    """
    if not signature:
        return 0
    digest = zlib.crc32("\x00".join(sorted(signature)).encode("utf-8"))
    return digest % nshards

class ShardedSemanticBus:
    """Signature-sharded, batch-capable semantic broker.

    Satisfies the same :class:`~repro.messaging.transport.BrokerAPI`
    contract as :class:`~repro.messaging.broker.SemanticBus` — same
    attach/detach semantics, same :class:`PublishResult` accounting,
    decision- and order-identical deliveries under the default policy.

    Parameters
    ----------
    shards:
        Number of index partitions.  ``1`` degenerates to a single
        engine (still batch-capable).
    queue_capacity:
        Bound on each subscriber's pending-delivery queue within a
        batch; beyond it ``slow_policy`` applies.
    slow_policy:
        See :class:`SlowSubscriberPolicy`.
    workers:
        Worker threads for per-shard matching fan-out.  Defaults to
        ``min(shards, cpu_count)``; values ``<= 1`` run matching inline
        (the ordered merge makes either mode deterministic).
    validate_profiles:
        As on :class:`~repro.messaging.broker.SemanticBus`.
    """

    def __init__(
        self,
        shards: int = 8,
        queue_capacity: int = 1024,
        slow_policy: SlowSubscriberPolicy = SlowSubscriberPolicy.BLOCK,
        workers: Optional[int] = None,
        validate_profiles: bool = False,
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        self._shards = [_Shard() for _ in range(shards)]
        self.queue_capacity = queue_capacity
        self.slow_policy = slow_policy
        self.validate_profiles = validate_profiles
        self.published = 0
        self._size = 0
        self._seq_counter = 0
        self._attach_lock = make_lock("ShardedSemanticBus._attach_lock")
        self._by_profile: dict[int, list[ShardSubscription]] = {}
        if workers is None:
            workers = min(shards, os.cpu_count() or 1)
        self._workers = max(1, workers)
        self._pool: Optional[ThreadPoolExecutor] = None
        self._closed = False
        # observability
        self.batches = 0
        #: (selector, shard) pairs skipped by the required-attribute test,
        #: weighted by the number of messages they would have served
        self.shard_skips = 0
        self.shed_total = 0
        self.detached_slow = 0
        self.max_queue_depth = 0

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    @property
    def shards(self) -> int:
        return len(self._shards)

    @property
    def subscribers(self) -> int:
        return self._size

    def shard_sizes(self) -> tuple[int, ...]:
        """Current population of each shard (routing observability)."""
        return tuple(len(shard.subs) for shard in self._shards)

    def route(self, profile: ClientProfile) -> int:
        """The shard ``profile``'s current attribute signature maps to."""
        return _signature_shard(frozenset(profile.snapshot()), len(self._shards))

    def attach(
        self, profile: ClientProfile, callback: Callable[[Delivery], None]
    ) -> ShardSubscription:
        """Join the bus; the profile's signature picks its shard."""
        if self.validate_profiles:
            from .broker import SemanticBus

            SemanticBus._warn_diagnosable(profile)
        shard_id = self.route(profile)
        with self._attach_lock:
            self._seq_counter += 1
            sub = ShardSubscription(self, profile, callback, self._seq_counter, shard_id)
            shard = self._shards[shard_id]
            shard.subs.append(sub)
            self._by_profile.setdefault(id(profile), []).append(sub)
            self._size += 1
            shard.engine.add(sub, profile)
        return sub

    def _detach(self, sub: Subscription) -> None:
        """Bus-side removal (reached via ``Subscription.detach``)."""
        assert isinstance(sub, ShardSubscription)
        with self._attach_lock:
            shard = self._shards[sub.shard]
            try:
                shard.subs.remove(sub)
            except ValueError:
                pass
            else:
                sub._frozen_rejected = sub.rejected
                self._size -= 1
                bucket = self._by_profile.get(id(sub.profile))
                if bucket is not None:
                    if sub in bucket:
                        bucket.remove(sub)
                    if not bucket:
                        del self._by_profile[id(sub.profile)]
            shard.engine.remove(sub)

    def detach(self, sub: Subscription) -> None:
        """Detach ``sub`` from the bus (idempotent; broker-API surface)."""
        sub.detach()

    # ------------------------------------------------------------------
    # publishing
    # ------------------------------------------------------------------
    def publish(
        self, message: SemanticMessage, exclude: Optional[ClientProfile] = None
    ) -> PublishResult:
        """Single-message publish; a batch of one (same accounting as
        :meth:`SemanticBus.publish <repro.messaging.broker.SemanticBus.publish>`)."""
        return self.publish_many((message,), exclude=exclude).results[0]

    def publish_many(
        self,
        messages: Iterable[SemanticMessage],
        exclude: Optional[ClientProfile] = None,
    ) -> BatchPublishResult:
        """Batch publish: match per shard, merge ordered, deliver.

        Admission runs against a consistent snapshot taken when the
        batch starts: subscribers attached by delivery callbacks see
        only subsequent batches.  Deliveries are invoked on the calling
        thread in ``(message, attach-order)`` order — identical to a
        linear bus — with the slow-subscriber policy applied per
        subscriber queue.
        """
        msgs = list(messages)
        if not msgs:
            return BatchPublishResult(results=())
        n = len(msgs)
        # amortized per-message materialization, shared by every shard
        headers_list = [m.effective_headers() for m in msgs]
        selectors = [compile_selector(m.selector) for m in msgs]
        groups: dict[str, list[int]] = {}
        for i, sel in enumerate(selectors):
            groups.setdefault(sel.text, []).append(i)
        sel_of: dict[str, Selector] = {sel.text: sel for sel in selectors}

        with self._attach_lock:
            self.batches += 1
            self.published += n
            offered = self._size
            excluded = 0
            if exclude is not None:
                for ex_sub in self._by_profile.get(id(exclude), ()):
                    ex_sub._excluded += n
                    excluded += 1
            # matching completes under the attach lock, so shard
            # membership is frozen for the batch: hand the live lists to
            # the workers instead of copying O(population) per publish
            work = [
                (shard.engine, shard.subs)
                for shard in self._shards
                if shard.subs
            ]
            outputs = self._match_all(work, msgs, headers_list, selectors, sel_of, groups, exclude)

        # -------- ordered merge + admission-controlled delivery --------
        delivered = [0] * n
        transformed = [0] * n
        checked = [0] * n
        skipped = 0
        for _entries, shard_checked, shard_skipped in outputs:
            for i, c in enumerate(shard_checked):
                checked[i] += c
            skipped += shard_skipped
        self.shard_skips += skipped

        capacity = self.queue_capacity
        policy = self.slow_policy
        batch_shed = 0
        batch_detached = 0
        pending: list[list] = []
        cursor = 0
        merged = _ordered_merge(
            *(entries for entries, _c, _s in outputs), key=lambda e: (e[0], e[1])
        )
        for m, _seq, sub, result in merged:
            delivered[m] += 1
            if result.decision is Decision.ACCEPT_WITH_TRANSFORM:
                transformed[m] += 1
                sub.transformed += 1
            else:
                sub.accepted += 1
            if sub._slow_detached:
                sub.shed += 1
                batch_shed += 1
                continue
            entry = [sub, Delivery(msgs[m], result), True]
            pending.append(entry)
            sub._queue.append(entry)
            depth = len(sub._queue)
            if depth > sub.max_queue_depth:
                sub.max_queue_depth = depth
            if depth > self.max_queue_depth:
                self.max_queue_depth = depth
            if depth > capacity:
                if policy is SlowSubscriberPolicy.BLOCK:
                    # publisher absorbs the backlog: drain *everything*
                    # pending, in global order, so ordering is preserved
                    cursor = self._drain(pending, cursor)
                elif policy is SlowSubscriberPolicy.DROP_OLDEST:
                    oldest = sub._queue.popleft()
                    oldest[2] = False
                    sub.shed += 1
                    batch_shed += 1
                else:  # DETACH
                    dropped = len(sub._queue)
                    for e in sub._queue:
                        e[2] = False
                    sub._queue.clear()
                    sub.shed += dropped
                    batch_shed += dropped
                    sub._slow_detached = True
                    sub.detach()
                    batch_detached += 1
        self._drain(pending, cursor)
        self.shed_total += batch_shed
        self.detached_slow += batch_detached

        results = tuple(
            PublishResult(
                delivered=delivered[i],
                transformed=transformed[i],
                rejected=offered - excluded - delivered[i],
                candidates_checked=checked[i],
                matched_via_index=selectors[i].conjunctive_plan() is not None,
            )
            for i in range(n)
        )
        return BatchPublishResult(
            results=results, shed=batch_shed, detached_slow=batch_detached
        )

    @staticmethod
    def _drain(pending: list[list], cursor: int) -> int:
        """Deliver every live pending entry from ``cursor`` on, in order."""
        i = cursor
        while i < len(pending):
            sub, delivery, live = pending[i]
            if live:
                sub._queue.popleft()
                sub.callback(delivery)
            i += 1
        return i

    # ------------------------------------------------------------------
    # per-shard matching
    # ------------------------------------------------------------------
    def _match_all(
        self,
        work: list,
        msgs: list[SemanticMessage],
        headers_list: list[dict],
        selectors: list[Selector],
        sel_of: dict[str, Selector],
        groups: dict[str, list[int]],
        exclude: Optional[ClientProfile],
    ) -> list[tuple[list, list[int], int]]:
        """Run :meth:`_match_shard` over every populated shard.

        Fan-out uses the worker pool when configured with more than one
        worker; the caller holds the attach lock either way, so the
        per-shard engines and membership lists are frozen for the batch.
        """
        if len(work) <= 1 or self._workers <= 1 or self._closed:
            return [
                self._match_shard(engine, subs, msgs, headers_list, selectors, sel_of, groups, exclude)
                for engine, subs in work
            ]
        pool = self._ensure_pool()
        futures = [
            pool.submit(
                self._match_shard, engine, subs, msgs, headers_list, selectors, sel_of, groups, exclude
            )
            for engine, subs in work
        ]
        return [f.result() for f in futures]

    @staticmethod
    def _match_shard(
        engine: MatchingEngine,
        subs: list[ShardSubscription],
        msgs: list[SemanticMessage],
        headers_list: list[dict],
        selectors: list[Selector],
        sel_of: dict[str, Selector],
        groups: dict[str, list[int]],
        exclude: Optional[ClientProfile],
    ) -> tuple[list, list[int], int]:
        """Decision stream of one shard for the whole batch.

        Returns ``(entries, checked, skipped)`` where ``entries`` is a
        ``(msg_index, attach_seq, sub, result)`` list sorted by
        ``(msg_index, attach_seq)`` (feeds the ordered merge),
        ``checked[i]`` counts interpreter runs for message ``i``, and
        ``skipped`` counts messages this shard never looked at thanks to
        the required-attribute test.
        """
        engine.flush()
        universe = engine.attribute_universe()
        # one shortlist per *distinct* selector per shard, not per message
        cand_of: dict[str, Optional[list[ShardSubscription]]] = {}
        skipped = 0
        for text, midxs in groups.items():
            sel = sel_of[text]
            required = sel.required_attributes()
            if required and not required <= universe:
                # no profile in this shard carries a required attribute:
                # every member rejects, without running the interpreter —
                # this also covers selectors the index cannot serve
                cand_of[text] = None
                skipped += len(midxs)
                continue
            shortlist = engine.shortlist(sel)
            if shortlist.keys is None:
                cand_of[text] = subs  # linear fallback, shard-local only
            else:
                cand_of[text] = sorted(shortlist.keys, key=lambda s: s._seq)
        entries: list = []
        checked = [0] * len(msgs)
        for m, sel in enumerate(selectors):
            candidates = cand_of[sel.text]
            if not candidates:
                continue
            headers = headers_list[m]
            n_checked = 0
            for sub in candidates:
                if exclude is not None and sub.profile is exclude:
                    continue
                n_checked += 1
                result: MatchResult = interpret(sel, headers, sub.profile)
                if result.decision is Decision.REJECT:
                    continue
                entries.append((m, sub._seq, sub, result))
            checked[m] = n_checked
        return entries, checked, skipped

    # ------------------------------------------------------------------
    # lifecycle / observability
    # ------------------------------------------------------------------
    def _ensure_pool(self) -> ThreadPoolExecutor:
        # Lazy init is *double-checked* by construction: every caller
        # (only ``_match_all``) already holds ``_attach_lock``, so the
        # None test and the assignment are one critical section.  The
        # ``_closed`` test is likewise lock-protected, making a
        # close()/publish race impossible rather than merely unlikely.
        if self._closed:
            raise RuntimeError("bus is closed")
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self._workers, thread_name_prefix="shard-match"
            )
        return self._pool

    def close(self) -> None:
        """Shut the matching worker pool down.  Idempotent; the bus
        still publishes afterwards (inline matching)."""
        with self._attach_lock:
            self._closed = True
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def stats(self) -> dict[str, object]:
        """Counters describing this broker (broker-API surface)."""
        return {
            "backend": "sharded-semantic-bus",
            "shards": len(self._shards),
            "shard_sizes": self.shard_sizes(),
            "subscribers": self._size,
            "published": self.published,
            "batches": self.batches,
            "indexed": True,
            "workers": self._workers,
            "queue_capacity": self.queue_capacity,
            "slow_policy": self.slow_policy.value,
            "shard_skips": self.shard_skips,
            "shed": self.shed_total,
            "detached_slow": self.detached_slow,
            "max_queue_depth": self.max_queue_depth,
        }
