"""Headless collaboration applications: chat area, whiteboard, image viewer."""

from .chat import ChatArea, ChatLine
from .whiteboard import Whiteboard
from .imageviewer import ImageViewer, ViewedImage

__all__ = ["ChatArea", "ChatLine", "Whiteboard", "ImageViewer", "ViewedImage"]
