"""Image viewer: the application the paper's wired experiments measure.

Sender side: encodes an image progressively, emits an announce (with the
verbal description in-band) followed by the image packets.

Receiver side: accepts at most ``packet_budget`` packets per image — the
budget is set by the inference engine from SNMP-observed system state —
reconstructs from the usable prefix, and records the paper's metrics
(packets, BPP, compression ratio) per image.  FIG6/FIG7 read these
records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..core.events import ImagePacketEvent, ImageShareAnnounce
from ..media.describe import describe_image
from ..media.progressive import ImagePacket, ProgressiveImage, ReceivedImage, ReceptionReport

__all__ = ["ImageViewer", "ViewedImage"]


@dataclass
class ViewedImage:
    """Receiver-side record of one shared image."""

    image_id: str
    announce: ImageShareAnnounce
    assembly: ReceivedImage
    packets_offered: int = 0
    packets_accepted: int = 0
    original: Optional[np.ndarray] = None  # set in loopback/experiment mode

    def report(self) -> ReceptionReport:
        """Current reconstruction metrics."""
        return self.assembly.report(original=self.original)


class ImageViewer:
    """One client's image viewer instance."""

    def __init__(self, owner: str, n_packets: int = 16, target_bpp: Optional[float] = 2.2) -> None:
        self.owner = owner
        self.n_packets = n_packets
        self.target_bpp = target_bpp
        #: set by the inference engine; packets beyond this are dropped
        self.packet_budget = n_packets
        self.viewed: dict[str, ViewedImage] = {}
        self.shared: dict[str, ProgressiveImage] = {}
        self._pre_announce: dict[str, list[ImagePacketEvent]] = {}

    # ------------------------------------------------------------------
    # sender side
    # ------------------------------------------------------------------
    def share(
        self, image_id: str, image: np.ndarray, target_bpp: Optional[float] = None
    ) -> tuple[ImageShareAnnounce, list[ImagePacketEvent]]:
        """Encode an image; returns (announce, packet events) to publish."""
        prog = ProgressiveImage(
            image,
            n_packets=self.n_packets,
            target_bpp=target_bpp if target_bpp is not None else self.target_bpp,
        )
        self.shared[image_id] = prog
        description = describe_image(image).text
        announce = ImageShareAnnounce(
            image_id=image_id,
            height=image.shape[0],
            width=image.shape[1],
            channels=prog.channels,
            n_packets=self.n_packets,
            total_bits=prog.total_bits,
            description=description,
            levels=prog.levels,
            t0_exps=prog.t0_exps,
        )
        packet_events = [
            ImagePacketEvent(
                image_id=image_id,
                packet_index=p.index,
                packet_total=p.total,
                payload=p.to_bytes(),
            )
            for p in prog.packets()
        ]
        return announce, packet_events

    # ------------------------------------------------------------------
    # receiver side
    # ------------------------------------------------------------------
    def on_announce(self, announce: ImageShareAnnounce) -> ViewedImage:
        """Register an incoming share; idempotent per image id."""
        if announce.image_id in self.viewed:
            return self.viewed[announce.image_id]
        assembly = ReceivedImage(
            announce.height,
            announce.width,
            announce.channels,
            announce.levels,
            announce.t0_exps,
            announce.n_packets,
        )
        view = ViewedImage(announce.image_id, announce, assembly)
        self.viewed[announce.image_id] = view
        # drain any packets that raced ahead of the announce
        for pending in self._pre_announce.pop(announce.image_id, []):
            self.on_packet(pending)
        return view

    def on_packet(self, event: ImagePacketEvent) -> bool:
        """Offer a packet; returns True if it was accepted into the budget.

        "The resolution threshold is used to determine the number of image
        segments (i.e. the number of image packets) to be received."
        Packets arriving before their announce are buffered briefly.
        """
        view = self.viewed.get(event.image_id)
        if view is None:
            stash = self._pre_announce.setdefault(event.image_id, [])
            if len(stash) < 64:
                stash.append(event)
            return False
        view.packets_offered += 1
        if event.packet_index >= self.packet_budget:
            return False
        view.assembly.add_packet(ImagePacket.from_bytes(event.payload))
        view.packets_accepted += 1
        return True

    def set_packet_budget(self, budget: int) -> None:
        """Inference-engine hook: future packets obey the new budget."""
        self.packet_budget = max(0, min(self.n_packets, int(budget)))

    # ------------------------------------------------------------------
    def reconstruct(self, image_id: str) -> np.ndarray:
        """Current best reconstruction of a viewed image."""
        return self.viewed[image_id].assembly.reconstruct()

    def report(self, image_id: str) -> ReceptionReport:
        """Paper metrics for one viewed image."""
        return self.viewed[image_id].report()
