"""Chat area: the simplest of the paper's three UI entities.

Headless model: an ordered transcript plus hooks to produce/consume
:class:`~repro.core.events.ChatEvent` objects.  Text is also the fallback
modality everything else degrades to, so the chat area doubles as the
renderer for ``text-share`` events (image descriptions, etc.).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.events import ChatEvent, TextShareEvent

__all__ = ["ChatArea", "ChatLine"]


@dataclass(frozen=True)
class ChatLine:
    """One rendered transcript line."""

    author: str
    text: str
    time: float


class ChatArea:
    """Ordered chat transcript for one client."""

    def __init__(self, owner: str) -> None:
        self.owner = owner
        self.lines: list[ChatLine] = []

    def compose(self, text: str) -> ChatEvent:
        """Create the event for a locally typed line (not yet rendered —
        the session echoes events back through the same path as remote
        ones so local/remote ordering is identical)."""
        return ChatEvent(author=self.owner, text=text)

    def on_chat(self, event: ChatEvent, time: float) -> ChatLine:
        """Render a chat event into the transcript."""
        line = ChatLine(author=event.author, text=event.text, time=time)
        self.lines.append(line)
        return line

    def on_text_share(self, event: TextShareEvent, time: float) -> ChatLine:
        """Render a degraded-modality text share (e.g. image description)."""
        line = ChatLine(author=f"[{event.ref_id}]", text=event.text, time=time)
        self.lines.append(line)
        return line

    @property
    def transcript(self) -> list[str]:
        """Plain-text transcript."""
        return [f"{l.author}: {l.text}" for l in self.lines]

    def __len__(self) -> int:
        return len(self.lines)
