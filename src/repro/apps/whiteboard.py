"""Whiteboard: shared vector objects with concurrency control.

Each stroke/shape is a shared object in the client's state repository;
concurrent manipulation goes through the
:class:`~repro.core.concurrency.Arbiter` (no information lost) and the
:class:`~repro.core.concurrency.LockManager` (stroke-in-progress
exclusivity).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.concurrency import Arbiter, LockManager
from ..core.events import WhiteboardEvent
from ..core.state import StateEntry, StateRepository

__all__ = ["Whiteboard"]


class Whiteboard:
    """One client's replica of the shared drawing surface."""

    def __init__(self, owner: str, repository: Optional[StateRepository] = None) -> None:
        self.owner = owner
        self.repository = repository if repository is not None else StateRepository()
        self.arbiter = Arbiter(self.repository)
        self.locks = LockManager()

    # ------------------------------------------------------------------
    # local operations → events
    # ------------------------------------------------------------------
    def draw(self, object_id: str, points: tuple[float, ...], time: float) -> WhiteboardEvent:
        """Draw/replace a stroke locally and emit the event for peers.

        The event carries the origin version and timestamp so every
        replica arbitrates the identical triple.
        """
        entry = self.repository.put(
            f"wb/{object_id}", list(points), timestamp=time, author=self.owner
        )
        return WhiteboardEvent(
            object_id=object_id,
            op="draw",
            points=points,
            author=self.owner,
            version=entry.version,
            timestamp=entry.timestamp,
        )

    def erase(self, object_id: str, time: float) -> WhiteboardEvent:
        """Erase an object locally and emit the event."""
        entry = self.repository.put(
            f"wb/{object_id}", None, timestamp=time, author=self.owner
        )
        return WhiteboardEvent(
            object_id=object_id,
            op="erase",
            author=self.owner,
            version=entry.version,
            timestamp=entry.timestamp,
        )

    # ------------------------------------------------------------------
    # remote events → replica updates (through arbitration)
    # ------------------------------------------------------------------
    def on_event(self, event: WhiteboardEvent, time: float) -> bool:
        """Apply a remote whiteboard event; returns whether it won.

        Arbitration uses the *origin* (version, timestamp, author) carried
        in the event — never local arrival data — so concurrent edits
        converge to the same winner on every replica.
        """
        key = f"wb/{event.object_id}"
        value = None if event.op == "erase" else list(event.points)
        entry = StateEntry(
            key=key,
            value=value,
            version=event.version,
            timestamp=event.timestamp,
            author=event.author,
        )
        return self.arbiter.submit(entry)

    # ------------------------------------------------------------------
    def objects(self) -> dict[str, list[float]]:
        """Live objects (erased ones excluded)."""
        out = {}
        for entry in self.repository:
            if entry.key.startswith("wb/") and entry.value is not None:
                out[entry.key[3:]] = entry.value
        return out

    @property
    def conflicts(self) -> int:
        """Total concurrent-update collisions, including any the bounded
        history has evicted (the overflow counter keeps the tally exact)."""
        return self.arbiter.total_conflicts
