"""Typestate & concurrency-discipline verification for protocol objects.

The collaboration substrate is a web of small protocol state machines —
cooperative object locks (request → grant → release, revocation on
leave), RTP fragment reassembly, SNMP manager sessions, subscription
attach/detach — and a client that drives one of them out of order fails
only at run time, if at all.  This pass checks them statically, in the
style of Strom & Yemini's typestate and RacerD's lock discipline.

**Protocol automata (TSP001–007).**  A declarative registry
(:data:`PROTOCOLS`) describes each protocol object as a finite
automaton: states, events (method calls and attribute stores), allowed
source states and target state per event.  A path-sensitive walker
tracks the *set of possible states* per tracked instance (the same
open/closed/maybe lattice the resource pass uses, generalized to
arbitrary automata) and flags an event only when the possible-state set
is disjoint from the event's allowed states — definite violations, not
maybes.  Guards like ``if part.complete:`` narrow the state set on each
branch.  Instances are tracked from constructors, registered factory
methods (``bus.attach(...)``), annotated parameters, and typed ``self``
attributes; lock events are additionally keyed by their (object,
client) arguments so independent locks don't alias.

Two structural rules ride along: TSP003 (a class that drives the lock
manager handles ``LeaveEvent`` without revoking the departed client's
locks) and TSP004 (RTP fragments constructed with out-of-order constant
``frag_index``).

**Callback-context concurrency (CON001–003).**  Functions reachable
from delivery-callback registrations (``on_receive=`` /
``on_delivery=`` / RTP reassembly / bus attach) form the *callback
context*: code that runs inside a dispatch, not under the caller's
control.  CON001 flags direct mutation of shared coordination state
(:data:`SHARED_STATE_CLASSES`: ``Arbiter`` / ``LockManager`` /
``SemanticBus``) from that context — deferring through the event loop
(a nested def or lambda handed to the scheduler) is the sanctioned
route and is excluded.  CON002 flags synchronous re-entry into
``SemanticBus.publish`` from a delivery callback (unbounded recursion
when two handlers republish at each other).  CON003 flags a
module-level mutable container mutated by a callback registered from
more than one thread-rooted entry point.

Everything reports through the shared
:class:`~repro.analysis.diagnostics.Diagnostic` model, so
``# repro: ignore[TSP005]`` suppressions, severity gating, baseline
fingerprints, and SARIF all apply.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Optional, Union

from .callgraph import (
    CallGraph,
    CallSite,
    FunctionInfo,
    build_call_graph,
    module_name_for_path,
)
from .dataflow import _DELIVERY_CALLBACK_KWARGS, _diag, _resolve_callback_ref
from .diagnostics import Diagnostic, filter_diagnostics, parse_suppressions

__all__ = [
    "EventRule",
    "ProtocolSpec",
    "PROTOCOLS",
    "SHARED_STATE_CLASSES",
    "typestate_diagnostics",
    "analyze_typestate",
]


# ======================================================================
# the automaton registry
# ======================================================================
@dataclass(frozen=True)
class EventRule:
    """One protocol event: a method call or an attribute store.

    ``allowed`` are the automaton states the event is legal in; firing
    it from a state set *disjoint* from ``allowed`` reports ``code``.
    ``target`` is the state after the event (``None`` = unchanged).
    """

    event: str
    kind: str = "call"  #: "call" (method) or "set" (attribute store)
    allowed: frozenset[str] = frozenset()
    target: Optional[str] = None
    code: Optional[str] = None  #: rule to report on violation; None = never
    message: str = ""  #: template; {var} and {key} interpolate


@dataclass(frozen=True)
class ProtocolSpec:
    """One protocol object class as a declarative automaton."""

    name: str
    cls: str  #: class short name of the protocol object
    states: frozenset[str]
    initial: str  #: state of freshly constructed instances
    rules: tuple[EventRule, ...]
    #: attr -> (state when truthy, state when falsy): ``if x.attr:`` narrows
    guards: dict[str, tuple[str, str]] = field(default_factory=dict)
    #: leading call-argument count that keys the instance (lock key/client)
    keyed_args: int = 0
    #: attribute names whose mutation widens the state back to ⊤
    resets: frozenset[str] = frozenset()
    #: method names that *return* a fresh instance in ``initial`` state
    factory_methods: frozenset[str] = frozenset()
    #: receiver requirement for factories: class short names, or textual
    #: receiver-name suffixes (lowercase) the receiver must end with
    factory_recv: tuple[str, ...] = ()

    def rule_for(self, event: str, kind: str) -> Optional[EventRule]:
        for r in self.rules:
            if r.event == event and r.kind == kind:
                return r
        return None


_SNMP_REQUEST_METHODS = (
    "get",
    "get_scalar",
    "get_next",
    "walk",
    "set",
    "get_bulk",
    "bulk_walk",
)

PROTOCOLS: tuple[ProtocolSpec, ...] = (
    ProtocolSpec(
        name="lock-discipline",
        cls="LockManager",
        states=frozenset({"held", "unheld"}),
        initial="unheld",
        keyed_args=2,  # (object key, client id) identify one lock instance
        rules=(
            EventRule(
                "acquire",
                allowed=frozenset({"unheld"}),
                target="held",
                code="TSP002",
                message="double acquire: {var}.acquire({key}) while this"
                " holder already has the lock on this path",
            ),
            EventRule(
                "release",
                allowed=frozenset({"held"}),
                target="unheld",
                code="TSP001",
                message="release without acquire: {var}.release({key}) but"
                " the lock is not held on this path",
            ),
        ),
    ),
    ProtocolSpec(
        name="rtp-reassembly",
        cls="_PartialMessage",
        states=frozenset({"incomplete", "complete"}),
        initial="incomplete",
        rules=(
            EventRule(
                "assemble",
                allowed=frozenset({"complete"}),
                target="complete",
                code="TSP005",
                message="{var}.assemble() before all frag_count fragments"
                " arrived on this path; guard with `if {var}.complete:`",
            ),
        ),
        guards={"complete": ("complete", "incomplete")},
        resets=frozenset({"fragments"}),
    ),
    ProtocolSpec(
        name="snmp-session",
        cls="SnmpManager",
        states=frozenset({"open", "closed"}),
        initial="open",
        rules=tuple(
            EventRule(
                m,
                allowed=frozenset({"open"}),
                code="TSP006",
                message="{var}.%s() after the SNMP session was closed" % m,
            )
            for m in _SNMP_REQUEST_METHODS
        )
        + (
            # close is idempotent: legal from either state
            EventRule("close", allowed=frozenset({"open", "closed"}), target="closed"),
        ),
    ),
    ProtocolSpec(
        name="subscription-lifecycle",
        cls="Subscription",
        states=frozenset({"attached", "detached"}),
        initial="attached",
        rules=(
            EventRule(
                "detach", allowed=frozenset({"attached", "detached"}), target="detached"
            ),
            EventRule(
                "callback",
                kind="call",
                allowed=frozenset({"attached"}),
                code="TSP007",
                message="delivery via {var}.callback() on a detached subscription",
            ),
            EventRule(
                "callback",
                kind="set",
                allowed=frozenset({"attached"}),
                code="TSP007",
                message="callback registered on detached subscription {var}",
            ),
            EventRule(
                "active",
                kind="set",
                allowed=frozenset({"attached"}),
                code="TSP007",
                message="re-attach through a stale handle: {var}.active"
                " assigned after detach",
            ),
        ),
        guards={"active": ("attached", "detached")},
        factory_methods=frozenset({"attach"}),
        factory_recv=("SemanticBus", "bus"),
    ),
)

#: classes whose state is shared coordination state for CON001
SHARED_STATE_CLASSES: tuple[str, ...] = ("Arbiter", "LockManager", "SemanticBus")

#: (callable short name) -> positional indices carrying a delivery callback
_CALLBACK_POSITIONS: dict[str, tuple[int, ...]] = {
    "RtpReassembler": (0,),
    "SemanticEndpoint": (4,),
    "over_transport": (2,),
    "TrapListener": (2,),
}

#: container methods that mutate in place (CON001/CON003)
_MUTATING_METHODS = frozenset(
    {
        "append",
        "appendleft",
        "extend",
        "insert",
        "pop",
        "popleft",
        "popitem",
        "remove",
        "discard",
        "clear",
        "update",
        "add",
        "setdefault",
    }
)


# ======================================================================
# shared helpers
# ======================================================================
def _var_of(expr: ast.expr) -> Optional[str]:
    """Trackable variable name: ``x`` or ``self.attr``."""
    if isinstance(expr, ast.Name):
        return expr.id
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
    ):
        return f"self.{expr.attr}"
    return None


def _expr_key(expr: ast.expr) -> Optional[str]:
    """Canonical textual key for an event argument, or None if opaque."""
    if isinstance(expr, ast.Constant):
        return repr(expr.value)
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        base = _expr_key(expr.value)
        return f"{base}.{expr.attr}" if base is not None else None
    return None


def _rightmost(expr: ast.expr) -> Optional[str]:
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    return None


def _bus_like_receiver(site: CallSite) -> bool:
    """Receiver typed SemanticBus, or textually named like a bus."""
    if site.recv_type == "SemanticBus":
        return True
    parts = site.func_repr.split(".")
    if len(parts) < 2:
        return False
    recv = parts[-2].lower()
    return recv == "bus" or recv.endswith("bus")


def _deferred_nodes(fn_node: ast.AST) -> set[int]:
    """ids of nodes inside nested defs/lambdas: deferred execution."""
    out: set[int] = set()
    for node in ast.walk(fn_node):
        if node is fn_node:
            continue
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            for sub in ast.walk(node):
                if sub is not node:
                    out.add(id(sub))
    return out


InstanceId = Union[str, tuple]


# ======================================================================
# the path-sensitive automaton walker (TSP001/002/005/006/007)
# ======================================================================
class _TypestateChecker:
    """Interpret each function against every protocol automaton."""

    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph
        self.diags: list[Diagnostic] = []
        self._specs_by_cls = {s.cls: s for s in PROTOCOLS}
        # per-function walk state
        self.fn: FunctionInfo = None  # type: ignore[assignment]
        self.instances: dict[str, ProtocolSpec] = {}
        self.defaults: dict[str, frozenset[str]] = {}
        self._sites: dict[int, CallSite] = {}

    def run(self) -> list[Diagnostic]:
        skip = set(self._specs_by_cls)
        for fn in self.graph.functions.values():
            if fn.cls in skip:
                continue  # the protocol class's own internals
            self._check_function(fn)
        return self.diags

    # -- per-function setup ---------------------------------------------
    def _check_function(self, fn: FunctionInfo) -> None:
        assert isinstance(fn.node, (ast.FunctionDef, ast.AsyncFunctionDef))
        self.fn = fn
        self.instances = {}
        self.defaults = {}
        self._sites = {id(s.node): s for s in self.graph.calls_from(fn.qualname)}
        self._seed_params(fn)
        self._seed_self_attrs(fn)
        # cheap bail-out: no tracked instance and no constructor/factory
        if not self.instances and not self._mentions_protocol(fn):
            return
        state: dict[InstanceId, frozenset[str]] = {}
        self._walk(fn.node.body, state)

    def _mentions_protocol(self, fn: FunctionInfo) -> bool:
        for site in self.graph.calls_from(fn.qualname):
            if site.method in self._specs_by_cls:
                return True
            for spec in PROTOCOLS:
                if spec.factory_methods and site.method in spec.factory_methods:
                    return True
        return False

    def _seed_params(self, fn: FunctionInfo) -> None:
        assert isinstance(fn.node, (ast.FunctionDef, ast.AsyncFunctionDef))
        for arg in list(fn.node.args.args) + list(fn.node.args.kwonlyargs):
            ann = arg.annotation
            name: Optional[str] = None
            if isinstance(ann, ast.Name):
                name = ann.id
            elif isinstance(ann, ast.Attribute):
                name = ann.attr
            elif isinstance(ann, ast.Constant) and isinstance(ann.value, str):
                name = ann.value.rsplit(".", 1)[-1]
            spec = self._specs_by_cls.get(name or "")
            if spec is not None:
                self._register(arg.arg, spec, spec.states)  # prior state unknown

    def _seed_self_attrs(self, fn: FunctionInfo) -> None:
        if fn.cls is None:
            return
        for (cls, attr), typ in self.graph.attr_types.items():
            if cls != fn.cls:
                continue
            spec = self._specs_by_cls.get(typ)
            if spec is not None:
                self._register(f"self.{attr}", spec, spec.states)

    def _register(self, var: str, spec: ProtocolSpec, default: frozenset[str]) -> None:
        self.instances[var] = spec
        self.defaults[var] = default

    # -- the walk -------------------------------------------------------
    def _walk(
        self, stmts: list[ast.stmt], state: dict[InstanceId, frozenset[str]]
    ) -> bool:
        """Interpret ``stmts``; returns True when the path terminates."""
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue  # deferred execution: not part of this path
            if isinstance(stmt, (ast.Return, ast.Raise, ast.Break, ast.Continue)):
                self._scan(stmt, state)
                return True
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 and isinstance(
                stmt.targets[0], ast.Name
            ):
                self._scan(stmt.value, state)
                self._assign(stmt.targets[0].id, stmt.value, state)
                continue
            if isinstance(stmt, ast.If):
                self._scan(stmt.test, state)
                s1, s2 = dict(state), dict(state)
                self._narrow(stmt.test, s1, negate=False)
                self._narrow(stmt.test, s2, negate=True)
                t1 = self._walk(stmt.body, s1)
                t2 = self._walk(stmt.orelse, s2)
                if t1 and t2:
                    return True
                if t1:
                    state.clear(); state.update(s2)
                elif t2:
                    state.clear(); state.update(s1)
                else:
                    self._merge(state, s1, s2)
                continue
            if isinstance(stmt, (ast.For, ast.While)):
                if isinstance(stmt, ast.For):
                    self._scan(stmt.iter, state)
                else:
                    self._scan(stmt.test, state)
                body_state = dict(state)
                self._walk(stmt.body, body_state)
                self._merge(state, dict(state), body_state)
                self._walk(stmt.orelse, state)
                continue
            if isinstance(stmt, ast.Try):
                body_state = dict(state)
                t_body = self._walk(stmt.body, body_state)
                merged = dict(state)
                self._merge(merged, dict(state), body_state)
                for handler in stmt.handlers:
                    h_state = dict(merged)
                    self._walk(handler.body, h_state)
                    self._merge(merged, merged, h_state)
                if not t_body:
                    self._walk(stmt.orelse, body_state)
                    self._merge(merged, merged, body_state)
                t_fin = self._walk(stmt.finalbody, merged)
                state.clear(); state.update(merged)
                if t_fin:
                    return True
                continue
            if isinstance(stmt, ast.With):
                for item in stmt.items:
                    self._scan(item.context_expr, state)
                if self._walk(stmt.body, state):
                    return True
                continue
            self._scan(stmt, state)
        return False

    def _assign(
        self, var: str, value: ast.expr, state: dict[InstanceId, frozenset[str]]
    ) -> None:
        """``var = value``: seed from constructor/factory, or kill."""
        if isinstance(value, ast.Call):
            ctor = _rightmost(value.func)
            spec = self._specs_by_cls.get(ctor or "")
            if spec is not None:
                self._register(var, spec, frozenset({spec.initial}))
                self._purge(var, state)
                state[var] = frozenset({spec.initial})
                return
            spec = self._factory_spec(value)
            if spec is not None:
                self._register(var, spec, frozenset({spec.initial}))
                self._purge(var, state)
                state[var] = frozenset({spec.initial})
                return
        if var in self.instances:  # re-bound to something untracked
            self.instances.pop(var, None)
            self.defaults.pop(var, None)
            self._purge(var, state)

    def _factory_spec(self, call: ast.Call) -> Optional[ProtocolSpec]:
        if not isinstance(call.func, ast.Attribute):
            return None
        method = call.func.attr
        for spec in PROTOCOLS:
            if method not in spec.factory_methods:
                continue
            site = self._sites.get(id(call))
            if site is not None and site.recv_type in spec.factory_recv:
                return spec
            recv = _rightmost(call.func.value)
            if recv is not None and any(
                recv.lower() == want.lower() or recv.lower().endswith(want.lower())
                for want in spec.factory_recv
                if not want[0].isupper()
            ):
                return spec
        return None

    def _purge(self, var: str, state: dict[InstanceId, frozenset[str]]) -> None:
        for iid in list(state):
            if iid == var or (isinstance(iid, tuple) and iid[0] == var):
                del state[iid]

    def _merge(
        self,
        into: dict[InstanceId, frozenset[str]],
        s1: dict[InstanceId, frozenset[str]],
        s2: dict[InstanceId, frozenset[str]],
    ) -> None:
        into.clear()
        for iid in set(s1) | set(s2):
            var = iid if isinstance(iid, str) else iid[0]
            spec = self.instances.get(var)
            top = spec.states if spec is not None else frozenset()
            default = self.defaults.get(var, top)
            into[iid] = s1.get(iid, default) | s2.get(iid, default)

    # -- guard narrowing ------------------------------------------------
    def _narrow(
        self, test: ast.expr, state: dict[InstanceId, frozenset[str]], negate: bool
    ) -> None:
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            self._narrow(test.operand, state, not negate)
            return
        if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And) and not negate:
            for value in test.values:  # every conjunct holds on the true branch
                self._narrow(value, state, negate=False)
            return
        if not isinstance(test, ast.Attribute):
            return
        var = _var_of(test.value)
        if var is None:
            return
        spec = self.instances.get(var)
        if spec is None:
            return
        states = spec.guards.get(test.attr)
        if states is None:
            return
        truthy, falsy = states
        state[var] = frozenset({falsy if negate else truthy})

    # -- event scanning -------------------------------------------------
    def _scan(self, node: ast.AST, state: dict[InstanceId, frozenset[str]]) -> None:
        for sub in ast.walk(node):
            if isinstance(sub, (ast.Lambda, ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # deferred bodies are not on this path
            if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute):
                var = _var_of(sub.func.value)
                if var is not None and var in self.instances:
                    self._event(var, "call", sub.func.attr, sub, state)
            elif isinstance(sub, (ast.Assign, ast.AugAssign)):
                targets = sub.targets if isinstance(sub, ast.Assign) else [sub.target]
                for target in targets:
                    self._store_event(target, sub, state)

    def _store_event(
        self, target: ast.expr, stmt: ast.stmt, state: dict[InstanceId, frozenset[str]]
    ) -> None:
        # `var.attr = ...` is a "set" event; `var.attr[i] = ...` only resets
        attr_node: Optional[ast.Attribute] = None
        is_direct = False
        if isinstance(target, ast.Attribute):
            attr_node, is_direct = target, True
        elif isinstance(target, ast.Subscript) and isinstance(
            target.value, ast.Attribute
        ):
            attr_node = target.value
        if attr_node is None:
            return
        var = _var_of(attr_node.value)
        if var is None or var not in self.instances:
            return
        spec = self.instances[var]
        if attr_node.attr in spec.resets:
            state[var] = spec.states  # mutation: state unknown again
            return
        if is_direct:
            self._event(var, "set", attr_node.attr, stmt, state)

    def _event(
        self,
        var: str,
        kind: str,
        name: str,
        node: ast.AST,
        state: dict[InstanceId, frozenset[str]],
    ) -> None:
        spec = self.instances[var]
        rule = spec.rule_for(name, kind)
        if rule is None:
            return
        iid: InstanceId = var
        key_text = ""
        if spec.keyed_args and kind == "call":
            call = node if isinstance(node, ast.Call) else None
            if call is None or len(call.args) < spec.keyed_args:
                return  # can't key this event
            keys = [_expr_key(a) for a in call.args[: spec.keyed_args]]
            if any(k is None for k in keys):
                return  # opaque key expression: don't guess
            iid = (var, *keys)
            key_text = ", ".join(k for k in keys if k is not None)
        current = state.get(iid, self.defaults.get(var, spec.states))
        if rule.code is not None and not (current & rule.allowed):
            self.diags.append(
                _diag(
                    rule.code,
                    rule.message.format(var=var, key=key_text),
                    self.fn.qualname,
                    self.fn.path,
                    node,
                )
            )
        if rule.target is not None:
            state[iid] = frozenset({rule.target})


# ======================================================================
# TSP004: fragment emission order
# ======================================================================
class _FragOrderChecker:
    """Constant ``frag_index`` values must increase within a function."""

    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph
        self.diags: list[Diagnostic] = []

    def run(self) -> list[Diagnostic]:
        for fn in self.graph.functions.values():
            assert isinstance(fn.node, (ast.FunctionDef, ast.AsyncFunctionDef))
            emitted: list[tuple[int, ast.Call]] = []
            for node in ast.walk(fn.node):
                if not (isinstance(node, ast.Call) and _rightmost(node.func) == "RtpPacket"):
                    continue
                idx = self._frag_index(node)
                if idx is not None:
                    emitted.append((idx, node))
            emitted.sort(key=lambda p: (p[1].lineno, p[1].col_offset))
            for (prev, _), (cur, node) in zip(emitted, emitted[1:]):
                if cur <= prev:
                    self.diags.append(
                        _diag(
                            "TSP004",
                            f"RTP fragment emitted out of order: frag_index"
                            f" {cur} after {prev}",
                            fn.qualname,
                            fn.path,
                            node,
                        )
                    )
        return self.diags

    @staticmethod
    def _frag_index(call: ast.Call) -> Optional[int]:
        expr: Optional[ast.expr] = None
        if len(call.args) > 2:
            expr = call.args[2]
        for kw in call.keywords:
            if kw.arg == "frag_index":
                expr = kw.value
        if isinstance(expr, ast.Constant) and isinstance(expr.value, int):
            return expr.value
        return None


# ======================================================================
# TSP003: lock revocation on LeaveEvent paths
# ======================================================================
class _LeaveRevocationChecker:
    """A class that drives the lock manager must revoke on leave."""

    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph
        self.diags: list[Diagnostic] = []

    def run(self) -> list[Diagnostic]:
        lock_classes = self._lock_using_classes()
        if not lock_classes:
            return self.diags
        for fn in self.graph.functions.values():
            if fn.cls not in lock_classes or fn.cls == "LockManager":
                continue
            node = self._leave_test(fn)
            if node is None:
                continue
            if not self._closure_calls(fn.qualname, "drop_client"):
                self.diags.append(
                    _diag(
                        "TSP003",
                        f"{fn.cls} handles LeaveEvent without revoking the"
                        " departed client's locks (no drop_client on any"
                        " path from this handler)",
                        fn.qualname,
                        fn.path,
                        node,
                    )
                )
        return self.diags

    def _lock_using_classes(self) -> set[str]:
        out: set[str] = set()
        for site in self.graph.calls:
            if site.method not in ("acquire", "release", "drop_client"):
                continue
            if site.recv_type == "LockManager" or ".locks." in site.func_repr:
                fn = self.graph.functions.get(site.caller)
                if fn is not None and fn.cls is not None:
                    out.add(fn.cls)
        return out

    @staticmethod
    def _leave_test(fn: FunctionInfo) -> Optional[ast.AST]:
        assert isinstance(fn.node, (ast.FunctionDef, ast.AsyncFunctionDef))
        for node in ast.walk(fn.node):
            if (
                isinstance(node, ast.Call)
                and _rightmost(node.func) == "isinstance"
                and len(node.args) == 2
                and _rightmost(node.args[1]) == "LeaveEvent"
            ):
                return node
        return None

    def _closure_calls(self, root: str, method: str) -> bool:
        seen = {root}
        frontier = [root]
        while frontier:
            q = frontier.pop()
            for site in self.graph.calls_from(q):
                if site.method == method:
                    return True
                if site.callee is not None and site.callee not in seen:
                    seen.add(site.callee)
                    frontier.append(site.callee)
        return False


# ======================================================================
# CON001–003: callback-context concurrency discipline
# ======================================================================
class _ConcurrencyChecker:
    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph
        self.diags: list[Diagnostic] = []

    def run(self) -> list[Diagnostic]:
        registrations = self._registrations()
        roots = {target for target, _ in registrations}
        reachable = self._closure(roots)
        shared_methods = {
            q for q in reachable if self.graph.functions[q].cls in SHARED_STATE_CLASSES
        }
        for q in sorted(reachable - shared_methods):
            fn = self.graph.functions[q]
            self._check_mutations(fn)
            self._check_publish(fn)
        self._check_thread_captures(registrations)
        return self.diags

    # -- delivery-callback roots ----------------------------------------
    def _registrations(self) -> list[tuple[str, str]]:
        """(callback qualname, registering function qualname) pairs."""
        out: list[tuple[str, str]] = []
        for fn in self.graph.functions.values():
            assert isinstance(fn.node, (ast.FunctionDef, ast.AsyncFunctionDef))
            for node in ast.walk(fn.node):
                if (
                    isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Attribute)
                    and node.targets[0].attr in _DELIVERY_CALLBACK_KWARGS
                ):
                    self._add(out, node.value, fn)
                elif isinstance(node, ast.Call):
                    for kw in node.keywords:
                        if kw.arg in _DELIVERY_CALLBACK_KWARGS:
                            self._add(out, kw.value, fn)
                    name = _rightmost(node.func) or ""
                    for pos in _CALLBACK_POSITIONS.get(name, ()):
                        if len(node.args) > pos:
                            self._add(out, node.args[pos], fn)
                    if name == "attach" and len(node.args) > 1:
                        site = self._site_for(fn, node)
                        if site is not None and _bus_like_receiver(site):
                            self._add(out, node.args[1], fn)
        return out

    def _site_for(self, fn: FunctionInfo, call: ast.Call) -> Optional[CallSite]:
        for site in self.graph.calls_from(fn.qualname):
            if site.node is call:
                return site
        return None

    def _add(
        self, out: list[tuple[str, str]], ref: ast.expr, fn: FunctionInfo
    ) -> None:
        target = _resolve_callback_ref(ref, fn, self.graph)
        if target is not None:
            out.append((target, fn.qualname))

    def _closure(self, roots: Iterable[str]) -> set[str]:
        seen = {r for r in roots if r in self.graph.functions}
        frontier = list(seen)
        while frontier:
            q = frontier.pop()
            for site in self.graph.calls_from(q):
                if site.callee is not None and site.callee in self.graph.functions:
                    if site.callee not in seen:
                        seen.add(site.callee)
                        frontier.append(site.callee)
        return seen

    # -- CON001: direct shared-state mutation ---------------------------
    def _shared_vars(self, fn: FunctionInfo) -> set[str]:
        out: set[str] = set()
        assert isinstance(fn.node, (ast.FunctionDef, ast.AsyncFunctionDef))
        for arg in list(fn.node.args.args) + list(fn.node.args.kwonlyargs):
            name = _rightmost(arg.annotation) if arg.annotation is not None else None
            if name in SHARED_STATE_CLASSES:
                out.add(arg.arg)
        if fn.cls is not None:
            for (cls, attr), typ in self.graph.attr_types.items():
                if cls == fn.cls and typ in SHARED_STATE_CLASSES:
                    out.add(f"self.{attr}")
        for node in ast.walk(fn.node):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Call)
                and _rightmost(node.value.func) in SHARED_STATE_CLASSES
            ):
                out.add(node.targets[0].id)
        return out

    def _check_mutations(self, fn: FunctionInfo) -> None:
        shared = self._shared_vars(fn)
        if not shared:
            return
        assert isinstance(fn.node, (ast.FunctionDef, ast.AsyncFunctionDef))
        deferred = _deferred_nodes(fn.node)
        for node in ast.walk(fn.node):
            if id(node) in deferred:
                continue  # handed to the event loop: the sanctioned route
            mutated = self._mutated_shared(node, shared)
            if mutated is not None:
                self.diags.append(
                    _diag(
                        "CON001",
                        f"shared {mutated} state mutated directly from a"
                        " delivery-callback context; route the change"
                        " through the event loop instead",
                        fn.qualname,
                        fn.path,
                        node,
                    )
                )

    def _mutated_shared(self, node: ast.AST, shared: set[str]) -> Optional[str]:
        """Name of the shared var ``node`` mutates directly, if any."""
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                base: Optional[ast.expr] = None
                if isinstance(target, ast.Attribute):
                    base = target.value
                elif isinstance(target, ast.Subscript) and isinstance(
                    target.value, ast.Attribute
                ):
                    base = target.value.value
                if base is not None:
                    var = _var_of(base)
                    if var in shared:
                        return var
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _MUTATING_METHODS
            and isinstance(node.func.value, ast.Attribute)
        ):
            var = _var_of(node.func.value.value)
            if var in shared:
                return var
        return None

    # -- CON002: synchronous republish ----------------------------------
    def _check_publish(self, fn: FunctionInfo) -> None:
        assert isinstance(fn.node, (ast.FunctionDef, ast.AsyncFunctionDef))
        deferred = _deferred_nodes(fn.node)
        for site in self.graph.calls_from(fn.qualname):
            if site.method != "publish" or id(site.node) in deferred:
                continue
            if _bus_like_receiver(site):
                self.diags.append(
                    _diag(
                        "CON002",
                        "SemanticBus.publish() called synchronously from a"
                        " delivery-callback context (re-entrant dispatch can"
                        " recurse without bound); defer via the scheduler",
                        fn.qualname,
                        fn.path,
                        site.node,
                    )
                )

    # -- CON003: cross-thread captured containers -----------------------
    def _thread_roots(self) -> set[str]:
        out: set[str] = set()
        for site in self.graph.calls:
            if site.method != "Thread":
                continue
            fn = self.graph.functions.get(site.caller)
            if fn is None:
                continue
            for kw in site.node.keywords:
                if kw.arg == "target":
                    target = _resolve_callback_ref(kw.value, fn, self.graph)
                    if target is not None:
                        out.add(target)
        return out

    def _check_thread_captures(self, registrations: list[tuple[str, str]]) -> None:
        thread_roots = self._thread_roots()
        if not thread_roots:
            return
        thread_reach = self._closure(thread_roots)
        containers = self._module_containers()
        # context of each registration: which thread root (or main) ran it
        contexts: dict[str, set[str]] = {}
        for target, registrar in registrations:
            ctx = registrar if registrar in thread_reach else "<main>"
            contexts.setdefault(target, set()).add(ctx)
        for target, ctxs in sorted(contexts.items()):
            if len(ctxs) < 2:
                continue
            fn = self.graph.functions.get(target)
            if fn is None:
                continue
            names = containers.get(fn.module, frozenset())
            mutated = self._mutated_container(fn, names)
            if mutated is not None:
                self.diags.append(
                    _diag(
                        "CON003",
                        f"container '{mutated}' is mutated by callback"
                        f" {fn.name}() registered from {len(ctxs)} different"
                        " thread-rooted entry points (unsynchronized shared"
                        " state)",
                        target,
                        fn.path,
                        fn.node,
                    )
                )

    def _module_containers(self) -> dict[str, frozenset[str]]:
        """Module -> names bound to mutable containers at module level."""
        out: dict[str, set[str]] = {}
        for path, source in self.graph.sources.items():
            try:
                tree = ast.parse(source)
            except SyntaxError:
                continue
            module = module_name_for_path(path)
            names = out.setdefault(module, set())
            for node in tree.body:
                if not (
                    isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                ):
                    continue
                value = node.value
                if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
                    names.add(node.targets[0].id)
                elif isinstance(value, ast.Call) and _rightmost(value.func) in (
                    "list",
                    "dict",
                    "set",
                    "deque",
                    "defaultdict",
                    "OrderedDict",
                    "Counter",
                ):
                    names.add(node.targets[0].id)
        return {m: frozenset(s) for m, s in out.items()}

    @staticmethod
    def _mutated_container(fn: FunctionInfo, names: frozenset[str]) -> Optional[str]:
        if not names:
            return None
        assert isinstance(fn.node, (ast.FunctionDef, ast.AsyncFunctionDef))
        for node in ast.walk(fn.node):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATING_METHODS
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in names
            ):
                return node.func.value.id
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Name)
                        and target.value.id in names
                    ):
                        return target.value.id
        return None


# ======================================================================
# entry points
# ======================================================================
def typestate_diagnostics(
    graph: CallGraph, *, ignore: Iterable[str] = ()
) -> list[Diagnostic]:
    """All TSP/CON findings over an already-built call graph."""
    diags: list[Diagnostic] = []
    diags.extend(_TypestateChecker(graph).run())
    diags.extend(_FragOrderChecker(graph).run())
    diags.extend(_LeaveRevocationChecker(graph).run())
    diags.extend(_ConcurrencyChecker(graph).run())

    suppressions = {
        path: parse_suppressions(source) for path, source in graph.sources.items()
    }
    out: list[Diagnostic] = []
    for d in diags:
        sup = suppressions.get(d.file or "")
        out.extend(filter_diagnostics([d], ignore=ignore, suppressions=sup))
    return out


def analyze_typestate(
    paths: Iterable[str], *, ignore: Iterable[str] = ()
) -> list[Diagnostic]:
    """Build the call graph over ``paths`` and run every typestate pass."""
    graph = build_call_graph(paths)
    return typestate_diagnostics(graph, ignore=ignore)
