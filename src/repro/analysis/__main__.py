"""``python -m repro.analysis`` — the static verification CLI.

Examples::

    # lint the shipped defaults + the source tree + the examples
    python -m repro.analysis

    # gate CI: non-zero exit on any error-severity diagnostic
    python -m repro.analysis --fail-on=error

    # analyze one selector expression
    python -m repro.analysis --selector "role == 'medic' and role == 'clerk'"

    # machine-readable output
    python -m repro.analysis --json
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from .diagnostics import Severity
from .runner import render_json, render_text, run_analysis

DEFAULT_PATHS = ("src/repro", "examples")


def _default_paths() -> list[str]:
    return [p for p in DEFAULT_PATHS if os.path.exists(p)]


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static verifier for selectors, policies, and QoS contracts.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files/directories to lint (default: src/repro and examples when present)",
    )
    parser.add_argument(
        "--selector",
        action="append",
        default=[],
        metavar="EXPR",
        help="analyze one selector expression (repeatable)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        default=[],
        metavar="CODE",
        help="suppress a rule code everywhere (repeatable)",
    )
    parser.add_argument(
        "--fail-on",
        choices=["error", "warning", "info", "never"],
        default="error",
        help="lowest severity that makes the exit status non-zero (default: error)",
    )
    parser.add_argument("--json", action="store_true", help="emit JSON instead of text")
    parser.add_argument(
        "--no-defaults",
        action="store_true",
        help="skip linting the shipped default policy database",
    )
    args = parser.parse_args(argv)

    paths = args.paths or ([] if args.selector else _default_paths())
    report = run_analysis(
        paths,
        selectors=args.selector,
        include_defaults=not args.no_defaults,
        ignore=args.ignore,
    )
    print(render_json(report) if args.json else render_text(report))

    threshold = None if args.fail_on == "never" else Severity.parse(args.fail_on)
    return 1 if report.fails(threshold) else 0


if __name__ == "__main__":
    sys.exit(main())
