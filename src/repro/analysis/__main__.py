"""``python -m repro.analysis`` — the static verification CLI.

Examples::

    # lint the shipped defaults + the source tree + the examples
    python -m repro.analysis

    # gate CI: non-zero exit on any new warning-or-worse diagnostic
    python -m repro.analysis --baseline analysis-baseline.json --fail-on warning

    # accept the current findings as the baseline
    python -m repro.analysis --write-baseline analysis-baseline.json

    # analyze one selector expression
    python -m repro.analysis --selector "role == 'medic' and role == 'clerk'"

    # machine-readable output
    python -m repro.analysis --format json
    python -m repro.analysis --format sarif > analysis.sarif

    # document rules (all, or specific codes)
    python -m repro.analysis --explain
    python -m repro.analysis --explain TSP001 CON002

    # incremental runs: skip unchanged files via a content-hash cache
    python -m repro.analysis --cache
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from .baseline import apply_baseline, dump_baseline, load_baseline, stale_entries
from .cache import DEFAULT_CACHE_NAME, AnalysisCache
from .runner import AnalysisReport
from .diagnostics import RULES, Severity
from .runner import render_json, render_text, run_analysis
from .sarif import render_sarif

DEFAULT_PATHS = ("src/repro", "examples")


def _default_paths() -> list[str]:
    return [p for p in DEFAULT_PATHS if os.path.exists(p)]


def _explain(codes: Sequence[str]) -> int:
    """Print the rule registry (all rules, or just ``codes``)."""
    wanted = [c.strip().upper() for c in codes]
    unknown = [c for c in wanted if c not in RULES]
    if unknown:
        print(f"unknown rule code(s): {', '.join(unknown)}", file=sys.stderr)
        return 2
    for code in wanted or sorted(RULES):
        severity, description = RULES[code]
        print(f"{code}  {severity}  {description}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static verifier for selectors, policies, contracts, and dataflow.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files/directories to lint (default: src/repro and examples when present)",
    )
    parser.add_argument(
        "--selector",
        action="append",
        default=[],
        metavar="EXPR",
        help="analyze one selector expression (repeatable)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        default=[],
        metavar="CODE",
        help="suppress a rule code everywhere (repeatable)",
    )
    parser.add_argument(
        "--fail-on",
        choices=["error", "warning", "info", "never"],
        default="error",
        help="lowest severity that makes the exit status non-zero (default: error)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json", "sarif"],
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit JSON instead of text (alias for --format json)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="drop findings recorded in FILE; only new findings remain",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="record the current findings to FILE and exit 0",
    )
    parser.add_argument(
        "--no-defaults",
        action="store_true",
        help="skip linting the shipped default policy database",
    )
    parser.add_argument(
        "--no-dataflow",
        action="store_true",
        help="skip the dataflow passes (units, exceptions, resources)",
    )
    parser.add_argument(
        "--no-typestate",
        action="store_true",
        help="skip the typestate/concurrency passes (protocol automata)",
    )
    parser.add_argument(
        "--no-perf",
        action="store_true",
        help="skip the hot-path cost pass (PERF rules)",
    )
    parser.add_argument(
        "--no-det",
        action="store_true",
        help="skip the replay-determinism pass (DET rules)",
    )
    parser.add_argument(
        "--no-concurrency",
        action="store_true",
        help="skip the lock-order/race pass (DLK/RACE rules)",
    )
    parser.add_argument(
        "--no-wire",
        action="store_true",
        help="skip the wire-format symmetry/decode-safety pass (WIRE rules)",
    )
    parser.add_argument(
        "--cache",
        nargs="?",
        const=DEFAULT_CACHE_NAME,
        metavar="FILE",
        help="reuse per-file/per-tree results across runs via FILE"
        f" (default: {DEFAULT_CACHE_NAME}); content-hash keyed, salted by"
        " the rule registry and --ignore set",
    )
    parser.add_argument(
        "--sanitize",
        metavar="REPORT",
        help="cross-check a runtime sanitizer JSON report (REPRO_SANITIZE=1"
        " test run) against the static lock graph",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="lint files on N worker processes (default: 1, serial);"
        " output is identical either way",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="print per-rule-family wall time to stderr after the run",
    )
    parser.add_argument(
        "--explain",
        nargs="*",
        metavar="CODE",
        help="print rule documentation (all rules, or just the named codes) and exit",
    )
    args = parser.parse_args(argv)

    if args.explain is not None:
        return _explain(args.explain)

    baseline = None
    if args.baseline and not args.write_baseline:
        try:
            baseline = load_baseline(args.baseline)
        except FileNotFoundError:
            print(f"baseline {args.baseline} not found; treating as empty", file=sys.stderr)
            baseline = {}

    paths = args.paths or ([] if args.selector else _default_paths())
    timings: Optional[dict[str, float]] = {} if args.profile else None
    cache = AnalysisCache.open(args.cache, ignore=args.ignore) if args.cache else None
    report = run_analysis(
        paths,
        selectors=args.selector,
        include_defaults=not args.no_defaults,
        include_dataflow=not args.no_dataflow,
        include_typestate=not args.no_typestate,
        include_perf=not args.no_perf,
        include_det=not args.no_det,
        include_concurrency=not args.no_concurrency,
        include_wire=not args.no_wire,
        ignore=args.ignore,
        profile=timings,
        jobs=args.jobs,
        cache=cache,
    )
    if cache is not None:
        cache.save()
        if args.profile:
            print(
                f"cache: {cache.hits} hit(s), {cache.misses} miss(es) -> {cache.path}",
                file=sys.stderr,
            )
    if args.sanitize:
        import json

        from .callgraph import build_call_graph
        from .concurrency import check_sanitizer_report

        with open(args.sanitize, encoding="utf-8") as fh:
            sanitizer_report = json.load(fh)
        extra = check_sanitizer_report(
            build_call_graph(paths), sanitizer_report, ignore=args.ignore
        )
        report = AnalysisReport(tuple(list(report.diagnostics) + extra))
    if timings is not None:
        total = sum(timings.values())
        parts = ", ".join(
            f"{family} {seconds:.3f}s" for family, seconds in sorted(timings.items())
        )
        print(f"profile: {parts} (total {total:.3f}s)", file=sys.stderr)

    if args.write_baseline:
        with open(args.write_baseline, "w", encoding="utf-8") as fh:
            fh.write(dump_baseline(list(report.diagnostics)))
        print(
            f"wrote {len(report.diagnostics)} finding(s) to {args.write_baseline}",
            file=sys.stderr,
        )
        return 0

    if baseline is not None:
        stale = stale_entries(list(report.diagnostics), baseline)
        report = AnalysisReport(
            tuple(apply_baseline(list(report.diagnostics), baseline))
        )
        if stale:
            print(
                f"note: {sum(stale.values())} baseline entr(ies) no longer match"
                " any finding; consider re-writing the baseline",
                file=sys.stderr,
            )

    fmt = "json" if args.json else args.format
    if fmt == "sarif":
        print(render_sarif(list(report.diagnostics)), end="")
    elif fmt == "json":
        print(render_json(report))
    else:
        print(render_text(report))

    threshold = None if args.fail_on == "never" else Severity.parse(args.fail_on)
    return 1 if report.fails(threshold) else 0


if __name__ == "__main__":
    sys.exit(main())
