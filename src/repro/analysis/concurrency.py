"""Static lock-order (DLK) and shared-state race (RACE) verification.

The messaging fabric holds three independent attach locks
(``SemanticBus``, ``ShardedSemanticBus``, ``SemanticEndpoint``) and fans
batch matching out over a ``ThreadPoolExecutor``; the ROADMAP's scale
program multiplies that surface.  CON001–003 police what *callbacks* may
touch; this pass proves the two properties they cannot see — lock
discipline and shared-field access — the way TSan/lockdep do at run
time, but statically, over the same project call graph the dataflow,
typestate, and hot-path passes walk.

**Lock-acquisition graph.**  Locks are identified by *attribute path +
owner class* (``SemanticBus._attach_lock``) or module-level name,
collected from ``threading.Lock()``/``RLock()``/``make_lock()``
construction sites.  A worklist propagates *held-lock contexts*
interprocedurally: from every entry point (functions without in-graph
callers, thread roots, delivery callbacks) through resolved call edges,
through ``with lock:`` blocks and ``acquire()``/``release()`` pairs, and
through ``pool.submit(f, ...)`` — the sharded broker's fan-out blocks on
its futures while holding the attach lock, so a submitted target runs
under the submitter's locks for ordering purposes.  Acquiring ``M``
while holding ``H`` adds the edge ``H -> M``.

* **DLK001** — cycle in the lock-order graph (potential deadlock); a
  non-reentrant lock re-acquired while already held is the 1-cycle.
* **DLK002** — acquire-while-held across a backend boundary (the held
  and acquired locks live in different owner classes/modules): a
  layering hazard that composes into cycles the moment the inner layer
  learns to call out.
* **DLK003** — a field the owner class protects with a lock (written
  under it somewhere) is also written on some path *without* that lock.

**Shared-state races.**  Thread-root reachability labels every function
with the roots that can run it: ``ThreadPoolExecutor.submit`` targets
and ``Thread(target=...)`` (true threads), delivery-callback
registrations, SNMP poll loops (:data:`THREAD_ROOT_SUFFIXES`), and the
main/API surface.

* **RACE001** — a field written from two or more distinct roots, at
  least one a *free-running* thread, with at least one write not under
  any lock.  A submit target only ever dispatched while the submitter
  holds a lock (and blocks on the futures — the sharded broker's
  "scoped fan-out") is not free-running: the lock serializes it against
  every same-lock path, so it labels code for RACE002/003 scoping but
  cannot by itself satisfy RACE001's thread requirement.
* **RACE002** — unsynchronized lazy initialisation
  (``if self.x is None: self.x = make()``) reachable with no lock held,
  in a class that owns a lock or runs on a thread root (the
  ``_ensure_pool`` pattern — safe only while every caller holds the
  attach lock, which this pass verifies rather than assumes).
* **RACE003** — non-atomic check-then-act on a shared *container*
  (``if k in self.d: self.d.pop(k)``) reachable with no lock held, same
  class scope as RACE002.

Constructor writes (``__init__``/``__new__``/``_init*`` helpers and
functions reachable *only* from them) are exempt everywhere: they
happen-before any thread can see the object.

The runtime half lives in :mod:`repro.analysis.sanitizer`;
:func:`check_sanitizer_report` merges a sanitizer JSON report's observed
edges into the static graph and re-runs cycle detection, so a runtime
order the static pass could not resolve still gates.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

from .callgraph import CallGraph, CallSite, FunctionInfo, build_call_graph
from .dataflow import _DELIVERY_CALLBACK_KWARGS, _diag, _resolve_callback_ref
from .diagnostics import Diagnostic
from .hotpath import _apply_suppressions

__all__ = [
    "LOCK_FACTORIES",
    "THREAD_ROOT_SUFFIXES",
    "LockInfo",
    "collect_locks",
    "lock_order_edges",
    "find_cycles",
    "concurrency_diagnostics",
    "analyze_concurrency",
    "check_sanitizer_report",
]

#: callables whose result is a lock (rightmost name of the constructor)
LOCK_FACTORIES: frozenset[str] = frozenset({"Lock", "RLock", "make_lock", "TrackedLock"})

#: factories producing re-entrant locks (self-acquire is not a 1-cycle)
_REENTRANT_FACTORIES: frozenset[str] = frozenset({"RLock"})

#: qualname suffixes treated as true thread roots even without a visible
#: ``Thread(target=...)``: deployments drive the SNMP poll loop from a
#: timer thread (the paper's network-state monitor)
THREAD_ROOT_SUFFIXES: tuple[str, ...] = ("NetworkStateInterface.poll",)

#: positional callback registration slots (mirrors the typestate pass)
_CALLBACK_POSITIONS: dict[str, tuple[int, ...]] = {
    "RtpReassembler": (0,),
    "SemanticEndpoint": (4,),
    "over_transport": (2,),
    "TrapListener": (2,),
}

#: in-place container mutators (a call on ``self.x`` counts as a write)
_MUTATING_METHODS: frozenset[str] = frozenset(
    {
        "append",
        "appendleft",
        "extend",
        "add",
        "update",
        "insert",
        "remove",
        "discard",
        "pop",
        "popleft",
        "popitem",
        "clear",
        "setdefault",
    }
)

#: container constructors for RACE003's "shared container" scope
_CONTAINER_CTORS: frozenset[str] = frozenset(
    {"dict", "list", "set", "deque", "defaultdict", "OrderedDict", "Counter"}
)

#: held-context fan-out cap per function (worklist safety valve; real
#: code holds one or two locks, corpus files a handful)
_MAX_CONTEXTS = 16


@dataclass(frozen=True)
class LockInfo:
    """One lock the analyzed tree constructs."""

    name: str  #: ``Owner.attr`` or ``module.NAME``
    owner: Optional[str]  #: owner class short name (None: module-level)
    attr: str
    reentrant: bool
    path: str
    line: int


@dataclass
class _Acquire:
    lock: str
    fn: str
    path: str
    line: int
    node: ast.AST


@dataclass
class _Edge:
    """First (lexicographically) witness of one lock-order edge."""

    held: str
    acquired: str
    fn: str
    path: str
    line: int
    node: ast.AST


@dataclass
class _Write:
    cls: str
    attr: str
    fn: str
    path: str
    line: int
    node: ast.AST
    is_container_value: bool = False
    ctxs: set[frozenset[str]] = field(default_factory=set)


def _lock_ctor(value: ast.expr) -> Optional[tuple[str, bool]]:
    """(factory name, reentrant) when ``value`` constructs a lock."""
    if not isinstance(value, ast.Call):
        return None
    name = _rightmost(value.func)
    if name not in LOCK_FACTORIES:
        return None
    reentrant = name in _REENTRANT_FACTORIES
    for kw in value.keywords:
        if kw.arg == "reentrant" and isinstance(kw.value, ast.Constant):
            reentrant = bool(kw.value.value)
    return name, reentrant


def _rightmost(expr: ast.expr) -> Optional[str]:
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    return None


def collect_locks(graph: CallGraph) -> dict[str, LockInfo]:
    """Every lock the tree constructs, keyed by its identity name.

    ``self.attr = threading.Lock()`` inside a class, class-body
    ``attr = Lock()``, and module-level ``NAME = Lock()`` assignments
    all count; :func:`~repro.analysis.sanitizer.make_lock` and
    ``TrackedLock`` are recognised as lock factories so instrumented
    code analyzes identically to plain code.
    """
    locks: dict[str, LockInfo] = {}

    def record(name: str, owner: Optional[str], attr: str, reentrant: bool, path: str, node: ast.AST) -> None:
        if name not in locks:
            locks[name] = LockInfo(
                name, owner, attr, reentrant, path, getattr(node, "lineno", 0)
            )

    # instance attributes: self.attr = Lock() anywhere in a method
    for fn in graph.functions.values():
        if fn.cls is None:
            continue
        assert isinstance(fn.node, (ast.FunctionDef, ast.AsyncFunctionDef))
        for node in ast.walk(fn.node):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Attribute)
                and isinstance(node.targets[0].value, ast.Name)
                and node.targets[0].value.id == "self"
            ):
                ctor = _lock_ctor(node.value)
                if ctor is not None:
                    attr = node.targets[0].attr
                    record(f"{fn.cls}.{attr}", fn.cls, attr, ctor[1], fn.path, node)
    # module-level and class-body locks need the raw module ASTs
    from .callgraph import module_name_for_path

    for path in sorted(graph.sources):
        try:
            tree = ast.parse(graph.sources[path], filename=path)
        except SyntaxError:  # pragma: no cover - repo_lint reports these
            continue
        module = module_name_for_path(path)
        for node in tree.body:
            if isinstance(node, ast.Assign) and len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
                ctor = _lock_ctor(node.value)
                if ctor is not None:
                    name = node.targets[0].id
                    record(f"{module}.{name}", None, name, ctor[1], path, node)
            elif isinstance(node, ast.ClassDef):
                for stmt in node.body:
                    if (
                        isinstance(stmt, ast.Assign)
                        and len(stmt.targets) == 1
                        and isinstance(stmt.targets[0], ast.Name)
                    ):
                        ctor = _lock_ctor(stmt.value)
                        if ctor is not None:
                            attr = stmt.targets[0].id
                            record(f"{node.name}.{attr}", node.name, attr, ctor[1], path, stmt)
    return locks


# ----------------------------------------------------------------------
# interprocedural held-context propagation
# ----------------------------------------------------------------------
class _LockFlow:
    """Worklist pass computing held-lock contexts, edges, and writes."""

    def __init__(self, graph: CallGraph, locks: dict[str, LockInfo]) -> None:
        self.graph = graph
        self.locks = locks
        self.edges: dict[tuple[str, str], _Edge] = {}
        self.acquires: dict[str, list[_Acquire]] = {}
        #: function -> set of entry held-contexts analyzed
        self.contexts: dict[str, set[frozenset[str]]] = {}
        #: (fn, line, col, attr) -> write record
        self.writes: dict[tuple[str, int, int, str], _Write] = {}
        #: (fn, line, col) of an If statement -> observed held-contexts
        self.if_ctxs: dict[tuple[str, int, int], set[frozenset[str]]] = {}
        #: true thread roots discovered (submit / Thread targets)
        self.thread_roots: set[str] = set()
        #: thread roots only ever seen with the submitter holding a lock
        #: ("scoped fan-out": the submitter blocks on the futures with the
        #: lock held, so the workers never run concurrently with any path
        #: that takes the same lock — the sharded broker's design)
        self.free_thread_roots: set[str] = set()
        self._site_by_node: dict[str, dict[int, CallSite]] = {}
        self._ann_types: dict[str, dict[str, str]] = {}
        self._work: list[tuple[str, frozenset[str]]] = []

    # -- public ---------------------------------------------------------
    def run(self) -> None:
        for q in sorted(self.graph.functions):
            fn = self.graph.functions[q]
            if not self.graph.callers_of(q) or self._is_thread_root_suffix(q):
                self._push(q, frozenset())
            if self._is_thread_root_suffix(q):
                self.thread_roots.add(q)
                self.free_thread_roots.add(q)
            del fn
        while self._work:
            q, ctx = self._work.pop()
            self._process(q, ctx)

    def _is_thread_root_suffix(self, q: str) -> bool:
        return any(q == s or q.endswith("." + s) for s in THREAD_ROOT_SUFFIXES)

    # -- worklist -------------------------------------------------------
    def _push(self, q: str, ctx: frozenset[str]) -> None:
        if q not in self.graph.functions:
            return
        seen = self.contexts.setdefault(q, set())
        if ctx in seen or len(seen) >= _MAX_CONTEXTS:
            return
        seen.add(ctx)
        self._work.append((q, ctx))

    def _process(self, q: str, ctx: frozenset[str]) -> None:
        fn = self.graph.functions[q]
        assert isinstance(fn.node, (ast.FunctionDef, ast.AsyncFunctionDef))
        self._walk_block(fn, fn.node.body, ctx)

    # -- per-function resolution caches ---------------------------------
    def _sites(self, fn: FunctionInfo) -> dict[int, CallSite]:
        cached = self._site_by_node.get(fn.qualname)
        if cached is None:
            cached = {id(s.node): s for s in self.graph.calls_from(fn.qualname)}
            self._site_by_node[fn.qualname] = cached
        return cached

    def _annotations(self, fn: FunctionInfo) -> dict[str, str]:
        cached = self._ann_types.get(fn.qualname)
        if cached is not None:
            return cached
        out: dict[str, str] = {}
        assert isinstance(fn.node, (ast.FunctionDef, ast.AsyncFunctionDef))
        for arg in list(fn.node.args.args) + list(fn.node.args.kwonlyargs):
            name = _rightmost(arg.annotation) if arg.annotation is not None else None
            if name is not None and name in self.graph.classes:
                out[arg.arg] = name
        self._ann_types[fn.qualname] = out
        return out

    # -- lock identity of an expression ---------------------------------
    def _lock_of(self, expr: ast.expr, fn: FunctionInfo) -> Optional[str]:
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Attribute):
            if expr.func.attr == "acquire":
                return self._lock_of(expr.func.value, fn)
            return None
        if isinstance(expr, ast.Attribute):
            base = expr.value
            if isinstance(base, ast.Name):
                if base.id == "self" and fn.cls is not None:
                    name = f"{fn.cls}.{expr.attr}"
                    if name in self.locks:
                        return name
                typ = self._annotations(fn).get(base.id)
                if typ is not None:
                    name = f"{typ}.{expr.attr}"
                    if name in self.locks:
                        return name
            elif (
                isinstance(base, ast.Attribute)
                and isinstance(base.value, ast.Name)
                and base.value.id == "self"
                and fn.cls is not None
            ):
                typ = self.graph.attr_types.get((fn.cls, base.attr))
                if typ is not None:
                    name = f"{typ}.{expr.attr}"
                    if name in self.locks:
                        return name
        elif isinstance(expr, ast.Name):
            name = f"{fn.module}.{expr.id}"
            if name in self.locks:
                return name
        return None

    # -- recording ------------------------------------------------------
    def _record_acquire(
        self, fn: FunctionInfo, lock: str, held: frozenset[str], node: ast.AST
    ) -> None:
        line = getattr(node, "lineno", 0)
        self.acquires.setdefault(lock, []).append(
            _Acquire(lock, fn.qualname, fn.path, line, node)
        )
        for h in sorted(held):
            if h == lock and self.locks[lock].reentrant:
                continue
            edge = _Edge(h, lock, fn.qualname, fn.path, line, node)
            prior = self.edges.get((h, lock))
            if prior is None or (edge.path, edge.line, edge.fn) < (
                prior.path,
                prior.line,
                prior.fn,
            ):
                self.edges[(h, lock)] = edge

    def _record_write(
        self,
        fn: FunctionInfo,
        attr: str,
        node: ast.AST,
        held: frozenset[str],
        *,
        value: Optional[ast.expr] = None,
    ) -> None:
        if fn.cls is None:
            return
        if f"{fn.cls}.{attr}" in self.locks:
            return  # the lock slot itself is not protected data
        line = getattr(node, "lineno", 0)
        col = getattr(node, "col_offset", 0)
        key = (fn.qualname, line, col, attr)
        rec = self.writes.get(key)
        if rec is None:
            rec = _Write(fn.cls, attr, fn.qualname, fn.path, line, node)
            self.writes[key] = rec
        if value is not None and self._is_container_value(value):
            rec.is_container_value = True
        rec.ctxs.add(held)

    @staticmethod
    def _is_container_value(value: ast.expr) -> bool:
        if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.ListComp, ast.SetComp, ast.DictComp)):
            return True
        if isinstance(value, ast.Call):
            return _rightmost(value.func) in _CONTAINER_CTORS
        return False

    # -- the walker -----------------------------------------------------
    def _walk_block(
        self, fn: FunctionInfo, stmts: list[ast.stmt], held: frozenset[str]
    ) -> None:
        cur = held
        for stmt in stmts:
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                inner = cur
                for item in stmt.items:
                    self._visit_expr(fn, item.context_expr, inner)
                    lock = self._lock_of(item.context_expr, fn)
                    if lock is not None:
                        self._record_acquire(fn, lock, inner, item.context_expr)
                        inner = inner | {lock}
                self._walk_block(fn, stmt.body, inner)
            elif isinstance(stmt, ast.If):
                self._visit_expr(fn, stmt.test, cur)
                key = (fn.qualname, stmt.lineno, stmt.col_offset)
                self.if_ctxs.setdefault(key, set()).add(cur)
                self._walk_block(fn, stmt.body, cur)
                self._walk_block(fn, stmt.orelse, cur)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._visit_expr(fn, stmt.iter, cur)
                self._walk_block(fn, stmt.body, cur)
                self._walk_block(fn, stmt.orelse, cur)
            elif isinstance(stmt, ast.While):
                self._visit_expr(fn, stmt.test, cur)
                self._walk_block(fn, stmt.body, cur)
                self._walk_block(fn, stmt.orelse, cur)
            elif isinstance(stmt, ast.Try):
                self._walk_block(fn, stmt.body, cur)
                for handler in stmt.handlers:
                    self._walk_block(fn, handler.body, cur)
                self._walk_block(fn, stmt.orelse, cur)
                self._walk_block(fn, stmt.finalbody, cur)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue  # deferred bodies run in their own context
            elif isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
                lock = self._lock_of(stmt.value, fn)
                func = stmt.value.func
                if lock is not None and isinstance(func, ast.Attribute):
                    if func.attr == "acquire":
                        self._record_acquire(fn, lock, cur, stmt.value)
                        cur = cur | {lock}
                        continue
                release_of = (
                    self._lock_of(func.value, fn)
                    if isinstance(func, ast.Attribute) and func.attr == "release"
                    else None
                )
                if release_of is not None:
                    cur = cur - {release_of}
                    continue
                self._visit_expr(fn, stmt.value, cur)
            else:
                self._record_stmt_writes(fn, stmt, cur)
                for expr in ast.iter_child_nodes(stmt):
                    if isinstance(expr, ast.expr):
                        self._visit_expr(fn, expr, cur)

    def _record_stmt_writes(
        self, fn: FunctionInfo, stmt: ast.stmt, held: frozenset[str]
    ) -> None:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                self._write_target(fn, target, stmt, held, value=stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            self._write_target(fn, stmt.target, stmt, held)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._write_target(fn, stmt.target, stmt, held, value=stmt.value)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                self._write_target(fn, target, stmt, held)

    def _write_target(
        self,
        fn: FunctionInfo,
        target: ast.expr,
        stmt: ast.stmt,
        held: frozenset[str],
        *,
        value: Optional[ast.expr] = None,
    ) -> None:
        if isinstance(target, ast.Tuple):
            for elt in target.elts:
                self._write_target(fn, elt, stmt, held)
            return
        if isinstance(target, ast.Subscript):
            target = target.value
            value = None  # d[k] = v mutates the container, not rebinds it
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            self._record_write(fn, target.attr, stmt, held, value=value)

    def _visit_expr(self, fn: FunctionInfo, expr: ast.expr, held: frozenset[str]) -> None:
        sites = self._sites(fn)
        for node in _walk_skipping_lambdas(expr):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            # pool.submit(f, ...): ordering-wise a call under the
            # submitter's locks (the broker blocks on its futures with
            # the attach lock held) AND a true thread root
            if isinstance(func, ast.Attribute) and func.attr == "submit" and node.args:
                target = _resolve_callback_ref(node.args[0], fn, self.graph)
                if target is not None:
                    self.thread_roots.add(target)
                    if not held:
                        self.free_thread_roots.add(target)
                    self._push(target, held)
                continue
            # Thread(target=f): f starts on a fresh thread, lock-free
            if _rightmost(func) == "Thread":
                for kw in node.keywords:
                    if kw.arg == "target":
                        target = _resolve_callback_ref(kw.value, fn, self.graph)
                        if target is not None:
                            self.thread_roots.add(target)
                            self.free_thread_roots.add(target)
                            self._push(target, frozenset())
                continue
            # expression-position acquire (e.g. `ok = l.acquire(False)`)
            lock = self._lock_of(node, fn)
            if lock is not None and isinstance(func, ast.Attribute) and func.attr == "acquire":
                self._record_acquire(fn, lock, held, node)
                continue
            # in-place mutation of self.attr via a container method
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _MUTATING_METHODS
                and isinstance(func.value, ast.Attribute)
                and isinstance(func.value.value, ast.Name)
                and func.value.value.id == "self"
            ):
                self._record_write(fn, func.value.attr, node, held)
            site = sites.get(id(node))
            if site is not None and site.callee is not None:
                self._push(site.callee, held)


def _walk_skipping_lambdas(expr: ast.expr) -> Iterator[ast.AST]:
    stack: list[ast.AST] = [expr]
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, ast.Lambda):
            continue  # deferred body
        stack.extend(reversed(list(ast.iter_child_nodes(node))))


# ----------------------------------------------------------------------
# cycle detection (shared with the sanitizer cross-check)
# ----------------------------------------------------------------------
def find_cycles(edges: Iterable[tuple[str, str]]) -> list[tuple[str, ...]]:
    """Canonical cycles of the directed graph ``edges``.

    Returns one tuple per strongly connected component with more than
    one node (sorted members) plus one 1-tuple per self-loop, the whole
    list sorted — a verdict that is, by construction, invariant under
    the insertion order of ``edges`` (the hypothesis suite pins this).
    """
    adj: dict[str, set[str]] = {}
    nodes: set[str] = set()
    self_loops: set[str] = set()
    for a, b in edges:
        nodes.add(a)
        nodes.add(b)
        if a == b:
            self_loops.add(a)
        else:
            adj.setdefault(a, set()).add(b)
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    counter = [0]
    sccs: list[list[str]] = []

    def strongconnect(root: str) -> None:
        work: list[tuple[str, Iterator[str]]] = [(root, iter(sorted(adj.get(root, ()))))]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            v, it = work[-1]
            advanced = False
            for w in it:
                if w not in index:
                    index[w] = low[w] = counter[0]
                    counter[0] += 1
                    stack.append(w)
                    on_stack.add(w)
                    work.append((w, iter(sorted(adj.get(w, ())))))
                    advanced = True
                    break
                if w in on_stack:
                    low[v] = min(low[v], index[w])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[v])
            if low[v] == index[v]:
                scc: list[str] = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    scc.append(w)
                    if w == v:
                        break
                if len(scc) > 1:
                    sccs.append(scc)

    for node in sorted(nodes):
        if node not in index:
            strongconnect(node)
    out = [tuple(sorted(scc)) for scc in sccs]
    out.extend((n,) for n in sorted(self_loops))
    return sorted(out)


def lock_order_edges(graph: CallGraph) -> list[tuple[str, str]]:
    """The static lock-acquisition-order edges of ``graph``, sorted.

    This is the relation the runtime sanitizer asserts against
    (:meth:`~repro.analysis.sanitizer.LockOrderSanitizer.check_against`).
    """
    locks = collect_locks(graph)
    flow = _LockFlow(graph, locks)
    flow.run()
    return sorted(flow.edges)


# ----------------------------------------------------------------------
# the checker
# ----------------------------------------------------------------------
class _ConcurrencyChecker:
    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph
        self.locks = collect_locks(graph)
        self.flow = _LockFlow(graph, self.locks)
        self.flow.run()
        self.out: list[Diagnostic] = []

    def run(self) -> list[Diagnostic]:
        self._exempt = self._constructor_closure()
        self._labels = self._root_labels()
        self._check_dlk001()
        self._check_dlk002()
        self._check_dlk003()
        self._check_race001()
        self._check_race002_race003()
        return self.out

    # -- constructor exemption fixpoint ---------------------------------
    def _constructor_closure(self) -> set[str]:
        """Functions whose every run happens-before concurrency starts."""
        exempt: set[str] = set()
        for q, fn in self.graph.functions.items():
            node = fn.node
            assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            decorated_cls = any(
                _rightmost(d) == "classmethod" for d in node.decorator_list
            )
            if fn.name in ("__init__", "__new__") or fn.name.startswith("_init") or (
                fn.cls is not None and decorated_cls and fn.name.startswith(("over_", "from_", "make_", "create"))
            ):
                exempt.add(q)
        changed = True
        while changed:
            changed = False
            for q in sorted(self.graph.functions):
                if q in exempt:
                    continue
                callers = self.graph.callers_of(q)
                if callers and callers <= exempt and q not in self.flow.thread_roots:
                    exempt.add(q)
                    changed = True
        return exempt

    # -- thread-root labelling ------------------------------------------
    def _root_labels(self) -> dict[str, set[tuple[str, str]]]:
        labels: dict[str, set[tuple[str, str]]] = {}
        seeds: list[tuple[str, tuple[str, str]]] = []
        for root in sorted(self.flow.thread_roots):
            kind = "thread" if root in self.flow.free_thread_roots else "scoped"
            seeds.append((root, (kind, root)))
        for target, _registrar in self._callback_registrations():
            seeds.append((target, ("callback", target)))
        rooted = {q for q, _ in seeds}
        for q in sorted(self.graph.functions):
            if not self.graph.callers_of(q) and q not in rooted:
                seeds.append((q, ("main", "main")))
        for start, label in seeds:
            if start not in self.graph.functions:
                continue
            frontier = [start]
            while frontier:
                q = frontier.pop()
                have = labels.setdefault(q, set())
                if label in have:
                    continue
                have.add(label)
                for site in self.graph.calls_from(q):
                    if site.callee is not None and site.callee in self.graph.functions:
                        frontier.append(site.callee)
        return labels

    def _callback_registrations(self) -> list[tuple[str, str]]:
        out: list[tuple[str, str]] = []
        for q in sorted(self.graph.functions):
            fn = self.graph.functions[q]
            assert isinstance(fn.node, (ast.FunctionDef, ast.AsyncFunctionDef))
            for node in ast.walk(fn.node):
                if (
                    isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Attribute)
                    and node.targets[0].attr in _DELIVERY_CALLBACK_KWARGS
                ):
                    self._add_registration(out, node.value, fn)
                elif isinstance(node, ast.Call):
                    for kw in node.keywords:
                        if kw.arg in _DELIVERY_CALLBACK_KWARGS:
                            self._add_registration(out, kw.value, fn)
                    name = _rightmost(node.func) or ""
                    for pos in _CALLBACK_POSITIONS.get(name, ()):
                        if len(node.args) > pos:
                            self._add_registration(out, node.args[pos], fn)
                    if name == "attach" and len(node.args) > 1:
                        self._add_registration(out, node.args[1], fn)
        return out

    def _add_registration(
        self, out: list[tuple[str, str]], ref: ast.expr, fn: FunctionInfo
    ) -> None:
        target = _resolve_callback_ref(ref, fn, self.graph)
        if target is not None:
            out.append((target, fn.qualname))

    # -- DLK001: lock-order cycles --------------------------------------
    def _check_dlk001(self) -> None:
        for cycle in find_cycles(self.flow.edges):
            witness = self._cycle_witness(cycle)
            if witness is None:
                continue
            chain = " -> ".join(cycle + (cycle[0],)) if len(cycle) > 1 else cycle[0]
            what = (
                f"non-reentrant lock {cycle[0]} re-acquired while already held"
                if len(cycle) == 1
                else f"lock-order cycle {chain}"
            )
            self.out.append(
                _diag(
                    "DLK001",
                    f"{what}: threads taking these locks in different orders"
                    " can deadlock; acquire them in one global order",
                    witness.fn,
                    witness.path,
                    witness.node,
                )
            )

    def _cycle_witness(self, cycle: tuple[str, ...]) -> Optional[_Edge]:
        members = set(cycle)
        best: Optional[_Edge] = None
        for (a, b), edge in self.flow.edges.items():
            in_cycle = (a in members and b in members) if len(cycle) > 1 else (a == b == cycle[0])
            if not in_cycle:
                continue
            if best is None or (edge.path, edge.line, edge.acquired) < (
                best.path,
                best.line,
                best.acquired,
            ):
                best = edge
        return best

    # -- DLK002: cross-boundary acquire-while-held ----------------------
    def _check_dlk002(self) -> None:
        for (a, b) in sorted(self.flow.edges):
            if a == b:
                continue
            owner_a = self.locks[a].owner or self.locks[a].name.rsplit(".", 1)[0]
            owner_b = self.locks[b].owner or self.locks[b].name.rsplit(".", 1)[0]
            if owner_a == owner_b:
                continue
            edge = self.flow.edges[(a, b)]
            self.out.append(
                _diag(
                    "DLK002",
                    f"{b} acquired while holding {a}: a cross-backend lock"
                    " nesting; the inner layer must never call back into"
                    f" {owner_a} or the pair becomes a deadlock cycle",
                    edge.fn,
                    edge.path,
                    edge.node,
                )
            )

    # -- DLK003: protected field written without the lock ---------------
    def _relevant_writes(self) -> list[_Write]:
        return [
            w
            for key, w in sorted(self.flow.writes.items())
            if w.fn not in self._exempt
        ]

    def _check_dlk003(self) -> None:
        writes = self._relevant_writes()
        owners: dict[str, list[str]] = {}
        for lock in self.locks.values():
            if lock.owner is not None:
                owners.setdefault(lock.owner, []).append(lock.name)
        #: (cls, attr) -> locks some write holds
        protected: dict[tuple[str, str], set[str]] = {}
        for w in writes:
            for lock_name in owners.get(w.cls, ()):
                if any(lock_name in ctx for ctx in w.ctxs):
                    protected.setdefault((w.cls, w.attr), set()).add(lock_name)
        for w in writes:
            have = protected.get((w.cls, w.attr))
            if not have:
                continue
            for lock_name in sorted(have):
                missing = [ctx for ctx in w.ctxs if lock_name not in ctx]
                if missing:
                    self.out.append(
                        _diag(
                            "DLK003",
                            f"{w.cls}.{w.attr} is protected by {lock_name}"
                            " elsewhere but written here on a path that does"
                            " not hold it",
                            w.fn,
                            w.path,
                            w.node,
                        )
                    )
                    break

    # -- RACE001: multi-root writes with an unguarded access ------------
    def _check_race001(self) -> None:
        by_field: dict[tuple[str, str], list[_Write]] = {}
        for w in self._relevant_writes():
            by_field.setdefault((w.cls, w.attr), []).append(w)
        for (cls, attr) in sorted(by_field):
            ws = by_field[(cls, attr)]
            roots: set[tuple[str, str]] = set()
            for w in ws:
                roots |= self._labels.get(w.fn, set())
            if len(roots) < 2 or not any(kind == "thread" for kind, _ in roots):
                continue
            unguarded = [w for w in ws if any(not ctx for ctx in w.ctxs)]
            if not unguarded:
                continue
            w = min(unguarded, key=lambda w: (w.path, w.line))
            names = ", ".join(sorted({r for _, r in roots}))
            self.out.append(
                _diag(
                    "RACE001",
                    f"{cls}.{attr} is written from {len(roots)} roots"
                    f" ({names}) and this write holds no lock: concurrent"
                    " writes race; guard every access with one lock",
                    w.fn,
                    w.path,
                    w.node,
                )
            )

    # -- RACE002 / RACE003: lazy init and check-then-act ----------------
    def _concurrent_classes(self) -> set[str]:
        out = {info.owner for info in self.locks.values() if info.owner is not None}
        for q, labels in self._labels.items():
            if any(kind in ("thread", "scoped") for kind, _ in labels):
                cls = self.graph.functions[q].cls
                if cls is not None:
                    out.add(cls)
        return out

    def _container_fields(self) -> set[tuple[str, str]]:
        return {
            (w.cls, w.attr)
            for w in self.flow.writes.values()
            if w.is_container_value
        }

    def _check_race002_race003(self) -> None:
        concurrent = self._concurrent_classes()
        containers = self._container_fields()
        for q in sorted(self.graph.functions):
            fn = self.graph.functions[q]
            if fn.cls is None or fn.cls not in concurrent or q in self._exempt:
                continue
            assert isinstance(fn.node, (ast.FunctionDef, ast.AsyncFunctionDef))
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.If):
                    continue
                ctxs = self.flow.if_ctxs.get((q, node.lineno, node.col_offset))
                if ctxs is None or not any(not ctx for ctx in ctxs):
                    continue  # never reached lock-free: synchronized
                attr = _lazy_init_attr(node)
                if attr is not None:
                    self.out.append(
                        _diag(
                            "RACE002",
                            f"unsynchronized lazy initialisation of"
                            f" {fn.cls}.{attr}: two threads can both see None"
                            " and construct twice; double-check under a lock",
                            q,
                            fn.path,
                            node,
                        )
                    )
                    continue
                attr = _check_then_act_attr(node, containers, fn.cls)
                if attr is not None:
                    self.out.append(
                        _diag(
                            "RACE003",
                            f"non-atomic check-then-act on shared container"
                            f" {fn.cls}.{attr}: the test and the mutation are"
                            " two steps; another thread can interleave —"
                            " hold a lock across both",
                            q,
                            fn.path,
                            node,
                        )
                    )


def _self_attr(expr: ast.expr) -> Optional[str]:
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
    ):
        return expr.attr
    return None


def _lazy_init_attr(node: ast.If) -> Optional[str]:
    """``self.x`` when ``node`` is ``if self.x is None: self.x = make()``."""
    test = node.test
    attr: Optional[str] = None
    if isinstance(test, ast.Compare) and len(test.ops) == 1 and isinstance(test.ops[0], ast.Is):
        if isinstance(test.comparators[0], ast.Constant) and test.comparators[0].value is None:
            attr = _self_attr(test.left)
    elif isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        attr = _self_attr(test.operand)
    if attr is None:
        return None
    for stmt in node.body:
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and _self_attr(stmt.targets[0]) == attr
            and isinstance(stmt.value, ast.Call)
        ):
            return attr
    return None


def _check_then_act_attr(
    node: ast.If, containers: set[tuple[str, str]], cls: str
) -> Optional[str]:
    """``self.x`` when ``node`` tests container ``self.x`` then mutates it."""
    tested: set[str] = set()
    test = node.test
    if isinstance(test, ast.Compare) and any(
        isinstance(op, (ast.In, ast.NotIn)) for op in test.ops
    ):
        for part in [test.left, *test.comparators]:
            attr = _self_attr(part)
            if attr is not None:
                tested.add(attr)
    else:
        target = test
        if isinstance(target, ast.UnaryOp) and isinstance(target.op, ast.Not):
            target = target.operand
        attr = _self_attr(target)
        if attr is not None:
            tested.add(attr)
    tested = {a for a in tested if (cls, a) in containers}
    if not tested:
        return None
    for stmt in ast.walk(node):
        if isinstance(stmt, ast.Assign):
            for t in stmt.targets:
                if isinstance(t, ast.Subscript):
                    attr = _self_attr(t.value)
                    if attr in tested:
                        return attr
        elif isinstance(stmt, ast.Delete):
            for t in stmt.targets:
                if isinstance(t, ast.Subscript):
                    attr = _self_attr(t.value)
                    if attr in tested:
                        return attr
        elif isinstance(stmt, ast.Call) and isinstance(stmt.func, ast.Attribute):
            if stmt.func.attr in _MUTATING_METHODS:
                attr = _self_attr(stmt.func.value)
                if attr in tested:
                    return attr
    return None


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------
def concurrency_diagnostics(
    graph: CallGraph, *, ignore: Iterable[str] = ()
) -> list[Diagnostic]:
    """All DLK/RACE findings over an already-built call graph."""
    return _apply_suppressions(graph, _ConcurrencyChecker(graph).run(), ignore)


def analyze_concurrency(
    paths: Iterable[str], *, ignore: Iterable[str] = ()
) -> list[Diagnostic]:
    """Build the call graph over ``paths`` and run the DLK/RACE pass."""
    graph = build_call_graph(paths)
    return concurrency_diagnostics(graph, ignore=ignore)


def check_sanitizer_report(
    graph: CallGraph, report: dict[str, object], *, ignore: Iterable[str] = ()
) -> list[Diagnostic]:
    """Cross-check a sanitizer JSON report against the static lock graph.

    Runtime-recorded inversions become DLK001 findings directly; the
    observed edges are then merged into the static graph and cycle
    detection re-run, so a runtime order closing a statically-known
    half-cycle also gates.
    """
    static = lock_order_edges(graph)
    out: list[Diagnostic] = []

    def diag(message: str) -> Diagnostic:
        return _diag("DLK001", message, "sanitizer", "<sanitizer-report>", ast.Pass())

    inversions = report.get("inversions") or []
    if isinstance(inversions, list):
        for pair in inversions:
            if isinstance(pair, (list, tuple)) and len(pair) == 2:
                a, b = str(pair[0]), str(pair[1])
                out.append(
                    diag(
                        f"runtime lock-order inversion observed: {a} and {b}"
                        " were each acquired while the other was held"
                    )
                )
    runtime_edges: list[tuple[str, str]] = []
    raw_edges = report.get("edges") or []
    if isinstance(raw_edges, list):
        for entry in raw_edges:
            if isinstance(entry, dict) and "held" in entry and "acquired" in entry:
                runtime_edges.append((str(entry["held"]), str(entry["acquired"])))
    known = set(find_cycles(static))
    for cycle in find_cycles(list(static) + runtime_edges):
        if cycle in known:
            continue
        chain = " -> ".join(cycle + (cycle[0],)) if len(cycle) > 1 else cycle[0]
        out.append(
            diag(
                f"lock-order cycle {chain} closed by runtime-observed"
                " edges: the static graph alone did not contain it, the"
                " sanitized run did"
            )
        )
    from .diagnostics import filter_diagnostics

    return filter_diagnostics(out, ignore=ignore)
