"""Aggregation and rendering: one entry point over every analyzer pass.

:func:`run_analysis` is what both the CLI (``python -m repro.analysis``)
and the tests drive: it lints the shipped default policy database, walks
source trees applying the repo-lint rules, the selector extraction, and
the cross-layer dataflow passes (units, exception flow, resource
lifecycle), optionally analyzes ad-hoc selector expressions, and folds
everything into a single :class:`AnalysisReport`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Iterable, Optional

from .dataflow import dataflow_diagnostics
from .diagnostics import Diagnostic, Severity, filter_diagnostics, max_severity
from .policy_lint import lint_policy_database
from .repo_lint import lint_paths
from .selector_analysis import selector_diagnostics
from .typestate import typestate_diagnostics

__all__ = ["AnalysisReport", "run_analysis", "analyze_defaults", "render_text", "render_json"]


@dataclass(frozen=True)
class AnalysisReport:
    """Every diagnostic one analysis run produced."""

    diagnostics: tuple[Diagnostic, ...] = ()

    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity is Severity.ERROR)

    @property
    def warnings(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity is Severity.WARNING)

    @property
    def infos(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity is Severity.INFO)

    @property
    def worst(self) -> Optional[Severity]:
        return max_severity(self.diagnostics)

    def fails(self, threshold: Optional[Severity]) -> bool:
        """Whether this report should gate (exit non-zero) at ``threshold``."""
        if threshold is None:
            return False
        return any(d.severity >= threshold for d in self.diagnostics)

    def counts(self) -> dict[str, int]:
        return {
            "error": len(self.errors),
            "warning": len(self.warnings),
            "info": len(self.infos),
        }


def analyze_defaults(*, ignore: Iterable[str] = ()) -> list[Diagnostic]:
    """Lint the policy database the framework ships with."""
    from ..core.policies import default_policy_database

    diags = lint_policy_database(default_policy_database())
    return filter_diagnostics(diags, ignore=ignore)


def run_analysis(
    paths: Iterable[str] = (),
    *,
    selectors: Iterable[str] = (),
    include_defaults: bool = True,
    include_dataflow: bool = True,
    include_typestate: bool = True,
    ignore: Iterable[str] = (),
    baseline: Optional[dict[str, int]] = None,
) -> AnalysisReport:
    """Run every requested pass and aggregate the findings.

    ``paths`` are files/directories for the repo-lint + extraction pass
    and the dataflow passes; ``selectors`` are ad-hoc selector
    expressions to analyze directly.  A ``baseline`` (see
    :mod:`~repro.analysis.baseline`) drops known findings so only new
    ones remain in the report.
    """
    ignore = tuple(ignore)
    paths = tuple(paths)
    diags: list[Diagnostic] = []
    if include_defaults:
        diags.extend(analyze_defaults(ignore=ignore))
    if paths:
        diags.extend(lint_paths(paths, ignore=ignore))
        if include_dataflow or include_typestate:
            from .callgraph import build_call_graph

            graph = build_call_graph(paths)  # shared by both families
            if include_dataflow:
                diags.extend(dataflow_diagnostics(graph, ignore=ignore))
            if include_typestate:
                diags.extend(typestate_diagnostics(graph, ignore=ignore))
    for expr in selectors:
        diags.extend(
            filter_diagnostics(selector_diagnostics(expr), ignore=ignore)
        )
    if baseline:
        from .baseline import apply_baseline

        diags = apply_baseline(diags, baseline)
    diags.sort(key=lambda d: (d.file or "", d.line or 0, -int(d.severity), d.code))
    return AnalysisReport(tuple(diags))


def render_text(report: AnalysisReport) -> str:
    lines = [d.format() for d in report.diagnostics]
    c = report.counts()
    lines.append(
        f"analysis: {c['error']} error(s), {c['warning']} warning(s),"
        f" {c['info']} info(s)"
    )
    return "\n".join(lines)


def render_json(report: AnalysisReport) -> str:
    payload = {
        "diagnostics": [d.to_dict() for d in report.diagnostics],
        "counts": report.counts(),
        "worst": str(report.worst) if report.worst is not None else None,
    }
    return json.dumps(payload, indent=2, sort_keys=True)
