"""Aggregation and rendering: one entry point over every analyzer pass.

:func:`run_analysis` is what both the CLI (``python -m repro.analysis``)
and the tests drive: it lints the shipped default policy database, walks
source trees applying the repo-lint rules, the selector extraction, and
the cross-layer dataflow passes (units, exception flow, resource
lifecycle), optionally analyzes ad-hoc selector expressions, and folds
everything into a single :class:`AnalysisReport`.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from .concurrency import concurrency_diagnostics
from .dataflow import dataflow_diagnostics
from .diagnostics import Diagnostic, Severity, filter_diagnostics, max_severity
from .hotpath import det_diagnostics, perf_diagnostics
from .policy_lint import lint_policy_database
from .repo_lint import lint_paths
from .selector_analysis import selector_diagnostics
from .typestate import typestate_diagnostics

__all__ = ["AnalysisReport", "run_analysis", "analyze_defaults", "render_text", "render_json"]


@dataclass(frozen=True)
class AnalysisReport:
    """Every diagnostic one analysis run produced."""

    diagnostics: tuple[Diagnostic, ...] = ()

    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity is Severity.ERROR)

    @property
    def warnings(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity is Severity.WARNING)

    @property
    def infos(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity is Severity.INFO)

    @property
    def worst(self) -> Optional[Severity]:
        return max_severity(self.diagnostics)

    def fails(self, threshold: Optional[Severity]) -> bool:
        """Whether this report should gate (exit non-zero) at ``threshold``."""
        if threshold is None:
            return False
        return any(d.severity >= threshold for d in self.diagnostics)

    def counts(self) -> dict[str, int]:
        return {
            "error": len(self.errors),
            "warning": len(self.warnings),
            "info": len(self.infos),
        }


def analyze_defaults(*, ignore: Iterable[str] = ()) -> list[Diagnostic]:
    """Lint the policy database the framework ships with."""
    from ..core.policies import default_policy_database

    diags = lint_policy_database(default_policy_database())
    return filter_diagnostics(diags, ignore=ignore)


def run_analysis(
    paths: Iterable[str] = (),
    *,
    selectors: Iterable[str] = (),
    include_defaults: bool = True,
    include_dataflow: bool = True,
    include_typestate: bool = True,
    include_perf: bool = True,
    include_det: bool = True,
    include_concurrency: bool = True,
    ignore: Iterable[str] = (),
    baseline: Optional[dict[str, int]] = None,
    profile: Optional[dict[str, float]] = None,
    jobs: int = 1,
) -> AnalysisReport:
    """Run every requested pass and aggregate the findings.

    ``paths`` are files/directories for the repo-lint + extraction pass
    and the graph passes; ``selectors`` are ad-hoc selector expressions
    to analyze directly.  A ``baseline`` (see
    :mod:`~repro.analysis.baseline`) drops known findings so only new
    ones remain in the report.  Pass a dict as ``profile`` to receive
    per-rule-family wall times (seconds) in it.  ``jobs > 1`` fans the
    per-file repo-lint pass out over worker processes; the final report
    is sorted either way, so the output is identical to a serial run.
    """
    ignore = tuple(ignore)
    paths = tuple(paths)
    diags: list[Diagnostic] = []

    def timed(family: str, produce: Callable[[], list[Diagnostic]]) -> None:
        t0 = time.perf_counter()
        diags.extend(produce())
        if profile is not None:
            profile[family] = profile.get(family, 0.0) + time.perf_counter() - t0

    if include_defaults:
        timed("defaults", lambda: analyze_defaults(ignore=ignore))
    if paths:
        timed("repo-lint", lambda: lint_paths(paths, ignore=ignore, jobs=jobs))
        if (
            include_dataflow
            or include_typestate
            or include_perf
            or include_det
            or include_concurrency
        ):
            from .callgraph import build_call_graph

            t0 = time.perf_counter()
            graph = build_call_graph(paths)  # shared by every graph family
            if profile is not None:
                profile["callgraph"] = time.perf_counter() - t0
            if include_dataflow:
                timed("dataflow", lambda: dataflow_diagnostics(graph, ignore=ignore))
            if include_typestate:
                timed("typestate", lambda: typestate_diagnostics(graph, ignore=ignore))
            if include_perf:
                timed("perf", lambda: perf_diagnostics(graph, ignore=ignore))
            if include_det:
                timed("det", lambda: det_diagnostics(graph, ignore=ignore))
            if include_concurrency:
                timed(
                    "concurrency",
                    lambda: concurrency_diagnostics(graph, ignore=ignore),
                )
    for expr in selectors:
        timed(
            "selectors",
            lambda expr=expr: filter_diagnostics(
                selector_diagnostics(expr), ignore=ignore
            ),
        )
    if baseline:
        from .baseline import apply_baseline

        diags = apply_baseline(diags, baseline)
    diags.sort(key=lambda d: (d.file or "", d.line or 0, -int(d.severity), d.code))
    return AnalysisReport(tuple(diags))


def render_text(report: AnalysisReport) -> str:
    lines = [d.format() for d in report.diagnostics]
    c = report.counts()
    lines.append(
        f"analysis: {c['error']} error(s), {c['warning']} warning(s),"
        f" {c['info']} info(s)"
    )
    return "\n".join(lines)


def render_json(report: AnalysisReport) -> str:
    payload = {
        "diagnostics": [d.to_dict() for d in report.diagnostics],
        "counts": report.counts(),
        "worst": str(report.worst) if report.worst is not None else None,
    }
    return json.dumps(payload, indent=2, sort_keys=True)
