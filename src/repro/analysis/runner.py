"""Aggregation and rendering: one entry point over every analyzer pass.

:func:`run_analysis` is what both the CLI (``python -m repro.analysis``)
and the tests drive: it lints the shipped default policy database, walks
source trees applying the repo-lint rules, the selector extraction, and
the cross-layer dataflow passes (units, exception flow, resource
lifecycle), optionally analyzes ad-hoc selector expressions, and folds
everything into a single :class:`AnalysisReport`.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from .cache import AnalysisCache
from .concurrency import concurrency_diagnostics
from .dataflow import dataflow_diagnostics
from .diagnostics import Diagnostic, Severity, filter_diagnostics, max_severity
from .hotpath import det_diagnostics, perf_diagnostics
from .policy_lint import lint_policy_database
from .repo_lint import _walk_py_files, lint_file, lint_paths
from .selector_analysis import selector_diagnostics
from .typestate import typestate_diagnostics
from .wireformat import wire_file, wire_paths

__all__ = ["AnalysisReport", "run_analysis", "analyze_defaults", "render_text", "render_json"]


@dataclass(frozen=True)
class AnalysisReport:
    """Every diagnostic one analysis run produced."""

    diagnostics: tuple[Diagnostic, ...] = ()

    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity is Severity.ERROR)

    @property
    def warnings(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity is Severity.WARNING)

    @property
    def infos(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity is Severity.INFO)

    @property
    def worst(self) -> Optional[Severity]:
        return max_severity(self.diagnostics)

    def fails(self, threshold: Optional[Severity]) -> bool:
        """Whether this report should gate (exit non-zero) at ``threshold``."""
        if threshold is None:
            return False
        return any(d.severity >= threshold for d in self.diagnostics)

    def counts(self) -> dict[str, int]:
        return {
            "error": len(self.errors),
            "warning": len(self.warnings),
            "info": len(self.infos),
        }


def analyze_defaults(*, ignore: Iterable[str] = ()) -> list[Diagnostic]:
    """Lint the policy database the framework ships with."""
    from ..core.policies import default_policy_database

    diags = lint_policy_database(default_policy_database())
    return filter_diagnostics(diags, ignore=ignore)


def run_analysis(
    paths: Iterable[str] = (),
    *,
    selectors: Iterable[str] = (),
    include_defaults: bool = True,
    include_dataflow: bool = True,
    include_typestate: bool = True,
    include_perf: bool = True,
    include_det: bool = True,
    include_concurrency: bool = True,
    include_wire: bool = True,
    ignore: Iterable[str] = (),
    baseline: Optional[dict[str, int]] = None,
    profile: Optional[dict[str, float]] = None,
    jobs: int = 1,
    cache: Optional[AnalysisCache] = None,
) -> AnalysisReport:
    """Run every requested pass and aggregate the findings.

    ``paths`` are files/directories for the repo-lint + extraction pass
    and the graph passes; ``selectors`` are ad-hoc selector expressions
    to analyze directly.  A ``baseline`` (see
    :mod:`~repro.analysis.baseline`) drops known findings so only new
    ones remain in the report.  Pass a dict as ``profile`` to receive
    per-rule-family wall times (seconds) in it.  ``jobs > 1`` fans the
    per-file repo-lint and WIRE passes out over worker processes; the
    final report is sorted either way, so the output is identical to a
    serial run.  An :class:`~repro.analysis.cache.AnalysisCache` skips
    unchanged files (per-file passes) and unchanged trees (graph
    passes); cached output is identical to a cold run's because entries
    are keyed by content digest and salted by the rule registry and
    ``ignore`` set.  The caller persists it with ``cache.save()``.
    """
    ignore = tuple(ignore)
    paths = tuple(paths)
    diags: list[Diagnostic] = []

    def timed(family: str, produce: Callable[[], list[Diagnostic]]) -> None:
        t0 = time.perf_counter()
        diags.extend(produce())
        if profile is not None:
            profile[family] = profile.get(family, 0.0) + time.perf_counter() - t0

    def per_file_pass(
        family: str,
        files: list[str],
        whole: Callable[[], list[Diagnostic]],
        one: Callable[[str], list[Diagnostic]],
    ) -> list[Diagnostic]:
        if cache is None:
            return whole()
        out: list[Diagnostic] = []
        for path in files:
            digest = cache.digest(path)
            got = cache.get(family, path, digest)
            if got is None:
                got = one(path)
                cache.put(family, path, digest, got)
            out.extend(got)
        return out

    def graph_pass(
        family: str,
        tree_key: Optional[str],
        produce: Callable[[], list[Diagnostic]],
    ) -> list[Diagnostic]:
        if cache is None or tree_key is None:
            return produce()
        key = f"{family}:{tree_key}"
        got = cache.get_graph(key)
        if got is None:
            got = produce()
            cache.put_graph(key, got)
        return got

    if include_defaults:
        timed("defaults", lambda: analyze_defaults(ignore=ignore))
    if paths:
        files = _walk_py_files(paths) if cache is not None else []
        timed(
            "repo-lint",
            lambda: per_file_pass(
                "repo-lint",
                files,
                lambda: lint_paths(paths, ignore=ignore, jobs=jobs),
                lambda p: lint_file(p, ignore=ignore),
            ),
        )
        if include_wire:
            timed(
                "wire",
                lambda: per_file_pass(
                    "wire",
                    files,
                    lambda: wire_paths(paths, ignore=ignore, jobs=jobs),
                    lambda p: wire_file(p, ignore=ignore),
                ),
            )
        if (
            include_dataflow
            or include_typestate
            or include_perf
            or include_det
            or include_concurrency
        ):
            tree_key = cache.tree_key(files) if cache is not None else None
            # the graph is shared by every graph family but expensive to
            # build; defer it so a fully warm cache never constructs it
            graph_box: list = []

            def shared_graph():
                if not graph_box:
                    from .callgraph import build_call_graph

                    t0 = time.perf_counter()
                    graph_box.append(build_call_graph(paths))
                    if profile is not None:
                        profile["callgraph"] = time.perf_counter() - t0
                return graph_box[0]

            producers: dict[str, Callable[[], list[Diagnostic]]] = {
                "dataflow": lambda: dataflow_diagnostics(shared_graph(), ignore=ignore),
                "typestate": lambda: typestate_diagnostics(shared_graph(), ignore=ignore),
                "perf": lambda: perf_diagnostics(shared_graph(), ignore=ignore),
                "det": lambda: det_diagnostics(shared_graph(), ignore=ignore),
                "concurrency": lambda: concurrency_diagnostics(shared_graph(), ignore=ignore),
            }
            for name, flag in (
                ("dataflow", include_dataflow),
                ("typestate", include_typestate),
                ("perf", include_perf),
                ("det", include_det),
                ("concurrency", include_concurrency),
            ):
                if flag:
                    timed(
                        name,
                        lambda name=name: graph_pass(name, tree_key, producers[name]),
                    )
    for expr in selectors:
        timed(
            "selectors",
            lambda expr=expr: filter_diagnostics(
                selector_diagnostics(expr), ignore=ignore
            ),
        )
    if baseline:
        from .baseline import apply_baseline

        diags = apply_baseline(diags, baseline)
    diags.sort(key=lambda d: (d.file or "", d.line or 0, -int(d.severity), d.code))
    return AnalysisReport(tuple(diags))


def render_text(report: AnalysisReport) -> str:
    lines = [d.format() for d in report.diagnostics]
    c = report.counts()
    lines.append(
        f"analysis: {c['error']} error(s), {c['warning']} warning(s),"
        f" {c['info']} info(s)"
    )
    return "\n".join(lines)


def render_json(report: AnalysisReport) -> str:
    payload = {
        "diagnostics": [d.to_dict() for d in report.diagnostics],
        "counts": report.counts(),
        "worst": str(report.worst) if report.worst is not None else None,
    }
    return json.dumps(payload, indent=2, sort_keys=True)
