"""Runtime lock-order sanitizer: dynamic corroboration for DLK001.

The static verifier (:mod:`repro.analysis.concurrency`) proves lock
discipline from the AST; this module observes it from a *live* process.
Tracked locks (:class:`TrackedLock`) delegate to a real
``threading.Lock``/``RLock`` but report every acquisition to the active
:class:`LockOrderSanitizer`, which keeps a per-thread stack of held lock
names and accumulates the observed acquisition-order edges — exactly the
edge relation the static pass computes, but witnessed at run time with
thread names and stack frames.  An *inversion* (some thread acquired
``A`` then ``B``, another ``B`` then ``A``) is recorded the moment the
second order is seen — the lockdep trick: the sanitizer catches the
deadlock *potential* even on runs where the interleaving never actually
deadlocks.

Opt-in and zero-cost when off:

* ``REPRO_SANITIZE=1 pytest`` — the test-suite hook in
  ``tests/conftest.py`` calls :func:`enable`, the runtime layers'
  :func:`repro._locks.make_lock` starts handing out tracked locks,
  and the session fails if any inversion was observed.  The
  JSON report (:meth:`LockOrderSanitizer.write_report`) feeds
  ``python -m repro.analysis --sanitize report.json``, which merges the
  runtime edges into the static lock graph and re-runs cycle detection
  (:func:`~repro.analysis.concurrency.check_sanitizer_report`).
* Without the env var (and without a programmatic :func:`enable`),
  ``make_lock`` returns a plain ``threading.Lock`` — no wrapper, no
  bookkeeping, nothing on the hot path.

Edges are recorded *before* blocking on the underlying lock, so an
acquisition that would deadlock still contributes its edge first.
"""

from __future__ import annotations

import json
import os
import threading
import traceback
from typing import Iterable, Optional, Protocol

__all__ = [
    "TrackedLock",
    "LockOrderSanitizer",
    "enable",
    "disable",
    "get",
    "is_enabled",
    "make_lock",
]


class LockLike(Protocol):
    """What callers need from a lock (plain or tracked).

    Both shapes also work as context managers; the protocol stays
    minimal because ``threading``'s dunder signatures vary across
    typeshed versions.
    """

    def acquire(self, blocking: bool = ..., timeout: float = ...) -> bool: ...

    def release(self) -> None: ...

#: frames of acquisition stack kept per first-seen edge witness
_WITNESS_FRAMES = 6

_active: Optional["LockOrderSanitizer"] = None
_active_mu = threading.Lock()


class LockOrderSanitizer:
    """Accumulates lock-acquisition order observations across threads."""

    def __init__(self, *, max_frames: int = _WITNESS_FRAMES) -> None:
        self._max_frames = max_frames
        self._tls = threading.local()
        self._mu = threading.Lock()  # guards the shared tables below
        #: (held, acquired) -> observation count
        self._edges: dict[tuple[str, str], int] = {}
        #: (held, acquired) -> first witness {thread, stack}
        self._witness: dict[tuple[str, str], dict[str, object]] = {}
        self._locks_seen: set[str] = set()
        #: inversions in observation order: (a, b) recorded when the
        #: edge a->b arrived while b->a was already on file
        self._inversions: list[tuple[str, str]] = []

    # -- per-thread held stack ------------------------------------------
    def _held(self) -> list[str]:
        stack = getattr(self._tls, "held", None)
        if stack is None:
            stack = []
            self._tls.held = stack
        return stack

    # -- observation hooks (called by TrackedLock) ----------------------
    def before_acquire(self, name: str) -> None:
        """Record order edges for ``name`` against everything held."""
        held = self._held()
        if not held:
            with self._mu:
                self._locks_seen.add(name)
            return
        stack = [
            f"{f.filename}:{f.lineno}:{f.name}"
            for f in traceback.extract_stack(limit=self._max_frames + 2)[:-2]
        ]
        thread = threading.current_thread().name
        with self._mu:
            self._locks_seen.add(name)
            for h in held:
                if h == name:
                    continue  # re-entrant self-acquire orders nothing
                edge = (h, name)
                fresh = edge not in self._edges
                self._edges[edge] = self._edges.get(edge, 0) + 1
                if fresh:
                    self._witness[edge] = {"thread": thread, "stack": stack}
                    if (name, h) in self._edges:
                        self._inversions.append((h, name))

    def on_acquired(self, name: str) -> None:
        self._held().append(name)

    def on_release(self, name: str) -> None:
        held = self._held()
        for i in range(len(held) - 1, -1, -1):
            if held[i] == name:
                del held[i]
                return

    # -- results ---------------------------------------------------------
    def edges(self) -> list[tuple[str, str]]:
        """Observed (held, acquired) pairs, sorted."""
        with self._mu:
            return sorted(self._edges)

    def inversions(self) -> list[tuple[str, str]]:
        """Lock pairs observed in both orders (deadlock potential).

        Each pair is reported once, canonically ordered, sorted.
        """
        with self._mu:
            seen = set(self._edges)
        out = {tuple(sorted((a, b))) for a, b in seen if (b, a) in seen}
        return sorted((a, b) for a, b in out)

    def check_against(self, static_edges: Iterable[tuple[str, str]]) -> list[str]:
        """Runtime orders that invert an edge of the static lock graph.

        The static pass may know orders this run never exercised; an
        observed edge that reverses one of them is a latent inversion
        even if this process never saw both orders itself.
        """
        static = set(static_edges)
        return [
            f"runtime order {a} -> {b} inverts the statically proven order {b} -> {a}"
            for a, b in self.edges()
            if (b, a) in static and (a, b) not in static
        ]

    def report(self) -> dict[str, object]:
        """JSON-serialisable summary of everything observed."""
        with self._mu:
            edges = sorted(self._edges)
            payload_edges = [
                {
                    "held": a,
                    "acquired": b,
                    "count": self._edges[(a, b)],
                    "witness": self._witness.get((a, b), {}),
                }
                for a, b in edges
            ]
            locks = sorted(self._locks_seen)
        return {
            "schema": 1,
            "locks": locks,
            "edges": payload_edges,
            "inversions": [list(pair) for pair in self.inversions()],
        }

    def write_report(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.report(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    def reset(self) -> None:
        with self._mu:
            self._edges.clear()
            self._witness.clear()
            self._locks_seen.clear()
            self._inversions.clear()


class TrackedLock:
    """A named lock that reports acquisitions to the active sanitizer.

    Delegates to a real ``threading.Lock`` (or ``RLock`` with
    ``reentrant=True``); the sanitizer is looked up *per operation*, so
    one lock object works across :func:`enable`/:func:`disable` cycles
    and tests that install their own sanitizer.
    """

    __slots__ = ("name", "_lock", "_sanitizer")

    def __init__(
        self,
        name: str,
        *,
        reentrant: bool = False,
        sanitizer: Optional[LockOrderSanitizer] = None,
    ) -> None:
        self.name = name
        self._lock = threading.RLock() if reentrant else threading.Lock()
        self._sanitizer = sanitizer

    def _san(self) -> Optional[LockOrderSanitizer]:
        return self._sanitizer if self._sanitizer is not None else _active

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        san = self._san()
        if san is not None:
            san.before_acquire(self.name)
        ok = self._lock.acquire(blocking, timeout)
        if ok and san is not None:
            san.on_acquired(self.name)
        return ok

    def release(self) -> None:
        san = self._san()
        if san is not None:
            san.on_release(self.name)
        self._lock.release()

    def locked(self) -> bool:
        locked = getattr(self._lock, "locked", None)
        return bool(locked()) if callable(locked) else False

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: object) -> None:
        self.release()

    def __repr__(self) -> str:
        return f"TrackedLock({self.name!r})"


# ----------------------------------------------------------------------
# process-wide activation
# ----------------------------------------------------------------------
def enable(sanitizer: Optional[LockOrderSanitizer] = None) -> LockOrderSanitizer:
    """Install (and return) the process-wide sanitizer."""
    global _active
    with _active_mu:
        if sanitizer is None:
            sanitizer = _active or LockOrderSanitizer()
        _active = sanitizer
        return sanitizer


def disable() -> None:
    """Deactivate the process-wide sanitizer (observations are kept)."""
    global _active
    with _active_mu:
        _active = None


def get() -> Optional[LockOrderSanitizer]:
    """The active process-wide sanitizer, if any."""
    return _active


def is_enabled() -> bool:
    return _active is not None or bool(os.environ.get("REPRO_SANITIZE"))


def make_lock(name: str, *, reentrant: bool = False) -> LockLike:
    """A lock for ``name``: tracked when the sanitizer is on, plain otherwise.

    The decision is made at construction time — long-lived locks created
    before :func:`enable` stay plain — so production code pays nothing.
    ``REPRO_SANITIZE`` in the environment forces tracked locks from the
    start of the process, which is how the test-suite hook works.
    """
    if is_enabled():
        return TrackedLock(name, reentrant=reentrant)
    return threading.RLock() if reentrant else threading.Lock()
