"""Project call graph: who calls whom, resolved from the AST alone.

The dataflow passes (:mod:`repro.analysis.dataflow`) need to reason
*across* functions — a unit produced in ``wireless/sir.py`` is consumed
three layers up in ``core/basestation.py``; an exception raised in the
serialization codec escapes through the RTP reassembler into a transport
callback.  This module builds the interprocedural skeleton those passes
walk: every function/method in the analyzed tree becomes a node, every
call site an edge, resolved as far as static information allows.

Resolution is deliberately layered, cheapest first:

1. **Lexical**: ``from .sir import to_db`` / module-level ``def`` names
   resolve calls like ``to_db(x)`` directly.
2. **Self dispatch**: ``self.method(...)`` resolves within the enclosing
   class (no inheritance walk — the tree under analysis is flat).
3. **Type-tracked receivers**: locals assigned from a known constructor
   (``sock = DatagramSocket(...)``), parameters with a class annotation
   (``def f(sock: DatagramSocket)``), and ``self.attr`` slots assigned a
   constructor anywhere in the class resolve ``recv.method(...)`` to
   ``Class.method``.

Unresolved calls keep their textual shape (``recv_type``/``method``) so
the passes can still match them against registries (e.g. "any ``.sendto``
on something typed as a transport").

Nothing here imports analyzed code; it is all :mod:`ast`.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

__all__ = [
    "FunctionInfo",
    "CallSite",
    "CallGraph",
    "build_call_graph",
    "build_call_graph_from_sources",
    "module_name_for_path",
]


def module_name_for_path(path: str) -> str:
    """Dotted module name for ``path``, rooted at a ``src`` dir when present.

    ``.../src/repro/wireless/sir.py`` → ``repro.wireless.sir``; files
    outside a recognisable package root use their stem (good enough for
    single-file corpus tests).
    """
    norm = path.replace(os.sep, "/")
    if norm.endswith(".py"):
        norm = norm[: -len(".py")]
    parts = norm.split("/")
    if "src" in parts:
        parts = parts[parts.index("src") + 1 :]
    elif "repro" in parts:
        parts = parts[parts.index("repro") :]
    else:
        parts = parts[-1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(p for p in parts if p) or "module"


@dataclass
class FunctionInfo:
    """One function or method node in the graph."""

    qualname: str  #: ``module.func`` or ``module.Class.method``
    module: str
    name: str
    cls: Optional[str]  #: enclosing class short name, if a method
    node: ast.AST  #: the FunctionDef / AsyncFunctionDef
    path: str
    params: tuple[str, ...] = ()  #: positional-or-keyword names, ``self`` excluded

    @property
    def is_method(self) -> bool:
        return self.cls is not None


@dataclass
class CallSite:
    """One call expression inside a function body."""

    caller: str  #: qualname of the enclosing function ("" at module level)
    callee: Optional[str]  #: resolved qualname, or None
    func_repr: str  #: textual callee, e.g. ``self._sock.sendto``
    method: str  #: rightmost name, e.g. ``sendto``
    recv_type: Optional[str]  #: receiver's class short name when tracked
    node: ast.Call = field(repr=False, default=None)  # type: ignore[assignment]
    path: str = ""
    line: int = 0


class CallGraph:
    """Functions, classes, attribute types, and resolved call edges."""

    def __init__(self) -> None:
        self.functions: dict[str, FunctionInfo] = {}
        #: class short name -> defining module (first wins; tree has unique names)
        self.classes: dict[str, str] = {}
        #: class short name -> base class short names (exception hierarchy)
        self.class_bases: dict[str, tuple[str, ...]] = {}
        #: (class short name, attr) -> class short name of the stored object
        self.attr_types: dict[tuple[str, str], str] = {}
        #: path -> source text (for suppression parsing downstream)
        self.sources: dict[str, str] = {}
        self.calls: list[CallSite] = []
        self._by_caller: dict[str, list[CallSite]] = {}
        self._callers: dict[str, set[str]] = {}

    def ancestors(self, cls: str) -> set[str]:
        """Transitive base-class names of ``cls`` within the analyzed tree."""
        out: set[str] = set()
        frontier = [cls]
        while frontier:
            c = frontier.pop()
            for base in self.class_bases.get(c, ()):
                if base not in out:
                    out.add(base)
                    frontier.append(base)
        return out

    # -- construction ---------------------------------------------------
    def add_function(self, info: FunctionInfo) -> None:
        self.functions[info.qualname] = info

    def add_call(self, site: CallSite) -> None:
        self.calls.append(site)
        self._by_caller.setdefault(site.caller, []).append(site)
        if site.callee is not None:
            self._callers.setdefault(site.callee, set()).add(site.caller)

    # -- queries --------------------------------------------------------
    def calls_from(self, qualname: str) -> list[CallSite]:
        """Call sites lexically inside ``qualname``."""
        return self._by_caller.get(qualname, [])

    def callers_of(self, qualname: str) -> set[str]:
        """Qualnames of functions with a resolved edge to ``qualname``."""
        return set(self._callers.get(qualname, ()))

    def callees_of(self, qualname: str) -> set[str]:
        return {s.callee for s in self.calls_from(qualname) if s.callee is not None}

    def method_qualname(self, cls: str, method: str) -> Optional[str]:
        """``Class.method`` resolved to a graph node, if the class is known."""
        module = self.classes.get(cls)
        if module is None:
            return None
        q = f"{module}.{cls}.{method}"
        return q if q in self.functions else None

    def function_by_suffix(self, suffix: str) -> Optional[FunctionInfo]:
        """First function whose qualname ends with ``suffix`` (tests/registries)."""
        for q, info in self.functions.items():
            if q == suffix or q.endswith("." + suffix):
                return info
        return None

    def __len__(self) -> int:
        return len(self.functions)


# ----------------------------------------------------------------------
# builder
# ----------------------------------------------------------------------
class _ModuleScope:
    """Per-module resolution environment."""

    def __init__(self, module: str) -> None:
        self.module = module
        self.imports: dict[str, str] = {}  # local name -> dotted target
        self.functions: dict[str, str] = {}  # short name -> qualname
        self.classes: set[str] = set()


def _resolve_relative(module: str, level: int, target: Optional[str]) -> str:
    if level == 0:  # absolute import: the current module plays no part
        return target or ""
    parts = module.split(".")
    base = parts[: len(parts) - level] if level <= len(parts) else []
    if target:
        base = base + target.split(".")
    return ".".join(base)


class _Builder:
    def __init__(self) -> None:
        self.graph = CallGraph()
        self._pending: list[tuple[str, str, ast.Module]] = []  # (path, module, tree)

    def add_source(self, path: str, source: str) -> None:
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError:
            return  # repo_lint reports unparseable files; skip here
        self.graph.sources[path] = source
        self._pending.append((path, module_name_for_path(path), tree))

    def build(self) -> CallGraph:
        scopes: dict[str, _ModuleScope] = {}
        # pass 1: declarations (functions, classes, attr types, imports)
        for path, module, tree in self._pending:
            scopes[module] = self._collect_declarations(path, module, tree)
        # pass 2: call sites, with full cross-module knowledge available
        for path, module, tree in self._pending:
            self._collect_calls(path, module, tree, scopes[module])
        return self.graph

    # -- pass 1 ---------------------------------------------------------
    def _collect_declarations(self, path: str, module: str, tree: ast.Module) -> _ModuleScope:
        scope = _ModuleScope(module)
        for node in tree.body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    scope.imports[alias.asname or alias.name.split(".")[0]] = alias.name
            elif isinstance(node, ast.ImportFrom):
                base = _resolve_relative(module, node.level, node.module)
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    scope.imports[alias.asname or alias.name] = f"{base}.{alias.name}"
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                q = f"{module}.{node.name}"
                scope.functions[node.name] = q
                self.graph.add_function(
                    FunctionInfo(q, module, node.name, None, node, path, _params(node))
                )
            elif isinstance(node, ast.ClassDef):
                scope.classes.add(node.name)
                self.graph.classes.setdefault(node.name, module)
                bases = tuple(
                    b for b in (_rightmost_name(base) for base in node.bases) if b
                )
                self.graph.class_bases.setdefault(node.name, bases)
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        q = f"{module}.{node.name}.{item.name}"
                        self.graph.add_function(
                            FunctionInfo(
                                q, module, item.name, node.name, item, path, _params(item)
                            )
                        )
                        for stmt in ast.walk(item):
                            # self.attr = Ctor(...) anywhere in the class
                            if (
                                isinstance(stmt, ast.Assign)
                                and len(stmt.targets) == 1
                                and isinstance(stmt.targets[0], ast.Attribute)
                                and isinstance(stmt.targets[0].value, ast.Name)
                                and stmt.targets[0].value.id == "self"
                                and isinstance(stmt.value, ast.Call)
                            ):
                                ctor = _rightmost_name(stmt.value.func)
                                if ctor and (ctor[0].isupper() or ctor == "socket"):
                                    self.graph.attr_types.setdefault(
                                        (node.name, stmt.targets[0].attr), ctor
                                    )
        return scope

    # -- pass 2 ---------------------------------------------------------
    def _collect_calls(
        self, path: str, module: str, tree: ast.Module, scope: _ModuleScope
    ) -> None:
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._walk_function(path, module, scope, None, node)
            elif isinstance(node, ast.ClassDef):
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self._walk_function(path, module, scope, node.name, item)

    def _walk_function(
        self,
        path: str,
        module: str,
        scope: _ModuleScope,
        cls: Optional[str],
        fn: ast.AST,
    ) -> None:
        assert isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef))
        caller = f"{module}.{cls}.{fn.name}" if cls else f"{module}.{fn.name}"
        local_types = self._annotation_types(fn, scope)
        # one linear pre-pass for `v = Ctor(...)` locals (flow-insensitive,
        # good enough: re-binding a resource var to a new type mid-function
        # is its own finding)
        for stmt in ast.walk(fn):
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and isinstance(stmt.value, ast.Call)
            ):
                ctor = self._class_of_call(stmt.value, scope, cls)
                if ctor is not None:
                    local_types.setdefault(stmt.targets[0].id, ctor)
        for sub in ast.walk(fn):
            if isinstance(sub, ast.Call):
                self.graph.add_call(
                    self._resolve_call(sub, caller, path, scope, cls, local_types)
                )

    def _annotation_types(
        self, fn: ast.AST, scope: _ModuleScope
    ) -> dict[str, str]:
        assert isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef))
        out: dict[str, str] = {}
        for arg in list(fn.args.args) + list(fn.args.kwonlyargs):
            ann = arg.annotation
            name: Optional[str] = None
            if isinstance(ann, ast.Name):
                name = ann.id
            elif isinstance(ann, ast.Constant) and isinstance(ann.value, str):
                name = ann.value.rsplit(".", 1)[-1]
            elif isinstance(ann, ast.Attribute):
                name = ann.attr
            if name and (name in self.graph.classes or name in scope.classes):
                out[arg.arg] = name
        return out

    def _class_of_call(
        self, call: ast.Call, scope: _ModuleScope, cls: Optional[str]
    ) -> Optional[str]:
        """Class short name when ``call`` is a known constructor."""
        name = _rightmost_name(call.func)
        if name is None:
            return None
        if name in scope.classes or name in self.graph.classes:
            return name
        # socket.socket(...) / _socketlib.socket(...): track raw OS sockets
        if (
            name == "socket"
            and isinstance(call.func, ast.Attribute)
            and isinstance(call.func.value, ast.Name)
        ):
            return "socket"
        return None

    def _resolve_call(
        self,
        call: ast.Call,
        caller: str,
        path: str,
        scope: _ModuleScope,
        cls: Optional[str],
        local_types: dict[str, str],
    ) -> CallSite:
        func = call.func
        repr_ = _expr_repr(func)
        method = _rightmost_name(func) or "<expr>"
        callee: Optional[str] = None
        recv_type: Optional[str] = None

        if isinstance(func, ast.Name):
            name = func.id
            if name in scope.functions:
                callee = scope.functions[name]
            elif name in scope.imports:
                target = scope.imports[name]
                if target in self.graph.functions:
                    callee = target
                elif target.rsplit(".", 1)[-1] in self.graph.classes:
                    short = target.rsplit(".", 1)[-1]
                    callee = self.graph.method_qualname(short, "__init__")
                    recv_type = short
            elif name in scope.classes or name in self.graph.classes:
                callee = self.graph.method_qualname(name, "__init__")
                recv_type = name
        elif isinstance(func, ast.Attribute):
            base = func.value
            if isinstance(base, ast.Name):
                if base.id == "self" and cls is not None:
                    recv_type = cls
                elif base.id in local_types:
                    recv_type = local_types[base.id]
                elif base.id in scope.imports:
                    dotted = f"{scope.imports[base.id]}.{func.attr}"
                    if dotted in self.graph.functions:
                        callee = dotted
            elif (
                isinstance(base, ast.Attribute)
                and isinstance(base.value, ast.Name)
                and base.value.id == "self"
                and cls is not None
            ):
                recv_type = self.graph.attr_types.get((cls, base.attr))
            if recv_type is not None and callee is None:
                callee = self.graph.method_qualname(recv_type, func.attr)
        return CallSite(
            caller=caller,
            callee=callee,
            func_repr=repr_,
            method=method,
            recv_type=recv_type,
            node=call,
            path=path,
            line=call.lineno,
        )


def _params(fn: ast.AST) -> tuple[str, ...]:
    assert isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef))
    names = [a.arg for a in fn.args.args]
    if names and names[0] in ("self", "cls"):
        names = names[1:]
    return tuple(names + [a.arg for a in fn.args.kwonlyargs])


def _rightmost_name(expr: ast.expr) -> Optional[str]:
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    return None


def _expr_repr(expr: ast.expr) -> str:
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return f"{_expr_repr(expr.value)}.{expr.attr}"
    if isinstance(expr, ast.Call):
        return f"{_expr_repr(expr.func)}(...)"
    return "<expr>"


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------
def build_call_graph_from_sources(
    sources: Sequence[tuple[str, str]],
) -> CallGraph:
    """Build from in-memory ``(path, source)`` pairs (corpus tests)."""
    b = _Builder()
    for path, source in sources:
        b.add_source(path, source)
    return b.build()


def build_call_graph(paths: Iterable[str]) -> CallGraph:
    """Build from ``.py`` files under each path (files taken as-is)."""
    b = _Builder()
    for root in paths:
        if os.path.isfile(root):
            b.add_source(root, _read(root))
            continue
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames[:] = sorted(
                d for d in dirnames if not d.startswith((".", "__pycache__"))
            )
            for fn in sorted(filenames):
                if fn.endswith(".py"):
                    p = os.path.join(dirpath, fn)
                    b.add_source(p, _read(p))
    return b.build()


def _read(path: str) -> str:
    with open(path, "r", encoding="utf-8") as fh:
        return fh.read()
