"""SARIF 2.1.0 rendering for GitHub code-scanning annotations.

One run, one driver (``repro-analysis``), every rule from the stable
registry with its default severity mapped onto SARIF levels
(ERROR → ``error``, WARNING → ``warning``, INFO → ``note``).  Findings
without a file location (e.g. ad-hoc ``--selector`` analyses) still get
a result — GitHub renders them at the repository level.
"""

from __future__ import annotations

import json
from typing import Sequence

from .diagnostics import RULES, Diagnostic, Severity

__all__ = ["render_sarif"]

_SCHEMA = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"

_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}


def _rules() -> list[dict[str, object]]:
    out: list[dict[str, object]] = []
    for code, (severity, description) in sorted(RULES.items()):
        out.append(
            {
                "id": code,
                "shortDescription": {"text": description},
                "defaultConfiguration": {"level": _LEVELS[severity]},
            }
        )
    return out


def _result(diag: Diagnostic) -> dict[str, object]:
    message = diag.message
    if diag.subject:
        message = f"{message} [{diag.subject}]"
    result: dict[str, object] = {
        "ruleId": diag.code,
        "level": _LEVELS[diag.severity],
        "message": {"text": message},
    }
    if diag.file is not None:
        region: dict[str, object] = {}
        if diag.line is not None:
            region["startLine"] = diag.line
            if diag.column is not None and diag.column > 0:
                region["startColumn"] = diag.column
        location: dict[str, object] = {
            "physicalLocation": {
                "artifactLocation": {
                    "uri": diag.file.replace("\\", "/"),
                    "uriBaseId": "%SRCROOT%",
                },
            }
        }
        if region:
            location["physicalLocation"]["region"] = region  # type: ignore[index]
        result["locations"] = [location]
    return result


def render_sarif(diagnostics: Sequence[Diagnostic]) -> str:
    """The full SARIF log for one analysis run."""
    log = {
        "$schema": _SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-analysis",
                        "informationUri": "https://example.invalid/repro",
                        "rules": _rules(),
                    }
                },
                "results": [_result(d) for d in diagnostics],
            }
        ],
    }
    return json.dumps(log, indent=2, sort_keys=True) + "\n"
