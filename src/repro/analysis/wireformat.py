"""Wire-format symmetry & decode-safety verifier (WIRE rules).

The repo's codecs are hand-rolled binary formats — event bodies
(:mod:`repro.core.events`), progressive-image packets
(:mod:`repro.media.progressive`), RTP/RNAK datagrams
(:mod:`repro.messaging.rtp`), the semantic-message codec
(:mod:`repro.messaging.serialization`), and the BER subset
(:mod:`repro.snmp.ber`).  The fault injector delivers exactly the
truncated and bit-flipped bytes that crash naive decoders, so this pass
verifies, per source file and without importing anything:

* **Codec-pair registry** — ``to_bytes``/``from_bytes``,
  ``to_body``/``from_body``, ``encode``/``decode`` method pairs,
  ``encode_X``/``decode_X`` and ``X_encode``/``X_decode`` module-function
  pairs, plus pairs declared explicitly in a module-level ``WIRE_PAIRS``
  tuple of ``("encoder_name", "decoder_name")`` entries.
* **Abstract byte-layout interpreter** — both sides of a pair are
  abstracted into a token stream over ``struct`` format strings,
  ``int.to_bytes``/``int.from_bytes`` width+endianness, slice offsets,
  length-prefixed string helpers (``_pack_str`` style), varint helpers,
  loops, and raw tails.  Interpretation stops at the first construct the
  abstraction cannot model (an ``opaque`` token), so every reported
  asymmetry is definite, never speculative.

Rules:

* ``WIRE001`` — the encoder and decoder token streams disagree on field
  order, width, or endianness before either goes opaque.
* ``WIRE002`` — a decoder (or a reader helper it calls) performs a raw
  read — integer subscript, ``struct.unpack_from``, or a fixed-width
  ``int.from_bytes`` slice — with no ``len()`` bounds guard anywhere in
  the function: truncated input raises ``IndexError``/``struct.error``
  (or silently mis-decodes) instead of the codec's declared error.
* ``WIRE003`` — a length-prefix field and the loop that produces or
  consumes it disagree (the encoder packs ``len(X)`` but loops over
  ``Y``, or the decoder reads count ``n`` but iterates ``range(m)``).
* ``WIRE004`` — a magic-prefix dispatch (``data[:k] == MAGIC``) shares a
  module with a codec whose leading field is a variable fixed-width
  value of width >= k, so a value collision would mis-dispatch (the
  RNAK/ssrc caveat).
* ``WIRE005`` — an encoder iterates an unordered container (``set``
  literal or call) into wire bytes, breaking byte-identical replay.

The runtime twin lives in :mod:`repro.analysis.wirefuzz`: a differential
fuzz harness deriving round-trip, truncation, and bit-flip properties
from an importing registry of the same codec pairs.
"""

from __future__ import annotations

import ast
import os
import struct
from dataclasses import dataclass, field
from typing import Iterable, Optional

from .diagnostics import Diagnostic, filter_diagnostics, parse_suppressions, rule_severity

__all__ = [
    "CodecPair",
    "Tok",
    "wire_source",
    "wire_file",
    "wire_paths",
    "analyze_wireformat",
    "PAIR_METHOD_NAMES",
]

#: method-name pairs discovered on classes
PAIR_METHOD_NAMES: tuple[tuple[str, str], ...] = (
    ("to_bytes", "from_bytes"),
    ("to_body", "from_body"),
    ("encode", "decode"),
)

_INT_WIDTHS = {"b": 1, "B": 1, "h": 2, "H": 2, "i": 4, "I": 4, "l": 4, "L": 4, "q": 8, "Q": 8}
_FLOAT_WIDTHS = {"e": 2, "f": 4, "d": 8}
_ENDIAN_CHARS = "><!=@"

_OPAQUE = ("opaque",)


@dataclass
class Tok:
    """One abstract layout token.

    ``kind`` is the canonical comparison key: ``("int", width, endian)``,
    ``("float", width, endian)``, ``("bytes", n)`` (fixed/magic bytes),
    ``("varint",)``, ``("raw",)`` (length-prefixed or tail bytes),
    ``("array", elem_kind)``, ``("loop",)`` (with ``body``), or
    ``("opaque",)``.
    """

    kind: tuple
    line: int = 0
    #: encoder: the container whose len() this count field encodes
    count_src: Optional[str] = None
    #: loop/array: the expression driving the repeat count
    count_used: Optional[str] = None
    #: decoder: names assigned from this field
    names: tuple[str, ...] = ()
    body: tuple["Tok", ...] = ()

    def describe(self) -> str:
        k = self.kind
        if k[0] == "int":
            return f"u{int(k[1]) * 8}({'be' if k[2] == '>' else 'le' if k[2] == '<' else 'na'})"
        if k[0] == "float":
            return f"f{int(k[1]) * 8}({'be' if k[2] == '>' else 'le' if k[2] == '<' else 'na'})"
        if k[0] == "bytes":
            return f"bytes[{k[1]}]"
        if k[0] == "array":
            return f"array({Tok(kind=k[1]).describe()})"
        if k[0] == "loop":
            inner = ", ".join(t.describe() for t in self.body)
            return f"loop[{inner}]"
        return str(k[0])


@dataclass(frozen=True)
class CodecPair:
    """One discovered encoder/decoder pair in a module."""

    encoder: str
    decoder: str
    enc_node: ast.FunctionDef
    dec_node: ast.FunctionDef
    cls: Optional[str] = None

    @property
    def label(self) -> str:
        return f"{self.encoder}/{self.decoder}"


def _struct_tokens(fmt: str, line: int) -> Optional[list[Tok]]:
    """Tokens for a constant ``struct`` format string (None = opaque)."""
    endian = "="
    i = 0
    if fmt[:1] in _ENDIAN_CHARS:
        endian = ">" if fmt[0] in ">!" else "<" if fmt[0] == "<" else "="
        i = 1
    out: list[Tok] = []
    digits = ""
    for ch in fmt[i:]:
        if ch.isdigit():
            digits += ch
            continue
        n = int(digits) if digits else 1
        digits = ""
        if n > 64:
            return None
        if ch in ("s", "x"):
            out.append(Tok(kind=("bytes", n), line=line))
            continue
        for _ in range(n):
            if ch in _INT_WIDTHS:
                w = _INT_WIDTHS[ch]
                out.append(Tok(kind=("int", w, "=" if w == 1 else endian), line=line))
            elif ch in _FLOAT_WIDTHS:
                out.append(Tok(kind=("float", _FLOAT_WIDTHS[ch], endian), line=line))
            elif ch == "?":
                out.append(Tok(kind=("int", 1, "="), line=line))
            elif ch == " ":
                continue
            else:
                return None
    return out


def _const_str(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _const_int(node: ast.expr) -> Optional[int]:
    if isinstance(node, ast.Constant) and isinstance(node.value, int) and not isinstance(node.value, bool):
        return node.value
    return None


def _dump(node: ast.expr) -> str:
    """Canonical text of an expression — used both for equality checks
    between encoder/decoder count expressions and, verbatim, in WIRE003
    messages (so it must stay human-readable)."""
    try:
        return ast.unparse(node)
    except ValueError:  # pragma: no cover - malformed synthetic nodes
        return ast.dump(node)


def _len_target(node: ast.expr) -> Optional[str]:
    """``len(X)`` -> canonical dump of X, else None."""
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "len"
        and len(node.args) == 1
    ):
        return _dump(node.args[0])
    return None


def _slice_width(sl: ast.expr) -> Optional[int]:
    """Constant width of a bounded slice ``lower:upper`` (None if unknown).

    Handles constant bounds and the ``P[e : e + N]`` / ``P[e + A : e + B]``
    shapes where both bounds share the same base expression.
    """
    if not isinstance(sl, ast.Slice) or sl.lower is None or sl.upper is None:
        return None

    def split(e: ast.expr) -> Optional[tuple[str, int]]:
        c = _const_int(e)
        if c is not None:
            return ("", c)
        if isinstance(e, ast.Name):
            return (_dump(e), 0)
        if isinstance(e, ast.BinOp) and isinstance(e.op, ast.Add):
            c = _const_int(e.right)
            if c is not None:
                base = split(e.left)
                if base is not None:
                    return (base[0], base[1] + c)
        return None

    lo, hi = split(sl.lower), split(sl.upper)
    if lo is None or hi is None or lo[0] != hi[0]:
        return None
    width = hi[1] - lo[1]
    return width if width > 0 else None


class _ModuleIndex:
    """Everything the interpreter needs to know about one parsed module."""

    def __init__(self, tree: ast.Module, path: str) -> None:
        self.path = path
        self.bytes_consts: dict[str, bytes] = {}
        self.int_consts: dict[str, int] = {}
        self.struct_fmts: dict[str, str] = {}
        self.functions: dict[str, ast.FunctionDef] = {}
        self.classes: dict[str, dict[str, ast.FunctionDef]] = {}
        self.declared_pairs: list[tuple[str, str]] = []
        for node in tree.body:
            if isinstance(node, ast.FunctionDef):
                self.functions[node.name] = node
            elif isinstance(node, ast.ClassDef):
                methods = {
                    n.name: n for n in node.body if isinstance(n, ast.FunctionDef)
                }
                self.classes[node.name] = methods
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if not isinstance(target, ast.Name):
                    continue
                value = node.value
                if isinstance(value, ast.Constant) and isinstance(value.value, bytes):
                    self.bytes_consts[target.id] = value.value
                elif isinstance(value, ast.Constant) and isinstance(value.value, int):
                    if not isinstance(value.value, bool):
                        self.int_consts[target.id] = value.value
                elif (
                    isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Attribute)
                    and value.func.attr == "Struct"
                    and value.args
                ):
                    fmt = _const_str(value.args[0])
                    if fmt is not None:
                        self.struct_fmts[target.id] = fmt
                elif target.id == "WIRE_PAIRS" and isinstance(value, (ast.Tuple, ast.List)):
                    for elt in value.elts:
                        if isinstance(elt, (ast.Tuple, ast.List)) and len(elt.elts) == 2:
                            enc = _const_str(elt.elts[0])
                            dec = _const_str(elt.elts[1])
                            if enc is not None and dec is not None:
                                self.declared_pairs.append((enc, dec))
        # memoized helper classifications
        self._writer_memo: dict[str, Optional[list[Tok]]] = {}
        self._reader_memo: dict[str, Optional[tuple[list[Tok], bool]]] = {}
        self._fmt_forward: dict[str, bool] = {}
        self._visiting: set[str] = set()
        #: (function-name, line, k) for every magic-prefix compare seen
        self.magic_compares: list[tuple[str, int, int]] = []

    # -- helper classification ----------------------------------------
    def magic_checker_width(self, name: str) -> Optional[tuple[int, int]]:
        """(width k, line) when ``name`` is a ``return data[:k] == MAGIC`` helper."""
        fn = self.functions.get(name)
        if fn is None or not fn.args.args:
            return None
        body = [s for s in fn.body if not _is_docstring(s)]
        if len(body) != 1 or not isinstance(body[0], ast.Return) or body[0].value is None:
            return None
        k = _magic_compare_width(body[0].value, {fn.args.args[0].arg})
        return None if k is None else (k, body[0].lineno)

    def writer_tokens(self, name: str) -> Optional[list[Tok]]:
        """Token stream a writer helper emits (None = not a writer)."""
        if name in self._writer_memo:
            return self._writer_memo[name]
        fn = self.functions.get(name)
        if fn is None or name in self._visiting:
            return None
        if "varint" in name:
            toks = [Tok(kind=("varint",), line=fn.lineno)]
            self._writer_memo[name] = toks
            return toks
        self._visiting.add(name)
        try:
            interp = _Interpreter(self, fn, cls=None)
            # writer helpers mutate their first (bytearray) parameter
            toks = interp.encode_stream(acc_param=True)
        finally:
            self._visiting.discard(name)
        self._writer_memo[name] = toks
        return toks

    def reader_info(self, name: str) -> Optional[tuple[list[Tok], bool]]:
        """(tokens, bounds-checked?) for a reader helper (None = unknown)."""
        if name in self._reader_memo:
            return self._reader_memo[name]
        fn = self.functions.get(name)
        if fn is None or not fn.args.args or name in self._visiting:
            return None
        if "varint" in name:
            buf = _buffer_param(fn)
            guarded = buf is not None and _has_len_guard(fn, {buf})
            info = ([Tok(kind=("varint",), line=fn.lineno)], guarded)
            self._reader_memo[name] = info
            return info
        self._visiting.add(name)
        try:
            interp = _Interpreter(self, fn, cls=None)
            toks = interp.decode_stream()
            checked = _has_len_guard(fn, interp.buffer_names)
        finally:
            self._visiting.discard(name)
        info = (toks, checked)
        self._reader_memo[name] = info
        return info

    def fmt_forward_reader(self, name: str) -> bool:
        """Whether helper ``name`` forwards its first arg as a struct fmt
        (``def _unpack(fmt, body, pos): ... return struct.unpack_from(fmt, body, pos)``)."""
        if name in self._fmt_forward:
            return self._fmt_forward[name]
        fn = self.functions.get(name)
        result = False
        if fn is not None and fn.args.args:
            fmt_param = fn.args.args[0].arg
            for node in ast.walk(fn):
                if (
                    isinstance(node, ast.Return)
                    and isinstance(node.value, ast.Call)
                    and _unpack_from_fmt(node.value) is None
                    and _is_struct_unpack(node.value)
                    and node.value.args
                    and isinstance(node.value.args[0], ast.Name)
                    and node.value.args[0].id == fmt_param
                ):
                    result = True
                    break
        self._fmt_forward[name] = result
        return result


def _is_docstring(stmt: ast.stmt) -> bool:
    return (
        isinstance(stmt, ast.Expr)
        and isinstance(stmt.value, ast.Constant)
        and isinstance(stmt.value.value, str)
    )


def _magic_compare_width(expr: ast.expr, buffer_names: set[str]) -> Optional[int]:
    """Width k of a ``P[:k] ==/!= CONST`` compare inside ``expr``."""
    for node in ast.walk(expr):
        if not isinstance(node, ast.Compare) or len(node.ops) != 1:
            continue
        if not isinstance(node.ops[0], (ast.Eq, ast.NotEq)):
            continue
        sub = node.left
        if (
            isinstance(sub, ast.Subscript)
            and isinstance(sub.value, ast.Name)
            and sub.value.id in buffer_names
            and isinstance(sub.slice, ast.Slice)
            and sub.slice.lower is None
            and sub.slice.upper is not None
        ):
            k = _const_int(sub.slice.upper)
            if k is not None:
                return k
    return None


def _byte_compare(expr: ast.expr, buffer_names: set[str]) -> Optional[int]:
    """Line-local ``P[i] ==/!= CONST`` compare -> 1 (one byte token)."""
    for node in ast.walk(expr):
        if not isinstance(node, ast.Compare) or len(node.ops) != 1:
            continue
        if not isinstance(node.ops[0], (ast.Eq, ast.NotEq)):
            continue
        sub = node.left
        if (
            isinstance(sub, ast.Subscript)
            and isinstance(sub.value, ast.Name)
            and sub.value.id in buffer_names
            and not isinstance(sub.slice, ast.Slice)
        ):
            return 1
    return None


def _is_struct_unpack(call: ast.Call) -> bool:
    """``struct.unpack_from(...)`` / ``struct.unpack(...)`` / ``S.unpack_from(...)``."""
    return (
        isinstance(call.func, ast.Attribute)
        and call.func.attr in ("unpack_from", "unpack")
    )


def _unpack_from_fmt(call: ast.Call) -> Optional[str]:
    """Constant fmt string of a struct unpack call, if resolvable here."""
    if not _is_struct_unpack(call):
        return None
    assert isinstance(call.func, ast.Attribute)
    if isinstance(call.func.value, ast.Name) and call.func.value.id == "struct" and call.args:
        return _const_str(call.args[0])
    return None


def _test_guards_buffer(test: ast.expr, buffer_names: set[str]) -> bool:
    """Whether a condition inspects the buffer's length (or truthiness)."""
    for sub in ast.walk(test):
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Name)
            and sub.func.id == "len"
            and len(sub.args) == 1
            and isinstance(sub.args[0], ast.Name)
            and sub.args[0].id in buffer_names
        ):
            return True
        if (
            isinstance(sub, ast.UnaryOp)
            and isinstance(sub.op, ast.Not)
            and isinstance(sub.operand, ast.Name)
            and sub.operand.id in buffer_names
        ):
            return True
    return False


def _has_len_guard(fn: ast.FunctionDef, buffer_names: set[str]) -> bool:
    """Whether ``fn`` bounds its reads against the buffer's length.

    Accepts ``if`` statements that compare ``len(buffer)`` and bail
    (raise/return), the truthiness idiom ``if not buffer: raise``, and
    ``while ... len(buffer)`` loop conditions (the condition itself
    bounds the body's reads).
    """
    for node in ast.walk(fn):
        if isinstance(node, ast.While) and _test_guards_buffer(node.test, buffer_names):
            return True
        if not isinstance(node, ast.If):
            continue
        bails = any(isinstance(s, (ast.Raise, ast.Return)) for s in node.body)
        if not bails:
            continue
        if _test_guards_buffer(node.test, buffer_names):
            return True
    return False


def _is_set_expr(expr: ast.expr, local_sets: set[str]) -> bool:
    """Definitely-unordered iterable: a set display/call or a known set local."""
    if isinstance(expr, ast.Set):
        return True
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
        return expr.func.id in ("set", "frozenset")
    if isinstance(expr, ast.Name):
        return expr.id in local_sets
    return False


@dataclass
class _CountLink:
    """A WIRE003 candidate: a count field followed by the loop using it."""

    line: int
    declared: str
    used: str
    side: str  # "encoder" | "decoder"


class _Interpreter:
    """Abstract layout interpretation of one encoder or decoder function."""

    def __init__(self, index: _ModuleIndex, fn: ast.FunctionDef, cls: Optional[str]) -> None:
        self.index = index
        self.fn = fn
        self.cls = cls
        buf = _buffer_param(fn)
        #: the wire buffer parameter and its slice aliases (decoder side)
        self.buffer_names: set[str] = {buf} if buf is not None else set()
        self.count_links: list[_CountLink] = []
        self.set_iterations: list[int] = []  # WIRE005 lines
        self._local_sets: set[str] = set()

    # ------------------------------------------------------------------
    # encoder side
    # ------------------------------------------------------------------
    def encode_stream(self, acc_param: bool = False) -> list[Tok]:
        params = [a.arg for a in self.fn.args.args if a.arg not in ("self", "cls")]
        acc: Optional[str] = params[0] if acc_param and params else None
        acc_is_list = False
        toks: list[Tok] = []
        bytes_locals: set[str] = set()

        def terms(expr: ast.expr) -> Optional[list[Tok]]:
            line = getattr(expr, "lineno", self.fn.lineno)
            if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.Add):
                left, right = terms(expr.left), terms(expr.right)
                if left is None or right is None:
                    return None
                return left + right
            if isinstance(expr, ast.Constant) and isinstance(expr.value, bytes):
                return [] if not expr.value else [Tok(kind=("bytes", len(expr.value)), line=line)]
            if isinstance(expr, ast.IfExp):
                alt = expr.orelse
                empty_alt = (
                    isinstance(alt, ast.Constant) and alt.value in (b"", ())
                ) or (isinstance(alt, ast.Tuple) and not alt.elts)
                return terms(expr.body) if empty_alt else None
            if isinstance(expr, ast.Call):
                return call_terms(expr, line)
            if isinstance(expr, ast.Name):
                if expr.id in self.index.bytes_consts:
                    n = len(self.index.bytes_consts[expr.id])
                    return [] if n == 0 else [Tok(kind=("bytes", n), line=line)]
                return [Tok(kind=("raw",), line=line)]
            if isinstance(expr, ast.Attribute):
                return [Tok(kind=("raw",), line=line)]
            return None

        def call_terms(call: ast.Call, line: int) -> Optional[list[Tok]]:
            func = call.func
            # struct.pack(fmt, *args) / STRUCT_CONST.pack(*args)
            if isinstance(func, ast.Attribute) and func.attr == "pack":
                fmt: Optional[str] = None
                args = call.args
                if isinstance(func.value, ast.Name) and func.value.id == "struct" and args:
                    fmt_node = args[0]
                    args = args[1:]
                    fmt = _const_str(fmt_node)
                    if fmt is None and isinstance(fmt_node, ast.JoinedStr):
                        return fstring_tokens(fmt_node, line)
                elif isinstance(func.value, ast.Name) and func.value.id in self.index.struct_fmts:
                    fmt = self.index.struct_fmts[func.value.id]
                if fmt is None:
                    return None
                out = _struct_tokens(fmt, line)
                if out is None:
                    return None
                if len(out) == len(args):
                    for tok, arg in zip(out, args):
                        target = _len_target(arg)
                        if target is not None:
                            tok.count_src = target
                return out
            # value.to_bytes(N, endian)
            if isinstance(func, ast.Attribute) and func.attr == "to_bytes" and len(call.args) >= 2:
                width = _const_int(call.args[0])
                endian_s = _const_str(call.args[1])
                if width is not None and endian_s in ("big", "little"):
                    endian = ">" if endian_s == "big" else "<"
                    tok = Tok(kind=("int", width, "=" if width == 1 else endian), line=line)
                    target = _len_target(func.value)
                    if target is not None:
                        tok.count_src = target
                    return [tok]
                return None
            # writer helper returning bytes
            if isinstance(func, ast.Name):
                if func.id == "bytes" and len(call.args) == 1:
                    inner = call.args[0]
                    if isinstance(inner, ast.List) and len(inner.elts) == 1:
                        return [Tok(kind=("int", 1, "="), line=line)]
                    return terms(inner)
                helper = self.index.writer_tokens(func.id)
                if helper is not None:
                    return [Tok(kind=t.kind, line=line, count_src=t.count_src, body=t.body) for t in helper]
            return None

        def fstring_tokens(fmt_node: ast.JoinedStr, line: int) -> Optional[list[Tok]]:
            # f">{n}d" — endian prefix, one formatted count, one element char
            parts = fmt_node.values
            if len(parts) != 3:
                return None
            head = parts[0]
            count = parts[1]
            tail = parts[2]
            if not (isinstance(head, ast.Constant) and isinstance(count, ast.FormattedValue)):
                return None
            if not (isinstance(tail, ast.Constant) and isinstance(tail.value, str) and len(tail.value) == 1):
                return None
            probe = _struct_tokens(str(head.value) + tail.value, line)
            if probe is None or len(probe) != 1:
                return None
            used = _len_target(count.value) or _dump(count.value)
            return [Tok(kind=("array", probe[0].kind), line=line, count_used=used)]

        def handle_stmts(stmts: list[ast.stmt], toks_out: list[Tok]) -> bool:
            """Interpret statements; returns False on opaque-stop."""
            nonlocal acc, acc_is_list
            for stmt in stmts:
                if _is_docstring(stmt) or isinstance(stmt, (ast.Pass, ast.Assert)):
                    continue
                if isinstance(stmt, ast.Raise):
                    return True
                if isinstance(stmt, ast.If):
                    if all(isinstance(s, ast.Raise) for s in stmt.body) and not stmt.orelse:
                        continue  # validation guard
                    toks_out.append(Tok(kind=_OPAQUE, line=stmt.lineno))
                    return False
                if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 and isinstance(
                    stmt.targets[0], ast.Name
                ):
                    name = stmt.targets[0].id
                    value = stmt.value
                    if (
                        isinstance(value, ast.Call)
                        and isinstance(value.func, ast.Attribute)
                        and value.func.attr == "encode"
                    ):
                        bytes_locals.add(name)
                        continue
                    if acc is None:
                        if isinstance(value, ast.Call) and isinstance(value.func, ast.Name) and value.func.id == "bytearray":
                            acc = name
                            if value.args:
                                init = terms(value.args[0])
                                if init is None:
                                    toks_out.append(Tok(kind=_OPAQUE, line=stmt.lineno))
                                    return False
                                toks_out.extend(init)
                            continue
                        if isinstance(value, (ast.List, ast.Tuple)):
                            acc = name
                            acc_is_list = True
                            for elt in value.elts:
                                t = terms(elt)
                                if t is None:
                                    toks_out.append(Tok(kind=_OPAQUE, line=stmt.lineno))
                                    return False
                                toks_out.extend(t)
                            continue
                        maybe = terms(value)
                        if maybe is not None:
                            acc = name
                            toks_out.extend(maybe)
                            continue
                    # plain local that doesn't feed the accumulator: skip
                    continue
                if isinstance(stmt, ast.AugAssign) and isinstance(stmt.target, ast.Name):
                    if stmt.target.id == acc and isinstance(stmt.op, ast.Add):
                        t = terms(stmt.value)
                        if t is None:
                            toks_out.append(Tok(kind=_OPAQUE, line=stmt.lineno))
                            return False
                        toks_out.extend(t)
                        continue
                    continue
                if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
                    call = stmt.value
                    func = call.func
                    if (
                        isinstance(func, ast.Attribute)
                        and isinstance(func.value, ast.Name)
                        and func.value.id == acc
                        and func.attr in ("append", "extend")
                        and len(call.args) == 1
                    ):
                        arg = call.args[0]
                        if func.attr == "append" and not acc_is_list:
                            toks_out.append(Tok(kind=("int", 1, "="), line=stmt.lineno))
                            continue
                        t = terms(arg)
                        if t is None:
                            toks_out.append(Tok(kind=_OPAQUE, line=stmt.lineno))
                            return False
                        toks_out.extend(t)
                        continue
                    if (
                        isinstance(func, ast.Name)
                        and call.args
                        and isinstance(call.args[0], ast.Name)
                        and call.args[0].id == acc
                    ):
                        helper = self.index.writer_tokens(func.id)
                        if helper is None:
                            toks_out.append(Tok(kind=_OPAQUE, line=stmt.lineno))
                            return False
                        toks_out.extend(
                            Tok(kind=t.kind, line=stmt.lineno, count_src=t.count_src, body=t.body)
                            for t in helper
                        )
                        continue
                    continue
                if isinstance(stmt, ast.For):
                    if _is_set_expr(stmt.iter, self._local_sets):
                        self.set_iterations.append(stmt.lineno)
                    body_toks: list[Tok] = []
                    ok = handle_stmts(stmt.body, body_toks)
                    if body_toks or not ok:
                        used = _len_target(stmt.iter) or _dump(stmt.iter)
                        toks_out.append(
                            Tok(kind=("loop",), line=stmt.lineno, count_used=used, body=tuple(body_toks))
                        )
                    if not ok and any(t.kind == _OPAQUE for t in body_toks):
                        pass  # loop body opaque: comparison will stop inside it
                    continue
                if isinstance(stmt, ast.Return):
                    value = stmt.value
                    if value is None:
                        return True
                    if isinstance(value, ast.Name) and value.id == acc:
                        return True
                    if isinstance(value, ast.Call) and isinstance(value.func, ast.Name) and value.func.id == "bytes":
                        if value.args and isinstance(value.args[0], ast.Name) and value.args[0].id == acc:
                            return True
                    if (
                        isinstance(value, ast.Call)
                        and isinstance(value.func, ast.Attribute)
                        and value.func.attr == "join"
                        and value.args
                        and isinstance(value.args[0], ast.Name)
                        and value.args[0].id == acc
                    ):
                        return True
                    t = terms(value)
                    if t is None:
                        toks_out.append(Tok(kind=_OPAQUE, line=stmt.lineno))
                        return False
                    toks_out.extend(t)
                    return True
                # any other statement shape: record set locals, else opaque
                if isinstance(stmt, ast.AnnAssign):
                    continue
                toks_out.append(Tok(kind=_OPAQUE, line=stmt.lineno))
                return False
            return True

        # track locals assigned from set constructors for WIRE005
        for node in ast.walk(self.fn):
            if isinstance(node, ast.Assign) and len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
                if _is_set_expr(node.value, set()):
                    self._local_sets.add(node.targets[0].id)

        handle_stmts([s for s in self.fn.body if not _is_docstring(s)], toks)
        self._record_count_links(toks, side="encoder")
        return toks

    # ------------------------------------------------------------------
    # decoder side
    # ------------------------------------------------------------------
    def decode_stream(self) -> list[Tok]:
        toks: list[Tok] = []
        self._decode_stmts([s for s in self.fn.body if not _is_docstring(s)], toks)
        self._record_count_links(toks, side="decoder")
        return toks

    def _decode_stmts(self, stmts: list[ast.stmt], toks: list[Tok]) -> bool:
        P = self.buffer_names
        for stmt in stmts:
            if _is_docstring(stmt) or isinstance(stmt, (ast.Pass, ast.Assert, ast.Raise)):
                if isinstance(stmt, ast.Raise):
                    return True
                continue
            if isinstance(stmt, ast.If):
                if all(isinstance(s, ast.Raise) for s in stmt.body) and not stmt.orelse:
                    # a validation guard may *consume* magic / version bytes
                    k = _magic_compare_width(stmt.test, P)
                    if k is not None:
                        toks.append(Tok(kind=("bytes", k), line=stmt.lineno))
                        self.index.magic_compares.append((self._qualname(), stmt.lineno, k))
                    else:
                        checker = self._magic_checker_call(stmt.test)
                        if checker is not None:
                            toks.append(Tok(kind=("bytes", checker), line=stmt.lineno))
                    if _byte_compare(stmt.test, P) is not None:
                        toks.append(Tok(kind=("int", 1, "="), line=stmt.lineno))
                    continue
                toks.append(Tok(kind=_OPAQUE, line=stmt.lineno))
                return False
            if isinstance(stmt, ast.Try):
                handlers_bail = all(
                    all(isinstance(s, ast.Raise) for s in h.body) for h in stmt.handlers
                )
                if handlers_bail:
                    if not self._decode_stmts(stmt.body, toks):
                        return False
                    continue
                toks.append(Tok(kind=_OPAQUE, line=stmt.lineno))
                return False
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                if self._decode_assign(stmt, toks) is False:
                    return False
                continue
            if isinstance(stmt, ast.AugAssign):
                if self._touches_buffer_reads(stmt):
                    toks.append(Tok(kind=_OPAQUE, line=stmt.lineno))
                    return False
                continue
            if isinstance(stmt, ast.For):
                count_used: Optional[str] = None
                it = stmt.iter
                if (
                    isinstance(it, ast.Call)
                    and isinstance(it.func, ast.Name)
                    and it.func.id == "range"
                    and len(it.args) == 1
                ):
                    count_used = _dump(it.args[0])
                body_toks: list[Tok] = []
                ok = self._decode_stmts(stmt.body, body_toks)
                if isinstance(it, (ast.Name, ast.Subscript)) and self._is_buffer_expr(it):
                    body_toks = [Tok(kind=("int", 1, "="), line=stmt.lineno)]
                    ok = True
                if body_toks:
                    toks.append(
                        Tok(kind=("loop",), line=stmt.lineno, count_used=count_used, body=tuple(body_toks))
                    )
                elif not ok:
                    toks.append(Tok(kind=_OPAQUE, line=stmt.lineno))
                    return False
                continue
            if isinstance(stmt, ast.While):
                if any(self._touches_buffer(n) for n in ast.walk(stmt)):
                    toks.append(Tok(kind=_OPAQUE, line=stmt.lineno))
                    return False
                continue
            if isinstance(stmt, ast.Return):
                if stmt.value is not None:
                    self._fallback_reads(stmt.value, toks)
                return True
            if isinstance(stmt, ast.Expr):
                if self._fallback_reads(stmt.value, toks) is False:
                    return False
                continue
            if isinstance(stmt, ast.AnnAssign):
                continue
            if self._touches_buffer(stmt):
                toks.append(Tok(kind=_OPAQUE, line=stmt.lineno))
                return False
        return True

    def _decode_assign(self, stmt: ast.Assign, toks: list[Tok]) -> bool:
        """Interpret one assignment; False = opaque-stop."""
        target = stmt.targets[0]
        value = stmt.value
        names = _target_names(target)
        line = stmt.lineno
        # alias: body = data[4:]
        if (
            isinstance(target, ast.Name)
            and isinstance(value, ast.Subscript)
            and self._is_buffer_expr(value.value)
            and isinstance(value.slice, ast.Slice)
            and value.slice.upper is None
            and (value.slice.lower is None or _const_int(value.slice.lower) is not None)
        ):
            self.buffer_names.add(target.id)
            return True
        produced = self._reader_value_tokens(value, line)
        if produced is None:
            return self._fallback_reads(stmt.value, toks)
        if produced and len(names) == len(produced):
            for tok, name in zip(produced, names):
                tok.names = (name,)
        elif produced:
            produced[-1].names = tuple(names)
        toks.extend(produced)
        return True

    def _reader_value_tokens(self, value: ast.expr, line: int) -> Optional[list[Tok]]:
        """Tokens produced by a recognized read expression (None = not one)."""
        if isinstance(value, ast.IfExp):
            alt = value.orelse
            empty_alt = (isinstance(alt, ast.Constant) and alt.value in (b"", (), 0, None)) or (
                isinstance(alt, ast.Tuple) and not alt.elts
            )
            if empty_alt:
                return self._reader_value_tokens(value.body, line)
            return None
        if isinstance(value, ast.Call):
            func = value.func
            # tuple(... for _ in range(n)) / list(...)
            if (
                isinstance(func, ast.Name)
                and func.id in ("tuple", "list")
                and len(value.args) == 1
                and isinstance(value.args[0], ast.GeneratorExp)
            ):
                gen = value.args[0]
                elt_toks = self._reader_value_tokens(gen.elt, line)
                if elt_toks is None:
                    elt_toks = []
                    if self._fallback_reads(gen.elt, elt_toks) is False:
                        elt_toks = [Tok(kind=_OPAQUE, line=line)]
                if not elt_toks:
                    # a per-iteration consumption we cannot model
                    elt_toks = [Tok(kind=_OPAQUE, line=line)]
                count_used = None
                if gen.generators:
                    it = gen.generators[0].iter
                    if (
                        isinstance(it, ast.Call)
                        and isinstance(it.func, ast.Name)
                        and it.func.id == "range"
                        and len(it.args) == 1
                    ):
                        count_used = _dump(it.args[0])
                return [Tok(kind=("loop",), line=line, count_used=count_used, body=tuple(elt_toks))]
            # subscripted unpack result: fn(...)[0]
            # struct.unpack_from(fmt, P, pos) and friends
            if _is_struct_unpack(value):
                assert isinstance(func, ast.Attribute)
                fmt = _unpack_from_fmt(value)
                if fmt is not None:
                    return _struct_tokens(fmt, line)
                if isinstance(func.value, ast.Name) and func.value.id in self.index.struct_fmts:
                    return _struct_tokens(self.index.struct_fmts[func.value.id], line)
                if isinstance(func.value, ast.Name) and func.value.id == "struct" and value.args:
                    fmt_node = value.args[0]
                    if isinstance(fmt_node, ast.JoinedStr):
                        return self._fstring_read_tokens(fmt_node, line)
                return [Tok(kind=_OPAQUE, line=line)]
            # int.from_bytes(P[slice], endian)
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "from_bytes"
                and isinstance(func.value, ast.Name)
                and func.value.id == "int"
                and value.args
            ):
                arg = value.args[0]
                endian_s = _const_str(value.args[1]) if len(value.args) > 1 else None
                endian = ">" if endian_s == "big" else "<" if endian_s == "little" else "="
                if isinstance(arg, ast.Subscript) and self._is_buffer_expr(arg.value):
                    width = _slice_width(arg.slice)
                    if width is not None:
                        return [Tok(kind=("int", width, "=" if width == 1 else endian), line=line)]
                    return [Tok(kind=("raw",), line=line)]
                if isinstance(arg, ast.Name) and arg.id in self.buffer_names:
                    return [Tok(kind=("raw",), line=line)]
                return None
            # reader helper call: x, pos = _unpack_str(body, pos)
            if isinstance(func, ast.Name):
                if self.index.fmt_forward_reader(func.id) and value.args:
                    fmt = _const_str(value.args[0])
                    if fmt is not None:
                        return _struct_tokens(fmt, line)
                    if isinstance(value.args[0], ast.JoinedStr):
                        return self._fstring_read_tokens(value.args[0], line)
                    return [Tok(kind=_OPAQUE, line=line)]
                info = self.index.reader_info(func.id)
                if info is not None and any(
                    isinstance(a, ast.Name) and a.id in self.buffer_names for a in value.args
                ):
                    return [
                        Tok(kind=t.kind, line=line, count_used=t.count_used, body=t.body)
                        for t in info[0]
                    ]
            return None
        # x = P[i]  (single byte)
        if (
            isinstance(value, ast.Subscript)
            and self._is_buffer_expr(value.value)
            and not isinstance(value.slice, ast.Slice)
        ):
            return [Tok(kind=("int", 1, "="), line=line)]
        # STRUCT.unpack_from(P, off)[0]: the subscript selects one field
        # of the unpacked tuple; the bytes consumed are the full format
        if (
            isinstance(value, ast.Subscript)
            and isinstance(value.value, ast.Call)
            and not isinstance(value.slice, ast.Slice)
        ):
            return self._reader_value_tokens(value.value, line)
        return None

    def _fstring_read_tokens(self, fmt_node: ast.JoinedStr, line: int) -> Optional[list[Tok]]:
        parts = fmt_node.values
        if len(parts) != 3:
            return [Tok(kind=_OPAQUE, line=line)]
        head, count, tail = parts
        if not (
            isinstance(head, ast.Constant)
            and isinstance(count, ast.FormattedValue)
            and isinstance(tail, ast.Constant)
            and isinstance(tail.value, str)
            and len(tail.value) == 1
        ):
            return [Tok(kind=_OPAQUE, line=line)]
        probe = _struct_tokens(str(head.value) + tail.value, line)
        if probe is None or len(probe) != 1:
            return [Tok(kind=_OPAQUE, line=line)]
        used = _len_target(count.value) or _dump(count.value)
        return [Tok(kind=("array", probe[0].kind), line=line, count_used=used)]

    def _magic_checker_call(self, test: ast.expr) -> Optional[int]:
        """``if not is_nack(data): raise`` -> the checker's magic width."""
        for node in ast.walk(test):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.args
                and isinstance(node.args[0], ast.Name)
                and node.args[0].id in self.buffer_names
            ):
                info = self.index.magic_checker_width(node.func.id)
                if info is not None:
                    k, checker_line = info
                    self.index.magic_compares.append((node.func.id, checker_line, k))
                    return k
        return None

    def _is_buffer_expr(self, expr: ast.expr) -> bool:
        return isinstance(expr, ast.Name) and expr.id in self.buffer_names

    def _touches_buffer(self, node: ast.AST) -> bool:
        return any(
            isinstance(n, ast.Name) and n.id in self.buffer_names for n in ast.walk(node)
        )

    def _touches_buffer_reads(self, node: ast.AST) -> bool:
        """Whether any subexpression subscripts or unpacks the buffer."""
        for n in ast.walk(node):
            if isinstance(n, ast.Subscript) and self._is_buffer_expr(n.value):
                return True
            if isinstance(n, ast.Call) and _is_struct_unpack(n):
                if any(self._is_buffer_expr(a) for a in n.args):
                    return True
        return False

    def _fallback_reads(self, expr: ast.expr, toks: list[Tok]) -> bool:
        """Unrecognized expression: slices of the buffer become raw tokens;
        integer indexing or opaque consumption stops interpretation."""
        for n in ast.walk(expr):
            if isinstance(n, ast.Subscript) and self._is_buffer_expr(n.value):
                if isinstance(n.slice, ast.Slice):
                    toks.append(Tok(kind=("raw",), line=getattr(n, "lineno", 0)))
                else:
                    toks.append(Tok(kind=_OPAQUE, line=getattr(n, "lineno", 0)))
                    return False
            elif isinstance(n, ast.Call):
                # bare buffer handed to an unknown callable consumes unknown bytes
                func_name = n.func.id if isinstance(n.func, ast.Name) else None
                if func_name == "len":
                    continue
                if any(self._is_buffer_expr(a) for a in n.args) and func_name is not None:
                    if self.index.reader_info(func_name) is None and self.index.magic_checker_width(func_name) is None:
                        toks.append(Tok(kind=_OPAQUE, line=n.lineno))
                        return False
        return True

    def _qualname(self) -> str:
        return f"{self.cls}.{self.fn.name}" if self.cls else self.fn.name

    # ------------------------------------------------------------------
    def _record_count_links(self, toks: list[Tok], side: str) -> None:
        """Adjacent (count field, loop/array) pairs for WIRE003."""
        for i, tok in enumerate(toks):
            if tok.kind[0] not in ("loop", "array") or tok.count_used is None:
                continue
            # nearest preceding int token carrying count provenance
            for prev in reversed(toks[:i]):
                if prev.kind[0] != "int":
                    continue
                declared: Optional[str] = None
                if side == "encoder" and prev.count_src is not None:
                    declared = prev.count_src
                elif side == "decoder" and prev.names:
                    declared = None
                    used = tok.count_used
                    # decoder: the loop count must be (derived from) a name
                    # this wire field assigned
                    name_dumps = {_dump(ast.Name(id=n, ctx=ast.Load())) for n in prev.names}
                    if used in name_dumps:
                        return  # consistent
                    if any(n in used for n in prev.names):
                        return  # count participates in the expression: accept
                    self.count_links.append(
                        _CountLink(line=tok.line, declared=", ".join(prev.names), used=used, side=side)
                    )
                    return
                if declared is not None:
                    used = tok.count_used
                    if declared != used:
                        self.count_links.append(
                            _CountLink(line=tok.line, declared=declared, used=used, side=side)
                        )
                    return
                break


def _buffer_param(fn: ast.FunctionDef) -> Optional[str]:
    """The wire-buffer parameter: first one annotated ``bytes`` when any
    is (so fmt-forwarding readers like ``_unpack(fmt, body, pos)`` pick
    the buffer, not the format), else the first non-self parameter."""
    params = [a for a in fn.args.args if a.arg not in ("self", "cls")]
    if not params:
        return None
    for a in params:
        ann = a.annotation
        if isinstance(ann, ast.Name) and ann.id == "bytes":
            return a.arg
        if isinstance(ann, ast.Constant) and ann.value == "bytes":
            return a.arg
    return params[0].arg


def _target_names(target: ast.expr) -> list[str]:
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        return [e.id for e in target.elts if isinstance(e, ast.Name)]
    return []


# ----------------------------------------------------------------------
# token-stream comparison (WIRE001)
# ----------------------------------------------------------------------
def _kinds_equal(a: Tok, b: Tok) -> bool:
    if a.kind == b.kind:
        return True
    # a loop whose body is a single field matches an array of that field
    if a.kind[0] == "array" and b.kind[0] == "loop" and len(b.body) == 1:
        return a.kind[1] == b.body[0].kind
    if b.kind[0] == "array" and a.kind[0] == "loop" and len(a.body) == 1:
        return b.kind[1] == a.body[0].kind
    return False


def _compare_streams(enc: list[Tok], dec: list[Tok]) -> Optional[tuple[int, Tok, Tok]]:
    """First definite mismatch position, or None (match / undecidable)."""
    i = 0
    while True:
        a = enc[i] if i < len(enc) else None
        b = dec[i] if i < len(dec) else None
        if a is None and b is None:
            return None
        if (a is not None and a.kind == _OPAQUE) or (b is not None and b.kind == _OPAQUE):
            return None
        if a is None or b is None:
            # one stream ended cleanly while the other still expects fields;
            # a lone trailing raw-tail vs nothing is undecidable (empty tail)
            longer = a or b
            assert longer is not None
            if longer.kind in (("raw",),):
                return None
            return (i, a or Tok(kind=("end",)), b or Tok(kind=("end",)))
        if not _kinds_equal(a, b):
            return (i, a, b)
        if a.kind[0] == "loop" and b.kind[0] == "loop":
            inner = _compare_streams(list(a.body), list(b.body))
            if inner is not None:
                return (i, a.body[inner[0]] if inner[0] < len(a.body) else a, b)
            if any(t.kind == _OPAQUE for t in a.body) or any(t.kind == _OPAQUE for t in b.body):
                return None  # cannot realign after an opaque loop body
        i += 1


# ----------------------------------------------------------------------
# pair discovery
# ----------------------------------------------------------------------
def _discover_pairs(index: _ModuleIndex) -> list[CodecPair]:
    pairs: list[CodecPair] = []
    for cls_name, methods in sorted(index.classes.items()):
        for enc_name, dec_name in PAIR_METHOD_NAMES:
            if enc_name in methods and dec_name in methods:
                pairs.append(
                    CodecPair(
                        encoder=f"{cls_name}.{enc_name}",
                        decoder=f"{cls_name}.{dec_name}",
                        enc_node=methods[enc_name],
                        dec_node=methods[dec_name],
                        cls=cls_name,
                    )
                )
    for name in sorted(index.functions):
        partner: Optional[str] = None
        if name.startswith("encode"):
            partner = "decode" + name[len("encode"):]
        elif name.endswith("_encode"):
            partner = name[: -len("_encode")] + "_decode"
        if partner and partner in index.functions:
            pairs.append(
                CodecPair(
                    encoder=name,
                    decoder=partner,
                    enc_node=index.functions[name],
                    dec_node=index.functions[partner],
                )
            )
    seen = {(p.encoder, p.decoder) for p in pairs}
    for enc_name, dec_name in index.declared_pairs:
        if (enc_name, dec_name) in seen:
            continue
        enc = _resolve_name(index, enc_name)
        dec = _resolve_name(index, dec_name)
        if enc is not None and dec is not None:
            cls = enc_name.split(".")[0] if "." in enc_name else None
            pairs.append(CodecPair(encoder=enc_name, decoder=dec_name, enc_node=enc, dec_node=dec, cls=cls))
    return pairs


def _resolve_name(index: _ModuleIndex, name: str) -> Optional[ast.FunctionDef]:
    if "." in name:
        cls, meth = name.split(".", 1)
        return index.classes.get(cls, {}).get(meth)
    return index.functions.get(name)


# ----------------------------------------------------------------------
# WIRE002: decode-safety scan
# ----------------------------------------------------------------------
def _decode_safety(
    fn: ast.FunctionDef,
    buffer_names: set[str],
    index: _ModuleIndex,
    subject: str,
    path: str,
) -> list[Diagnostic]:
    if not buffer_names:
        return []
    if _has_len_guard(fn, buffer_names):
        return []
    out: list[Diagnostic] = []

    def flag(node: ast.AST, what: str) -> None:
        out.append(
            Diagnostic(
                "WIRE002",
                rule_severity("WIRE002"),
                f"{what} with no len() bounds guard in {fn.name}():"
                " truncated input escapes the codec's declared error",
                subject=subject,
                file=path,
                line=getattr(node, "lineno", fn.lineno),
                column=getattr(node, "col_offset", 0) + 1,
            )
        )

    for node in ast.walk(fn):
        if isinstance(node, ast.Subscript):
            if (
                isinstance(node.value, ast.Name)
                and node.value.id in buffer_names
                and not isinstance(node.slice, ast.Slice)
            ):
                flag(node, f"unguarded index read {node.value.id}[...]")
        elif isinstance(node, ast.Call):
            if _is_struct_unpack(node) and any(
                isinstance(a, ast.Name) and a.id in buffer_names for a in node.args
            ):
                flag(node, "struct unpack past the end of the buffer")
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "from_bytes"
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "int"
                and node.args
            ):
                arg = node.args[0]
                if (
                    isinstance(arg, ast.Subscript)
                    and isinstance(arg.value, ast.Name)
                    and arg.value.id in buffer_names
                    and isinstance(arg.slice, ast.Slice)
                    and _slice_width(arg.slice) is not None
                ):
                    flag(node, "fixed-width int.from_bytes slice that silently truncates")
    return out


def _decoder_buffer_names(fn: ast.FunctionDef) -> set[str]:
    buf = _buffer_param(fn)
    names = {buf} if buf is not None else set()
    # include slice aliases (body = data[4:])
    for node in ast.walk(fn):
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, ast.Subscript)
            and isinstance(node.value.value, ast.Name)
            and node.value.value.id in names
            and isinstance(node.value.slice, ast.Slice)
            and node.value.slice.upper is None
        ):
            names.add(node.targets[0].id)
    return names


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------
def wire_source(
    source: str,
    path: str,
    *,
    ignore: Iterable[str] = (),
) -> list[Diagnostic]:
    """All WIRE diagnostics for one file's source text."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError:
        return []  # repo_lint already reports unparseable files
    index = _ModuleIndex(tree, path)
    pairs = _discover_pairs(index)
    out: list[Diagnostic] = []
    enc_streams: dict[str, list[Tok]] = {}
    scanned_readers: set[str] = set()

    for pair in pairs:
        enc_interp = _Interpreter(index, pair.enc_node, cls=pair.cls)
        enc_toks = enc_interp.encode_stream()
        enc_streams[pair.encoder] = enc_toks
        dec_interp = _Interpreter(index, pair.dec_node, cls=pair.cls)
        dec_toks = dec_interp.decode_stream()
        subject = f"{path}:{pair.label}"

        mismatch = _compare_streams(enc_toks, dec_toks)
        if mismatch is not None:
            pos, etok, dtok = mismatch
            out.append(
                Diagnostic(
                    "WIRE001",
                    rule_severity("WIRE001"),
                    f"field {pos} asymmetry: encoder {pair.encoder} writes"
                    f" {etok.describe()} but decoder {pair.decoder} reads {dtok.describe()}",
                    subject=subject,
                    file=path,
                    line=dtok.line or pair.dec_node.lineno,
                )
            )

        for link in enc_interp.count_links + dec_interp.count_links:
            out.append(
                Diagnostic(
                    "WIRE003",
                    rule_severity("WIRE003"),
                    f"{link.side} length prefix declares {link.declared!r} but the"
                    f" adjacent repetition consumes {link.used!r}",
                    subject=subject,
                    file=path,
                    line=link.line,
                )
            )

        for lineno in enc_interp.set_iterations:
            out.append(
                Diagnostic(
                    "WIRE005",
                    rule_severity("WIRE005"),
                    f"{pair.encoder} iterates an unordered container into wire"
                    " bytes; sort before iterating or replay diverges",
                    subject=subject,
                    file=path,
                    line=lineno,
                )
            )

        # decode safety for the decoder and every reader helper it calls
        buffer_names = _decoder_buffer_names(pair.dec_node)
        out.extend(_decode_safety(pair.dec_node, buffer_names, index, subject, path))
        for node in ast.walk(pair.dec_node):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                helper = index.functions.get(node.func.id)
                if helper is None or node.func.id in scanned_readers:
                    continue
                if not any(
                    isinstance(a, ast.Name) and a.id in buffer_names for a in node.args
                ):
                    continue
                scanned_readers.add(node.func.id)
                out.extend(
                    _decode_safety(
                        helper,
                        _decoder_buffer_names(helper),
                        index,
                        f"{path}:{node.func.id}",
                        path,
                    )
                )

    # WIRE004: magic dispatch vs variable leading fields, per module
    reported: set[int] = set()
    for func_name, lineno, k in index.magic_compares:
        if lineno in reported:
            continue
        for pair in pairs:
            if func_name in (pair.decoder, pair.decoder.split(".")[-1]):
                continue
            first = next(
                (t for t in enc_streams.get(pair.encoder, ()) if t.kind != _OPAQUE), None
            )
            if first is None or first.kind[0] not in ("int", "float"):
                continue
            if int(first.kind[1]) >= k:
                out.append(
                    Diagnostic(
                        "WIRE004",
                        rule_severity("WIRE004"),
                        f"{k}-byte magic dispatch in {func_name}() can collide with"
                        f" the leading {Tok(kind=first.kind).describe()} field of"
                        f" {pair.encoder}: a value collision mis-dispatches",
                        subject=f"{path}:{func_name}",
                        file=path,
                        line=lineno,
                    )
                )
                reported.add(lineno)
                break

    out.sort(key=lambda d: (d.line or 0, d.code, d.message))
    return filter_diagnostics(out, ignore=ignore, suppressions=parse_suppressions(source))


def wire_file(path: str, *, ignore: Iterable[str] = ()) -> list[Diagnostic]:
    with open(path, "r", encoding="utf-8") as fh:
        source = fh.read()
    return wire_source(source, path, ignore=ignore)


def wire_paths(
    paths: Iterable[str], *, ignore: Iterable[str] = (), jobs: int = 1
) -> list[Diagnostic]:
    """WIRE diagnostics for every ``.py`` file under each path.

    Mirrors :func:`repro.analysis.repo_lint.lint_paths`: per-file,
    deterministic order, optionally fanned out over worker processes with
    results reassembled in submission order.
    """
    from .repo_lint import _walk_py_files

    files = _walk_py_files(paths)
    ignore = tuple(ignore)
    if jobs > 1 and len(files) > 1:
        from concurrent.futures import ProcessPoolExecutor
        from functools import partial

        out: list[Diagnostic] = []
        with ProcessPoolExecutor(max_workers=min(jobs, len(files))) as pool:
            for diags in pool.map(partial(_wire_one, ignore=ignore), files):
                out.extend(diags)
        return out
    return [d for path in files for d in wire_file(path, ignore=ignore)]


def _wire_one(path: str, ignore: tuple[str, ...]) -> list[Diagnostic]:
    """Picklable per-file worker for the ``jobs > 1`` process pool."""
    return wire_file(path, ignore=ignore)


def analyze_wireformat(
    paths: Iterable[str], *, ignore: Iterable[str] = ()
) -> list[Diagnostic]:
    """Run the WIRE pass over source trees (corpus-gate entry point)."""
    return wire_paths(paths, ignore=ignore)
