"""Differential fuzz harness: the WIRE pass's runtime twin.

Where :mod:`repro.analysis.wireformat` proves codec-pair symmetry and
decode safety *statically*, this module derives the corresponding
runtime properties from an importing registry of the same codec pairs
and drives them with deterministic, seeded inputs:

* **round-trip** — ``decode(encode(v))`` must equal ``v`` for sampled
  valid values;
* **truncation at every offset** — ``decode(data[:k])`` for every
  ``k < len(data)`` must either succeed or raise the codec's *declared*
  error class, never ``struct.error``/``IndexError``/
  ``UnicodeDecodeError``/``RecursionError``;
* **seeded bit flips** — randomly corrupted copies of valid encodings
  must likewise never escape the declared error class.

Every failure is cross-checked against the static analyzer: a crash in a
file the WIRE pass already flagged is a *confirmed* static finding; a
crash in a WIRE-clean file is a gap in the static abstraction worth a
rule or corpus entry.  CI runs ``python -m repro.analysis.wirefuzz
--seed 1337`` and fails on any crash or round-trip mismatch.

Determinism: per-pair seeds mix the CLI seed with ``zlib.crc32`` of the
pair name (never ``hash()``, which is process-randomized), so runs are
reproducible across machines and interpreter launches.
"""

from __future__ import annotations

import argparse
import os
import random
import sys
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

__all__ = [
    "FuzzCodecPair",
    "FuzzFailure",
    "FuzzReport",
    "default_registry",
    "fuzz_pair",
    "fuzz_registry",
    "main",
]

_SRC_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)


@dataclass(frozen=True)
class FuzzCodecPair:
    """One registered encoder/decoder pair with its value sampler.

    ``expected_errors`` must name the codec's *declared* error classes
    exactly — not ``ValueError`` — so that e.g. an escaping
    ``UnicodeDecodeError`` (a ``ValueError`` subclass) still counts as a
    crash rather than being absorbed by a lax except clause.
    """

    name: str
    encode: Callable[[Any], bytes]
    decode: Callable[[bytes], Any]
    sample: Callable[[random.Random], Any]
    expected_errors: tuple[type, ...]
    #: source file the static WIRE pass would flag for this codec
    static_file: str
    equal: Callable[[Any, Any], bool] = lambda a, b: a == b


@dataclass(frozen=True)
class FuzzFailure:
    pair: str
    property: str  # "round-trip" | "truncation" | "bit-flip"
    detail: str
    static_file: str


@dataclass
class FuzzReport:
    rounds: int = 0
    truncations: int = 0
    flips: int = 0
    failures: list[FuzzFailure] = field(default_factory=list)

    def merge(self, other: "FuzzReport") -> None:
        self.rounds += other.rounds
        self.truncations += other.truncations
        self.flips += other.flips
        self.failures.extend(other.failures)


# ----------------------------------------------------------------------
# samplers
# ----------------------------------------------------------------------
_WORDS = ("alpha", "béta", "gamma", "Δelta", "epsilon", "", "zeta-9", "控制")


def _s(rng: random.Random) -> str:
    return rng.choice(_WORDS) + (str(rng.randrange(1000)) if rng.random() < 0.5 else "")


def _b(rng: random.Random, cap: int = 48) -> bytes:
    return rng.randbytes(rng.randrange(cap))


def _u32(rng: random.Random) -> int:
    return rng.randrange(2**32)


def _event_samplers() -> dict[str, Callable[[random.Random], Any]]:
    from ..core import events as ev

    def whiteboard(rng: random.Random) -> Any:
        return ev.WhiteboardEvent(
            object_id=_s(rng),
            op=rng.choice(("draw", "move", "erase")),
            points=tuple(rng.uniform(-1e3, 1e3) for _ in range(rng.randrange(6))),
            author=_s(rng),
            version=_u32(rng),
            timestamp=rng.uniform(0, 1e6),
        )

    def announce(rng: random.Random) -> Any:
        return ev.ImageShareAnnounce(
            image_id=_s(rng),
            height=rng.randrange(2**16),
            width=rng.randrange(2**16),
            channels=rng.choice((1, 3)),
            n_packets=rng.choice((1, 2, 4, 8, 16)),
            total_bits=rng.randrange(2**40),
            description=_s(rng),
            levels=rng.randrange(1, 8),
            t0_exps=tuple(rng.randrange(-64, 64) for _ in range(rng.randrange(4))),
        )

    return {
        "ChatEvent": lambda rng: ev.ChatEvent(author=_s(rng), text=_s(rng)),
        "WhiteboardEvent": whiteboard,
        "ImageShareAnnounce": announce,
        "ImagePacketEvent": lambda rng: ev.ImagePacketEvent(
            image_id=_s(rng),
            packet_index=rng.randrange(16),
            packet_total=16,
            payload=_b(rng),
        ),
        "TextShareEvent": lambda rng: ev.TextShareEvent(ref_id=_s(rng), text=_s(rng)),
        "SketchShareEvent": lambda rng: ev.SketchShareEvent(
            ref_id=_s(rng),
            sketch_h=rng.randrange(64),
            sketch_w=rng.randrange(64),
            encoded=_b(rng),
        ),
        "SpeechShareEvent": lambda rng: ev.SpeechShareEvent(
            ref_id=_s(rng), sample_rate=8000, samples_u8=_b(rng)
        ),
        "JoinEvent": lambda rng: ev.JoinEvent(client_id=_s(rng), objective=_s(rng)),
        "LeaveEvent": lambda rng: ev.LeaveEvent(client_id=_s(rng)),
        "ProfileUpdateEvent": lambda rng: ev.ProfileUpdateEvent(
            client_id=_s(rng),
            changes=tuple((_s(rng), _s(rng)) for _ in range(rng.randrange(4))),
        ),
        "PowerControlRequest": lambda rng: ev.PowerControlRequest(
            client_id=_s(rng), new_power=rng.uniform(0.1, 2.0), reason=_s(rng)
        ),
        "HistoryRequest": lambda rng: ev.HistoryRequest(
            client_id=_s(rng),
            since=rng.uniform(0, 1e5),
            kinds=tuple(_s(rng) for _ in range(rng.randrange(3))),
        ),
        "ImageRepairRequest": lambda rng: ev.ImageRepairRequest(
            client_id=_s(rng),
            image_id=_s(rng),
            packet_indices=tuple(_u32(rng) for _ in range(rng.randrange(5))),
        ),
        "LockRequestEvent": lambda rng: ev.LockRequestEvent(
            client_id=_s(rng), object_id=_s(rng)
        ),
        "LockReleaseEvent": lambda rng: ev.LockReleaseEvent(
            client_id=_s(rng), object_id=_s(rng)
        ),
        "LockGrantEvent": lambda rng: ev.LockGrantEvent(
            client_id=_s(rng), object_id=_s(rng), granted=rng.random() < 0.5
        ),
    }


def _sample_ber(rng: random.Random, depth: int = 0) -> Any:
    from ..snmp import ber

    primitive: tuple[Callable[[], Any], ...] = (
        lambda: ber.Integer(rng.randrange(-(2**31), 2**31)),
        lambda: ber.OctetString(_b(rng)),
        lambda: ber.Null(),
        lambda: ber.ObjectIdentifierValue(
            (1, 3) + tuple(rng.randrange(2**14) for _ in range(rng.randrange(6)))
        ),
        lambda: ber.IpAddress(rng.randbytes(4)),
        lambda: ber.Counter32(_u32(rng)),
        lambda: ber.Gauge32(_u32(rng)),
        lambda: ber.TimeTicks(_u32(rng)),
        lambda: ber.Counter64(rng.randrange(2**64)),
    )
    if depth >= 2 or rng.random() < 0.6:
        return rng.choice(primitive)()
    items = tuple(_sample_ber(rng, depth + 1) for _ in range(rng.randrange(3)))
    if rng.random() < 0.5:
        return ber.Sequence(items)
    return ber.TaggedPdu(0xA0 | rng.randrange(4), items)


def _sample_message(rng: random.Random) -> Any:
    from ..core.matching_engine import compile_selector
    from ..messaging.message import MessageId, SemanticMessage

    selectors = (
        "true",
        "role == 'medic'",
        "tier >= 2 and role == 'scout'",
        "cell == 'c7' or tier < 1",
    )
    headers: dict[str, Any] = {}
    for _ in range(rng.randrange(4)):
        key = _s(rng) or "k"
        headers[key] = rng.choice(
            (
                lambda: _s(rng),
                lambda: rng.randrange(-(2**31), 2**31),
                lambda: rng.uniform(-1e6, 1e6),
                lambda: rng.random() < 0.5,
                lambda: [rng.randrange(100) for _ in range(rng.randrange(3))],
            )
        )()
    return SemanticMessage(
        msg_id=MessageId(_s(rng) or "sender", rng.randrange(2**20)),
        selector=compile_selector(rng.choice(selectors)),
        headers=headers,
        body=_b(rng),
        kind=rng.choice(("chat", "whiteboard", "bench")),
        sender=_s(rng) or "sender",
    )


def _message_equal(a: Any, b: Any) -> bool:
    return (
        a.msg_id == b.msg_id
        and a.kind == b.kind
        and a.sender == b.sender
        and a.selector.text == b.selector.text
        and a.headers == b.headers
        and a.body == b.body
    )


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
def default_registry() -> list[FuzzCodecPair]:
    """Every shipped codec pair, with samplers and declared errors."""
    from ..core import events as ev
    from ..media.progressive import ImagePacket, ImagePacketError
    from ..messaging import rtp
    from ..messaging.serialization import WireError, decode_message, encode_message
    from ..snmp import ber

    events_file = os.path.join(_SRC_ROOT, "repro", "core", "events.py")
    pairs: list[FuzzCodecPair] = []
    samplers = _event_samplers()
    for cls_name, sampler in sorted(samplers.items()):
        cls = getattr(ev, cls_name)
        pairs.append(
            FuzzCodecPair(
                name=f"events.{cls_name}",
                encode=lambda e: e.to_body(),
                decode=cls.from_body,
                sample=sampler,
                expected_errors=(ev.EventError,),
                static_file=events_file,
            )
        )

    def sample_rtp(rng: random.Random) -> rtp.RtpPacket:
        frag_count = rng.randrange(1, 5)
        return rtp.RtpPacket(
            ssrc=_u32(rng),
            msg_seq=_u32(rng),
            frag_index=rng.randrange(frag_count),
            frag_count=frag_count,
            seq=_u32(rng),
            payload=_b(rng),
        )

    pairs.append(
        FuzzCodecPair(
            name="rtp.RtpPacket",
            encode=lambda p: p.encode(),
            decode=rtp.RtpPacket.decode,
            sample=sample_rtp,
            expected_errors=(rtp.RtpError,),
            static_file=os.path.join(_SRC_ROOT, "repro", "messaging", "rtp.py"),
        )
    )
    pairs.append(
        FuzzCodecPair(
            name="rtp.nack",
            encode=lambda t: rtp.encode_nack(*t),
            decode=rtp.decode_nack,
            sample=lambda rng: (
                _u32(rng),
                _u32(rng),
                tuple(rng.randrange(2**16) for _ in range(rng.randrange(1, 6))),
            ),
            expected_errors=(rtp.RtpError,),
            static_file=os.path.join(_SRC_ROOT, "repro", "messaging", "rtp.py"),
        )
    )
    pairs.append(
        FuzzCodecPair(
            name="progressive.ImagePacket",
            encode=lambda p: p.to_bytes(),
            decode=ImagePacket.from_bytes,
            sample=lambda rng: ImagePacket(
                index=rng.randrange(16),
                total=16,
                chunks=tuple(
                    (_b(rng), rng.randrange(2**20)) for _ in range(rng.randrange(1, 4))
                ),
            ),
            expected_errors=(ImagePacketError,),
            static_file=os.path.join(_SRC_ROOT, "repro", "media", "progressive.py"),
        )
    )
    pairs.append(
        FuzzCodecPair(
            name="serialization.SemanticMessage",
            encode=encode_message,
            decode=decode_message,
            sample=_sample_message,
            expected_errors=(WireError,),
            static_file=os.path.join(
                _SRC_ROOT, "repro", "messaging", "serialization.py"
            ),
            equal=_message_equal,
        )
    )

    def decode_ber(data: bytes) -> Any:
        value, end = ber.decode(data)
        if end != len(data):
            raise ber.BerError(f"trailing bytes after TLV: {len(data) - end}")
        return value

    pairs.append(
        FuzzCodecPair(
            name="ber.BerValue",
            encode=ber.encode,
            decode=decode_ber,
            sample=_sample_ber,
            expected_errors=(ber.BerError,),
            static_file=os.path.join(_SRC_ROOT, "repro", "snmp", "ber.py"),
        )
    )
    return pairs


# ----------------------------------------------------------------------
# harness
# ----------------------------------------------------------------------
def _pair_seed(seed: int, name: str) -> int:
    return seed ^ zlib.crc32(name.encode("utf-8"))


def _flip_bits(data: bytes, rng: random.Random, max_flips: int = 3) -> bytes:
    out = bytearray(data)
    for _ in range(rng.randrange(1, max_flips + 1)):
        i = rng.randrange(len(out))
        out[i] ^= 1 << rng.randrange(8)
    return bytes(out)


def fuzz_pair(
    pair: FuzzCodecPair, *, seed: int, rounds: int = 8, flips_per_round: int = 16
) -> FuzzReport:
    """Round-trip + truncation-at-every-offset + seeded bit flips."""
    rng = random.Random(_pair_seed(seed, pair.name))
    report = FuzzReport()

    def crash(prop: str, exc: BaseException, data: bytes) -> None:
        report.failures.append(
            FuzzFailure(
                pair=pair.name,
                property=prop,
                detail=f"{type(exc).__name__}: {exc} (input {data[:40].hex()}…)"
                if len(data) > 40
                else f"{type(exc).__name__}: {exc} (input {data.hex()})",
                static_file=pair.static_file,
            )
        )

    for _ in range(rounds):
        report.rounds += 1
        value = pair.sample(rng)
        data = pair.encode(value)
        try:
            decoded = pair.decode(data)
        except Exception as exc:  # a valid encoding must always decode
            crash("round-trip", exc, data)
            continue
        if not pair.equal(value, decoded):
            report.failures.append(
                FuzzFailure(
                    pair=pair.name,
                    property="round-trip",
                    detail=f"decode(encode(v)) != v: {value!r} -> {decoded!r}",
                    static_file=pair.static_file,
                )
            )
        for k in range(len(data)):
            report.truncations += 1
            try:
                pair.decode(data[:k])
            except pair.expected_errors:
                pass
            except Exception as exc:
                crash("truncation", exc, data[:k])
                break
        if data:
            for _ in range(flips_per_round):
                report.flips += 1
                corrupted = _flip_bits(data, rng)
                try:
                    pair.decode(corrupted)
                except pair.expected_errors:
                    pass
                except Exception as exc:
                    crash("bit-flip", exc, corrupted)
                    break
    return report


def fuzz_registry(
    pairs: Optional[Sequence[FuzzCodecPair]] = None,
    *,
    seed: int = 1337,
    rounds: int = 8,
) -> FuzzReport:
    """Fuzz every registered pair; one merged report."""
    report = FuzzReport()
    for pair in pairs if pairs is not None else default_registry():
        report.merge(fuzz_pair(pair, seed=seed, rounds=rounds))
    return report


def _cross_check(failures: list[FuzzFailure]) -> list[str]:
    """Relate runtime crashes to the static pass's current findings."""
    from .wireformat import wire_file

    lines = []
    flagged_cache: dict[str, bool] = {}
    for f in failures:
        flagged = flagged_cache.get(f.static_file)
        if flagged is None:
            try:
                flagged = any(
                    d.code == "WIRE002" for d in wire_file(f.static_file)
                )
            except OSError:
                flagged = False
            flagged_cache[f.static_file] = flagged
        verdict = (
            "confirms a static WIRE002 finding"
            if flagged
            else "NOT predicted by the static pass — abstraction gap"
        )
        lines.append(f"  [{f.pair}] {f.property}: {f.detail} ({verdict})")
    return lines


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.wirefuzz",
        description="registry-driven differential fuzz over every wire codec",
    )
    parser.add_argument("--seed", type=int, default=1337)
    parser.add_argument("--rounds", type=int, default=8, help="samples per codec pair")
    args = parser.parse_args(argv)
    report = fuzz_registry(seed=args.seed, rounds=args.rounds)
    n_pairs = len(default_registry())
    print(
        f"fuzzed {n_pairs} codec pair(s): {report.rounds} round-trips, "
        f"{report.truncations} truncations, {report.flips} bit-flips "
        f"(seed {args.seed})"
    )
    if report.failures:
        print(f"{len(report.failures)} FAILURE(S):", file=sys.stderr)
        for line in _cross_check(report.failures):
            print(line, file=sys.stderr)
        return 1
    print("all codecs total: no uncaught decoder exception, round-trips exact")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
