"""Static analysis of semantic selectors: SAT, vacuity, types, subsumption.

The selector language (see :mod:`repro.core.selectors`) compares
attributes against literals, so satisfiability is decidable: the
analyzer rewrites the AST to negation normal form, expands to DNF, and
runs each conjunctive clause through the interval/set abstract domain of
:mod:`repro.analysis.domains`.  A clause is a product of independent
per-attribute regions (every atom constrains one attribute), so

* a clause whose region is *provably empty* is UNSAT — soundly;
* a non-empty clause yields a candidate witness profile which is
  **re-evaluated against the original selector** before SAT is claimed.

Anything outside the exact fragment (attribute-vs-attribute comparisons
between different attributes, DNF blowup past ``max_clauses``) degrades
the verdict to UNKNOWN rather than guessing.

Vacuity (tautology) is satisfiability of the negation; implication
``a ⇒ b`` is unsatisfiability of ``a ∧ ¬b``; overlap is satisfiability
of ``a ∧ b``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Enum
from itertools import combinations
from typing import Any, Optional, Union

from ..core.attributes import MISSING
from ..core.selectors import (
    Selector,
    SelectorError,
    _And,
    _Attr,
    _BoolAttr,
    _BoolLiteral,
    _Compare,
    _Exists,
    _Literal,
    _Not,
    _Or,
)
from .diagnostics import Diagnostic, rule_severity
from .domains import NUM, STR, AttrDomain

__all__ = [
    "Verdict",
    "SelectorReport",
    "analyze_selector",
    "selector_diagnostics",
    "implies",
    "overlaps",
    "analyze_selector_set",
    "interesting_values",
    "MAX_CLAUSES",
]

#: default DNF clause budget before the analyzer gives up (UNKNOWN)
MAX_CLAUSES = 256

_COMPLEMENT = {"<": ">=", "<=": ">", ">": "<=", ">=": "<"}


class Verdict(Enum):
    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


class _TooComplex(Exception):
    pass


_Node = Any  # selector AST node (private classes of repro.core.selectors)
_Lit = tuple[_Node, bool]  # (atom, positive?)


# ----------------------------------------------------------------------
# NNF + DNF expansion
# ----------------------------------------------------------------------
def _dnf(node: _Node, neg: bool, limit: int) -> list[list[_Lit]]:
    if isinstance(node, _Not):
        return _dnf(node.operand, not neg, limit)
    conj = (isinstance(node, _And) and not neg) or (isinstance(node, _Or) and neg)
    disj = (isinstance(node, _Or) and not neg) or (isinstance(node, _And) and neg)
    if disj:
        out: list[list[_Lit]] = []
        for child in node.operands:
            out.extend(_dnf(child, neg, limit))
            if len(out) > limit:
                raise _TooComplex
        return out
    if conj:
        clauses: list[list[_Lit]] = [[]]
        for child in node.operands:
            child_clauses = _dnf(child, neg, limit)
            clauses = [a + b for a in clauses for b in child_clauses]
            if len(clauses) > limit:
                raise _TooComplex
        return clauses
    return [[(node, not neg)]]


# ----------------------------------------------------------------------
# clause solving over the abstract domain
# ----------------------------------------------------------------------
@dataclass
class _ClauseResult:
    state: Optional[dict[str, AttrDomain]]  # None => provably UNSAT
    imprecise: bool
    conflicts: list[str]


def _sort_of(v: Any) -> str:
    if isinstance(v, bool):
        return "bool"
    if isinstance(v, (int, float)):
        return NUM
    return STR


def _canon_num(v: Any) -> Any:
    """Numeric literals collapse cross-type (1 == 1.0) like values_equal."""
    if isinstance(v, (int, float)) and not isinstance(v, bool):
        return float(v)
    return v


def _pin_eq(dom: AttrDomain, v: Any) -> AttrDomain:
    """Region of ``values_equal(x, v)``: a single-sort pin."""
    sort = _sort_of(v)
    dom = dom.only(sort)
    if sort == "bool":
        return replace(dom, bools=dom.bools & {v})
    if sort == NUM:
        return replace(dom, num=dom.num.pin(frozenset({_canon_num(v)})))
    return replace(dom, strs=dom.strs.pin(frozenset({v})))


def _exclude_eq(dom: AttrDomain, v: Any) -> AttrDomain:
    """Remove ``v`` from its sort; every other region survives."""
    sort = _sort_of(v)
    if sort == "bool":
        return replace(dom, bools=dom.bools - {v})
    if sort == NUM:
        return replace(dom, num=dom.num.exclude(_canon_num(v)))
    return replace(dom, strs=dom.strs.exclude(v))


def _pin_or_missing(dom: AttrDomain, v: Any) -> AttrDomain:
    """Region of ``x missing or values_equal(x, v)`` (negated ``!=``)."""
    pinned = _pin_eq(dom, v)
    return replace(pinned, missing=dom.missing)


class _Unsat(Exception):
    """The clause just became constant-false."""


def _is_missing_only(dom: AttrDomain) -> bool:
    """The domain admits only absence (MISSING)."""
    return (
        dom.missing
        and not dom.bools
        and dom.num.provably_empty()
        and dom.strs.provably_empty()
        and dom.lst.provably_empty()
    )


def _is_relational(atom: _Node) -> bool:
    """Comparison between two *different* attributes."""
    return (
        isinstance(atom, _Compare)
        and isinstance(atom.left, _Attr)
        and isinstance(atom.right, _Attr)
        and atom.left.name != atom.right.name
    )


def _apply_compare(
    state: dict[str, AttrDomain],
    node: _Compare,
    pos: bool,
    demanded: dict[str, set[str]],
) -> bool:
    """Apply one comparison literal; returns True when imprecise."""
    left, right, op = node.left, node.right, node.op

    if op == "in":
        if isinstance(left, _Literal):  # constant membership test
            if bool(node.evaluate({})) != pos:
                raise _Unsat
            return False
        assert isinstance(left, _Attr)
        values = [lit.value for lit in right]
        dom = state.get(left.name, AttrDomain())
        if pos:
            dom = dom.without_missing()
            bools = frozenset(v for v in values if isinstance(v, bool))
            nums = frozenset(
                _canon_num(v) for v in values if _sort_of(v) == NUM
            )
            strs = frozenset(v for v in values if isinstance(v, str))
            dom = replace(
                dom,
                bools=dom.bools & bools,
                num=dom.num.pin(nums),
                strs=dom.strs.pin(strs),
                lst=dom.lst.kill(),
            )
            demanded.setdefault(left.name, set()).update(_sort_of(v) for v in values)
        else:
            for v in values:
                dom = _exclude_eq(dom, v)
        state[left.name] = dom
        if dom.is_empty():
            raise _Unsat
        return False

    # constant comparison (both sides literals)
    if not node.attributes():
        if bool(node.evaluate({})) != pos:
            raise _Unsat
        return False

    # attribute vs attribute
    if isinstance(left, _Attr) and isinstance(right, _Attr):
        if left.name != right.name:
            # every binary comparison is false when either side is
            # MISSING, so a side already constrained to absence decides
            # the atom exactly; otherwise the constraint is relational
            # and outside the abstract domain (imprecise)
            ldom = state.get(left.name, AttrDomain())
            rdom = state.get(right.name, AttrDomain())
            if _is_missing_only(ldom) or _is_missing_only(rdom):
                if pos:
                    raise _Unsat
                return False
            return True  # imprecise: relational constraint between attrs
        name = left.name
        dom = state.get(name, AttrDomain())
        if op == "==":  # x == x  <=>  exists(x)
            dom = dom.without_missing() if pos else dom.only_missing()
        elif op in ("!=", "<", ">", "contains"):  # constant false
            if pos:
                raise _Unsat
        elif op in ("<=", ">="):  # true iff present and num-or-str
            if pos:
                dom = replace(
                    dom.without_missing(), bools=frozenset(), lst=dom.lst.kill()
                )
            else:
                dom = replace(dom, num=dom.num.kill(), strs=dom.strs.kill())
        state[name] = dom
        if dom.is_empty():
            raise _Unsat
        return False

    # normalise to  attr <op> literal
    if isinstance(left, _Literal):
        if op == "contains":  # scalar literal is never a list
            if pos:
                raise _Unsat
            return False
        left, right = right, left
        if op not in ("==", "!="):
            op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}[op]
    assert isinstance(left, _Attr) and isinstance(right, _Literal)
    name, v = left.name, right.value
    dom = state.get(name, AttrDomain())

    if op == "==":
        dom = _pin_eq(dom, v) if pos else _exclude_eq(dom, v)
        if pos:
            demanded.setdefault(name, set()).add(_sort_of(v))
    elif op == "!=":
        if pos:
            dom = _exclude_eq(dom.without_missing(), v)
        else:
            dom = _pin_or_missing(dom, v)
    elif op == "contains":
        if isinstance(v, (list, tuple)):  # lists hold scalars only
            if pos:
                raise _Unsat
            return False
        cv = _canon_num(v)
        if pos:
            dom = replace(dom.only("list"), lst=dom.lst.require(cv))
            demanded.setdefault(name, set()).add("list")
        else:
            dom = replace(dom, lst=dom.lst.forbid(cv))
    else:  # ordered comparison
        sort = _sort_of(v)
        if sort == "bool":  # ordered vs bool literal is constant false
            if pos:
                raise _Unsat
            return False
        band_name = "num" if sort == NUM else "strs"
        bound = _canon_num(v)
        if pos:
            dom = dom.only(sort)
            band = getattr(dom, band_name).restrict(op, bound)
            dom = replace(dom, **{band_name: band})
            demanded.setdefault(name, set()).add(sort)
        else:
            band = getattr(dom, band_name).restrict(_COMPLEMENT[op], bound)
            dom = replace(dom, **{band_name: band})
    state[name] = dom
    if dom.is_empty():
        raise _Unsat
    return False


def _solve_clause(lits: list[_Lit]) -> _ClauseResult:
    state: dict[str, AttrDomain] = {}
    demanded: dict[str, set[str]] = {}
    imprecise = False
    # relational (attr-vs-attr) atoms go last: their only exact handling
    # needs the single-attribute constraints already folded into state
    lits = sorted(lits, key=lambda la: _is_relational(la[0]))
    try:
        for atom, pos in lits:
            if isinstance(atom, _BoolLiteral):
                if atom.value != pos:
                    raise _Unsat
            elif isinstance(atom, _Exists):
                dom = state.get(atom.name, AttrDomain())
                dom = dom.without_missing() if pos else dom.only_missing()
                state[atom.name] = dom
                if dom.is_empty():
                    raise _Unsat
            elif isinstance(atom, _BoolAttr):
                dom = state.get(atom.name, AttrDomain())
                if pos:
                    dom = replace(dom.only("bool"), bools=dom.bools & {True})
                    demanded.setdefault(atom.name, set()).add("bool")
                else:
                    dom = replace(dom, bools=dom.bools - {True})
                state[atom.name] = dom
                if dom.is_empty():
                    raise _Unsat
            elif isinstance(atom, _Compare):
                imprecise |= _apply_compare(state, atom, pos, demanded)
            else:  # pragma: no cover - grammar produces no other atoms
                imprecise = True
    except _Unsat:
        conflicts = [
            f"attribute {name!r} required as " + " and ".join(sorted(sorts))
            for name, sorts in demanded.items()
            if len(sorts) > 1
        ]
        return _ClauseResult(None, imprecise, conflicts)
    conflicts = [
        f"attribute {name!r} required as " + " and ".join(sorted(sorts))
        for name, sorts in demanded.items()
        if len(sorts) > 1
    ]
    return _ClauseResult(state, imprecise, conflicts)


def _clause_witness(state: dict[str, AttrDomain]) -> Optional[dict[str, Any]]:
    env: dict[str, Any] = {}
    for name, dom in state.items():
        v = dom.sample()
        if v is None:
            return None
        if v is MISSING:
            continue
        env[name] = v
    return env


# ----------------------------------------------------------------------
# verdicts
# ----------------------------------------------------------------------
def _verdict_of_ast(
    ast: _Node, max_clauses: int
) -> tuple[Verdict, Optional[dict[str, Any]], list[str], bool]:
    """(verdict, witness, type-conflict notes, truncated)."""
    try:
        clauses = _dnf(ast, False, max_clauses)
    except _TooComplex:
        return Verdict.UNKNOWN, None, [], True
    unknown = False
    conflicts: list[str] = []
    for clause in clauses:
        res = _solve_clause(clause)
        for c in res.conflicts:
            if c not in conflicts:
                conflicts.append(c)
        if res.state is None:
            continue
        env = _clause_witness(res.state)
        if env is not None and bool(ast.evaluate(env)):
            return Verdict.SAT, env, conflicts, False
        unknown = True
    return (Verdict.UNKNOWN if unknown else Verdict.UNSAT), None, conflicts, False


@dataclass(frozen=True)
class SelectorReport:
    """Everything the analyzer can say about one selector."""

    selector: Selector
    verdict: Verdict
    witness: Optional[dict[str, Any]]
    tautology: Optional[bool]  # None = could not decide
    type_conflicts: tuple[str, ...]
    truncated: bool

    @property
    def satisfiable(self) -> Optional[bool]:
        if self.verdict is Verdict.SAT:
            return True
        if self.verdict is Verdict.UNSAT:
            return False
        return None


def analyze_selector(
    selector: Union[Selector, str], *, max_clauses: int = MAX_CLAUSES
) -> SelectorReport:
    """Full static report for one selector (raises
    :class:`~repro.core.selectors.SelectorError` on parse failure)."""
    sel = selector if isinstance(selector, Selector) else Selector(selector)
    verdict, witness, conflicts, truncated = _verdict_of_ast(sel._ast, max_clauses)
    taut: Optional[bool] = None
    if not truncated:
        neg_verdict, _, _, neg_trunc = _verdict_of_ast(_Not(sel._ast), max_clauses)
        truncated = truncated or neg_trunc
        if neg_verdict is Verdict.UNSAT:
            taut = True
        elif neg_verdict is Verdict.SAT:
            taut = False
    return SelectorReport(
        selector=sel,
        verdict=verdict,
        witness=witness,
        tautology=taut,
        type_conflicts=tuple(conflicts),
        truncated=truncated,
    )


def implies(a: Union[Selector, str], b: Union[Selector, str]) -> Optional[bool]:
    """Does every profile matching ``a`` match ``b``?  (None = unknown.)"""
    sa = a if isinstance(a, Selector) else Selector(a)
    sb = b if isinstance(b, Selector) else Selector(b)
    verdict, _, _, _ = _verdict_of_ast(_And((sa._ast, _Not(sb._ast))), MAX_CLAUSES)
    if verdict is Verdict.UNSAT:
        return True
    if verdict is Verdict.SAT:
        return False
    return None


def overlaps(a: Union[Selector, str], b: Union[Selector, str]) -> Optional[bool]:
    """Can one profile match both selectors?  (None = unknown.)"""
    sa = a if isinstance(a, Selector) else Selector(a)
    sb = b if isinstance(b, Selector) else Selector(b)
    verdict, _, _, _ = _verdict_of_ast(_And((sa._ast, sb._ast)), MAX_CLAUSES)
    if verdict is Verdict.SAT:
        return True
    if verdict is Verdict.UNSAT:
        return False
    return None


# ----------------------------------------------------------------------
# diagnostics surface
# ----------------------------------------------------------------------
def selector_diagnostics(
    selector: Union[Selector, str], *, subject: str = ""
) -> list[Diagnostic]:
    """Diagnostics (SEL001/002/003/004/006) for one selector."""
    text = selector.text if isinstance(selector, Selector) else selector
    label = subject or text
    try:
        report = analyze_selector(selector)
    except SelectorError as err:
        return [
            Diagnostic("SEL006", rule_severity("SEL006"), str(err), subject=label)
        ]
    out: list[Diagnostic] = []
    if report.verdict is Verdict.UNSAT:
        out.append(
            Diagnostic(
                "SEL001",
                rule_severity("SEL001"),
                f"selector {text!r} is unsatisfiable: no profile can ever match",
                subject=label,
            )
        )
    elif report.tautology:
        out.append(
            Diagnostic(
                "SEL002",
                rule_severity("SEL002"),
                f"selector {text!r} is a tautology: it matches every profile",
                subject=label,
            )
        )
    for note in report.type_conflicts:
        out.append(
            Diagnostic(
                "SEL003",
                rule_severity("SEL003"),
                f"type conflict in {text!r}: {note}",
                subject=label,
            )
        )
    if report.verdict is Verdict.UNKNOWN or report.truncated:
        out.append(
            Diagnostic(
                "SEL004",
                rule_severity("SEL004"),
                f"selector {text!r} exceeds the exact analysis fragment; verdict unknown",
                subject=label,
            )
        )
    return out


def analyze_selector_set(
    selectors: list[tuple[str, Union[Selector, str]]], *, max_pairs: int = 400
) -> list[Diagnostic]:
    """Pairwise implication/overlap audit (SEL005) over labelled selectors.

    Reports equivalent pairs and strict subsumptions — both usually mean
    a redundant registration or an over-broad interest.
    """
    compiled: list[tuple[str, Selector]] = []
    for label, sel in selectors:
        try:
            compiled.append((label, sel if isinstance(sel, Selector) else Selector(sel)))
        except SelectorError:
            continue  # parse errors are reported by selector_diagnostics
    out: list[Diagnostic] = []
    pairs = 0
    for (la, a), (lb, b) in combinations(compiled, 2):
        if pairs >= max_pairs:
            break
        pairs += 1
        ab = implies(a, b)
        ba = implies(b, a)
        if ab and ba:
            out.append(
                Diagnostic(
                    "SEL005",
                    rule_severity("SEL005"),
                    f"selectors {la} and {lb} are equivalent",
                    subject=f"{la} ~ {lb}",
                )
            )
        elif ab:
            out.append(
                Diagnostic(
                    "SEL005",
                    rule_severity("SEL005"),
                    f"selector {la} is subsumed by {lb} (every match of the"
                    " first already matches the second)",
                    subject=f"{la} -> {lb}",
                )
            )
        elif ba:
            out.append(
                Diagnostic(
                    "SEL005",
                    rule_severity("SEL005"),
                    f"selector {lb} is subsumed by {la}",
                    subject=f"{lb} -> {la}",
                )
            )
    return out


# ----------------------------------------------------------------------
# domain extraction (feeds the property-based tests)
# ----------------------------------------------------------------------
def interesting_values(selector: Union[Selector, str]) -> dict[str, list[Any]]:
    """Per-attribute candidate values covering every region boundary.

    For each attribute the list holds every literal the selector compares
    it against, numeric neighbours around each numeric constant, string
    neighbours, both booleans, a list built from ``contains`` constants,
    and :data:`MISSING` — enough that brute-force sampling over the
    product explores every truth-relevant region.
    """
    sel = selector if isinstance(selector, Selector) else Selector(selector)
    consts: dict[str, list[Any]] = {name: [] for name in sel.attributes()}

    def visit(node: _Node) -> None:
        if isinstance(node, (_And, _Or)):
            for child in node.operands:
                visit(child)
        elif isinstance(node, _Not):
            visit(node.operand)
        elif isinstance(node, _Compare):
            attrs = [
                side.name for side in (node.left,) if isinstance(side, _Attr)
            ]
            if node.op == "in":
                values = [lit.value for lit in node.right]
            elif isinstance(node.right, _Attr):
                attrs.append(node.right.name)
                values = []
            else:
                values = [node.right.value]
            if isinstance(node.left, _Literal):
                values.append(node.left.value)
            for name in attrs:
                bucket = consts.setdefault(name, [])
                for v in values:
                    bucket.append(v)
                    if isinstance(v, (int, float)) and not isinstance(v, bool):
                        bucket.extend([v - 1, v + 1, v + 0.5])
                    elif isinstance(v, str):
                        bucket.extend([v + "a", v[:-1]])
                    if node.op == "contains":
                        bucket.append([v])
                        bucket.append([])
        elif isinstance(node, (_Exists, _BoolAttr)):
            consts.setdefault(node.name, []).extend([True, False])

    visit(sel._ast)
    out: dict[str, list[Any]] = {}
    for name, bucket in consts.items():
        uniq: list[Any] = [MISSING, True, False, 0, "x"]
        for v in bucket:
            if not any(type(v) is type(u) and v == u for u in uniq):
                uniq.append(v)
        out[name] = uniq
    return out
