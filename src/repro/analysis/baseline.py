"""Baseline workflow: gate CI on *new* findings only.

A baseline file is a JSON multiset of diagnostic fingerprints.  The
fingerprint deliberately excludes line/column — refactors move code
around, and a known finding three lines lower is not a regression — but
includes code, file, subject, and message, so a *second* instance of a
baselined problem in the same file still fails the gate (counts are a
multiset, not a set).

Workflow::

    # accept the current findings as the debt to pay down later
    python -m repro.analysis --write-baseline analysis-baseline.json

    # CI: fail only on findings not in the baseline
    python -m repro.analysis --baseline analysis-baseline.json --fail-on warning

A baseline entry that no longer matches anything is reported by
:func:`stale_entries` so the file can be shrunk as debt is paid.
"""

from __future__ import annotations

import json
from typing import Iterable, Sequence

from .diagnostics import Diagnostic

__all__ = [
    "fingerprint",
    "load_baseline",
    "dump_baseline",
    "apply_baseline",
    "stale_entries",
]

_FORMAT_VERSION = 1


def fingerprint(diag: Diagnostic) -> str:
    """Stable identity of a finding across unrelated line moves."""
    return "|".join(
        (diag.code, (diag.file or "").replace("\\", "/"), diag.subject, diag.message)
    )


def load_baseline(path: str) -> dict[str, int]:
    """Read ``path`` into a fingerprint -> count multiset."""
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    if not isinstance(payload, dict) or "findings" not in payload:
        raise ValueError(f"{path}: not a baseline file")
    out: dict[str, int] = {}
    for entry in payload["findings"]:
        out[entry["fingerprint"]] = int(entry.get("count", 1))
    return out


def dump_baseline(diagnostics: Sequence[Diagnostic]) -> str:
    """Serialize the current findings as a baseline file body."""
    counts: dict[str, int] = {}
    for d in diagnostics:
        fp = fingerprint(d)
        counts[fp] = counts.get(fp, 0) + 1
    payload = {
        "version": _FORMAT_VERSION,
        "findings": [
            {"fingerprint": fp, "count": n} for fp, n in sorted(counts.items())
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def apply_baseline(
    diagnostics: Iterable[Diagnostic], baseline: dict[str, int]
) -> list[Diagnostic]:
    """Drop findings covered by ``baseline`` (multiset semantics)."""
    remaining = dict(baseline)
    out: list[Diagnostic] = []
    for d in diagnostics:
        fp = fingerprint(d)
        if remaining.get(fp, 0) > 0:
            remaining[fp] -= 1
            continue
        out.append(d)
    return out


def stale_entries(
    diagnostics: Iterable[Diagnostic], baseline: dict[str, int]
) -> dict[str, int]:
    """Baseline counts not matched by any current finding (paid-down debt)."""
    remaining = dict(baseline)
    for d in diagnostics:
        fp = fingerprint(d)
        if remaining.get(fp, 0) > 0:
            remaining[fp] -= 1
    return {fp: n for fp, n in remaining.items() if n > 0}
