"""Repository lint: custom AST rules + selector-literal extraction.

This pass reads Python source files (it never imports them) and applies
two kinds of checks:

* **Code rules** over the parsed :mod:`ast`:

  - ``LNT001`` — bare ``except:`` swallows everything, including
    ``KeyboardInterrupt``; in dispatch paths (``messaging/``, the
    matching/inference modules) that silently drops traffic, which is an
    error; elsewhere it is a warning.
  - ``LNT002`` — mutable default arguments (``def f(x=[])``): shared
    state across calls; error inside ``core/``, warning elsewhere.
  - ``LNT003`` — constructing a transport (``SimTransport``,
    ``LoopbackUDP``, ...) anywhere but the transport modules themselves:
    transports must be injected so tests and simulations can substitute
    them.

* **Config extraction**: string literals that are clearly selector
  sources — ``Selector("...")``, ``parse("...")``,
  ``.set_interest("...")``, ``interest=``/``selector=`` keyword
  arguments, and the second argument of ``SemanticMessage.create`` — are
  collected and run through the selector analyzer, so unsatisfiable or
  vacuous selectors in ``examples/`` and ``experiments/`` fail CI before
  they silently drop traffic at run time.

Inline suppressions (``# repro: ignore[CODE]``) apply to both kinds; see
:mod:`repro.analysis.diagnostics`.
"""

from __future__ import annotations

import ast
import os
from typing import Iterable, Iterator, Optional

from .diagnostics import Diagnostic, filter_diagnostics, parse_suppressions, rule_severity
from .selector_analysis import selector_diagnostics

__all__ = [
    "lint_source",
    "lint_file",
    "lint_paths",
    "extract_selector_literals",
    "TRANSPORT_NAMES",
    "TRANSPORT_MODULE_ALLOWLIST",
]

#: class names whose direct construction outside transport modules is flagged
TRANSPORT_NAMES = frozenset(
    {"SimTransport", "LoopbackUDP", "RealUdpTransport", "UdpTransport", "DatagramTransport"}
)

#: path fragments where constructing a transport is legitimate
TRANSPORT_MODULE_ALLOWLIST = (
    "messaging/transport.py",
    "network/udp.py",
    "snmp/realudp.py",
)

#: path fragments treated as dispatch-critical for LNT001
DISPATCH_PATH_FRAGMENTS = (
    "messaging/",
    "core/matching",
    "core/inference",
    "core/events",
)

_MUTABLE_CALLS = {"list", "dict", "set"}


def _norm(path: str) -> str:
    return path.replace(os.sep, "/")


def _is_dispatch_path(path: str) -> bool:
    p = _norm(path)
    return any(frag in p for frag in DISPATCH_PATH_FRAGMENTS)


def _is_core_path(path: str) -> bool:
    return "core/" in _norm(path)


def _is_transport_module(path: str) -> bool:
    p = _norm(path)
    return any(p.endswith(frag) or frag in p for frag in TRANSPORT_MODULE_ALLOWLIST)


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in _MUTABLE_CALLS
    return False


def _call_name(node: ast.Call) -> Optional[str]:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


# ----------------------------------------------------------------------
# selector literal extraction
# ----------------------------------------------------------------------
def extract_selector_literals(
    tree: ast.AST,
) -> Iterator[tuple[str, int, int]]:
    """Yield ``(selector_text, line, column)`` for every constant string
    that flows into a selector position."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        name = _call_name(node)
        candidates: list[ast.expr] = []
        if name in ("Selector", "parse", "set_interest", "match_selector", "compile_selector"):
            if node.args:
                candidates.append(node.args[0])
        if name == "create" and len(node.args) >= 2:
            # SemanticMessage.create(sender, selector, ...)
            candidates.append(node.args[1])
        for kw in node.keywords:
            if kw.arg in ("interest", "selector"):
                candidates.append(kw.value)
        for arg in candidates:
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                yield arg.value, arg.lineno, arg.col_offset + 1


# ----------------------------------------------------------------------
# per-file lint
# ----------------------------------------------------------------------
def lint_source(
    source: str,
    path: str,
    *,
    ignore: Iterable[str] = (),
    analyze_selectors: bool = True,
) -> list[Diagnostic]:
    """All repo-lint diagnostics for one file's source text."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as err:
        return [
            Diagnostic(
                "LNT001",
                rule_severity("LNT001", in_hot_scope=False),
                f"file does not parse: {err.msg}",
                subject=path,
                file=path,
                line=err.lineno,
                column=err.offset,
            )
        ]

    out: list[Diagnostic] = []
    dispatch = _is_dispatch_path(path)
    core = _is_core_path(path)
    transport_ok = _is_transport_module(path)

    for node in ast.walk(tree):
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            out.append(
                Diagnostic(
                    "LNT001",
                    rule_severity("LNT001", in_hot_scope=dispatch),
                    "bare `except:` swallows every exception"
                    + (" on a dispatch path" if dispatch else ""),
                    subject=path,
                    file=path,
                    line=node.lineno,
                    column=node.col_offset + 1,
                )
            )
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if _is_mutable_default(default):
                    out.append(
                        Diagnostic(
                            "LNT002",
                            rule_severity("LNT002", in_hot_scope=core),
                            f"mutable default argument in {node.name}():"
                            " shared across every call",
                            subject=f"{path}:{node.name}",
                            file=path,
                            line=default.lineno,
                            column=default.col_offset + 1,
                        )
                    )
        elif isinstance(node, ast.Call) and not transport_ok:
            name = _call_name(node)
            if name in TRANSPORT_NAMES:
                out.append(
                    Diagnostic(
                        "LNT003",
                        rule_severity("LNT003"),
                        f"{name} constructed directly; transports must be"
                        " injected so simulations and tests can substitute them",
                        subject=path,
                        file=path,
                        line=node.lineno,
                        column=node.col_offset + 1,
                    )
                )

    if analyze_selectors:
        for text, line, column in extract_selector_literals(tree):
            for d in selector_diagnostics(text, subject=f"{path}:{line}"):
                out.append(d.at(path, line, column))

    return filter_diagnostics(
        out, ignore=ignore, suppressions=parse_suppressions(source)
    )


def lint_file(path: str, *, ignore: Iterable[str] = ()) -> list[Diagnostic]:
    with open(path, "r", encoding="utf-8") as fh:
        source = fh.read()
    return lint_source(source, path, ignore=ignore)


def _walk_py_files(paths: Iterable[str]) -> list[str]:
    """Every ``.py`` file under each path, in deterministic walk order."""
    files: list[str] = []
    for root in paths:
        if os.path.isfile(root):
            files.append(root)
            continue
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames[:] = sorted(d for d in dirnames if not d.startswith((".", "__pycache__")))
            files.extend(
                os.path.join(dirpath, fn) for fn in sorted(filenames) if fn.endswith(".py")
            )
    return files


def lint_paths(
    paths: Iterable[str], *, ignore: Iterable[str] = (), jobs: int = 1
) -> list[Diagnostic]:
    """Lint every ``.py`` file under each path (files are taken as-is).

    ``jobs > 1`` lints files on that many worker processes (the pass is
    per-file and CPU-bound in ``ast.parse``, so threads would serialize
    on the GIL).  Results are reassembled in submission order, so the
    diagnostic stream is byte-identical to a serial run.
    """
    files = _walk_py_files(paths)
    ignore = tuple(ignore)
    if jobs > 1 and len(files) > 1:
        from concurrent.futures import ProcessPoolExecutor
        from functools import partial

        out: list[Diagnostic] = []
        with ProcessPoolExecutor(max_workers=min(jobs, len(files))) as pool:
            for diags in pool.map(partial(_lint_one, ignore=ignore), files):
                out.extend(diags)
        return out
    return [d for path in files for d in lint_file(path, ignore=ignore)]


def _lint_one(path: str, ignore: tuple[str, ...]) -> list[Diagnostic]:
    """Picklable per-file worker for the ``jobs > 1`` process pool."""
    return lint_file(path, ignore=ignore)
