"""Static verification of semantic configs: selectors, policies, contracts.

The paper's delivery and adaptation decisions hinge on propositional
semantic selectors and a policy database — a misconfigured selector or a
contradictory policy silently drops traffic at run time.  This package
catches those bugs *statically*: at attach/registration time (see the
runtime hooks on :class:`~repro.messaging.broker.SemanticBus` and
:class:`~repro.core.policies.PolicyDatabase`) and in CI
(``python -m repro.analysis --fail-on=error``).

Three analyzer families, all reporting structured
:class:`~repro.analysis.diagnostics.Diagnostic` objects with stable rule
codes:

* :mod:`~repro.analysis.selector_analysis` — satisfiability, vacuity,
  type conflicts, and pairwise implication/overlap over the selector AST
  (DNF expansion into an interval/set abstract domain);
* :mod:`~repro.analysis.policy_lint` — step-policy monotonicity and
  reachability, SIR tier collapse, packet-step conformance, transform
  cycles/dead rules, contract-vs-policy contradictions;
* :mod:`~repro.analysis.repo_lint` — custom AST rules over the source
  tree plus extraction and analysis of selector string literals;
* :mod:`~repro.analysis.dataflow` — cross-layer dataflow over the
  project call graph (:mod:`~repro.analysis.callgraph`): physical-unit
  propagation (dB vs linear, bit/s vs byte/s, s/ms/µs), exception-escape
  summaries for dispatch boundaries, and path-sensitive socket/transport
  lifecycle tracking;
* :mod:`~repro.analysis.typestate` — protocol-automaton typestate over
  the same call graph (lock discipline, RTP fragment sequencing, SNMP
  sessions, subscription lifecycle; TSP001–007) plus callback-context
  concurrency discipline (shared-state mutation, synchronous republish,
  cross-thread captures; CON001–003);
* :mod:`~repro.analysis.wireformat` — wire-format symmetry and decode
  safety over auto-discovered encoder/decoder pairs (byte-layout
  abstract interpretation; WIRE001–005), with a runtime twin in
  :mod:`~repro.analysis.wirefuzz`: registry-driven differential fuzzing
  (round-trip, truncation, bit-flip) cross-checked against the static
  findings.

Warm runs skip unchanged files via a content-hash
:class:`~repro.analysis.cache.AnalysisCache` (``--cache``).

CI gates on *new* findings only via a checked-in baseline
(:mod:`~repro.analysis.baseline`), and emits SARIF for code-scanning
annotations (:mod:`~repro.analysis.sarif`).
"""

from .baseline import apply_baseline, dump_baseline, fingerprint, load_baseline
from .cache import DEFAULT_CACHE_NAME, AnalysisCache
from .callgraph import (
    CallGraph,
    CallSite,
    FunctionInfo,
    build_call_graph,
    build_call_graph_from_sources,
)
from .concurrency import (
    LOCK_FACTORIES,
    THREAD_ROOT_SUFFIXES,
    LockInfo,
    analyze_concurrency,
    check_sanitizer_report,
    collect_locks,
    concurrency_diagnostics,
    find_cycles,
    lock_order_edges,
)
from .dataflow import (
    GAUGE_UNITS,
    RESOURCE_TYPES,
    SIGNATURES,
    Unit,
    analyze_dataflow,
    compute_escaping_exceptions,
    compute_return_units,
    dataflow_diagnostics,
)
from .diagnostics import (
    RULES,
    Diagnostic,
    DiagnosticWarning,
    Severity,
    filter_diagnostics,
    max_severity,
    parse_suppressions,
)
from .policy_lint import (
    PACKET_STEPS,
    lint_contract_against,
    lint_policy_database,
    lint_profile,
    lint_sir_policy,
    lint_step_policy,
    lint_transforms,
)
from .hotpath import (
    DET_WALLCLOCK_EXEMPT_PATHS,
    HOT_ENTRY_SUFFIXES,
    POPULATION_NAMES,
    PURE_CALLABLES,
    SIM_ROOT_SUFFIXES,
    analyze_hotpath,
    det_diagnostics,
    hot_contexts,
    hotpath_diagnostics,
    perf_diagnostics,
    sim_reachable,
)
from .repo_lint import extract_selector_literals, lint_file, lint_paths, lint_source
from .runner import AnalysisReport, analyze_defaults, render_json, render_text, run_analysis
from .sanitizer import LockOrderSanitizer, TrackedLock, make_lock
from .sarif import render_sarif
from .typestate import (
    PROTOCOLS,
    SHARED_STATE_CLASSES,
    EventRule,
    ProtocolSpec,
    analyze_typestate,
    typestate_diagnostics,
)
from .selector_analysis import (
    SelectorReport,
    Verdict,
    analyze_selector,
    analyze_selector_set,
    implies,
    interesting_values,
    overlaps,
    selector_diagnostics,
)
from .wireformat import (
    PAIR_METHOD_NAMES,
    CodecPair,
    analyze_wireformat,
    wire_file,
    wire_paths,
    wire_source,
)
from .wirefuzz import (
    FuzzCodecPair,
    FuzzFailure,
    FuzzReport,
    default_registry,
    fuzz_pair,
    fuzz_registry,
)

__all__ = [
    "Diagnostic",
    "DiagnosticWarning",
    "Severity",
    "RULES",
    "filter_diagnostics",
    "max_severity",
    "parse_suppressions",
    "Verdict",
    "SelectorReport",
    "analyze_selector",
    "analyze_selector_set",
    "selector_diagnostics",
    "implies",
    "overlaps",
    "interesting_values",
    "PACKET_STEPS",
    "lint_step_policy",
    "lint_sir_policy",
    "lint_policy_database",
    "lint_contract_against",
    "lint_transforms",
    "lint_profile",
    "lint_source",
    "lint_file",
    "lint_paths",
    "extract_selector_literals",
    "AnalysisReport",
    "run_analysis",
    "analyze_defaults",
    "render_text",
    "render_json",
    "render_sarif",
    "CallGraph",
    "CallSite",
    "FunctionInfo",
    "build_call_graph",
    "build_call_graph_from_sources",
    "Unit",
    "SIGNATURES",
    "GAUGE_UNITS",
    "RESOURCE_TYPES",
    "analyze_dataflow",
    "dataflow_diagnostics",
    "compute_return_units",
    "compute_escaping_exceptions",
    "EventRule",
    "ProtocolSpec",
    "PROTOCOLS",
    "SHARED_STATE_CLASSES",
    "analyze_typestate",
    "typestate_diagnostics",
    "HOT_ENTRY_SUFFIXES",
    "SIM_ROOT_SUFFIXES",
    "POPULATION_NAMES",
    "PURE_CALLABLES",
    "DET_WALLCLOCK_EXEMPT_PATHS",
    "hot_contexts",
    "sim_reachable",
    "analyze_hotpath",
    "hotpath_diagnostics",
    "perf_diagnostics",
    "det_diagnostics",
    "LOCK_FACTORIES",
    "THREAD_ROOT_SUFFIXES",
    "LockInfo",
    "collect_locks",
    "lock_order_edges",
    "find_cycles",
    "concurrency_diagnostics",
    "analyze_concurrency",
    "check_sanitizer_report",
    "LockOrderSanitizer",
    "TrackedLock",
    "make_lock",
    "fingerprint",
    "load_baseline",
    "dump_baseline",
    "apply_baseline",
    "PAIR_METHOD_NAMES",
    "CodecPair",
    "analyze_wireformat",
    "wire_source",
    "wire_file",
    "wire_paths",
    "FuzzCodecPair",
    "FuzzFailure",
    "FuzzReport",
    "default_registry",
    "fuzz_pair",
    "fuzz_registry",
    "AnalysisCache",
    "DEFAULT_CACHE_NAME",
]
