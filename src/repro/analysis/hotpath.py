"""Hot-path cost (PERF) and replay-determinism (DET) verification.

The ROADMAP's scale program (open item 3) makes two properties of the
dispatch fabric load-bearing: *per-packet cost* must stay sublinear in
the population (the whole point of the indexed/sharded brokers), and a
seeded run must *replay byte-identically* (the whole point of the fault
injector).  Nothing structural stops a new PR from silently violating
either — an ``O(N)`` scan hidden three calls below ``publish()``, or a
``set`` iteration feeding delivery order.  This pass checks both
statically, over the same project call graph the dataflow and typestate
passes walk.

**Interprocedural loop-cost propagation.**  A registry of per-packet /
per-message entry points (:data:`HOT_ENTRY_SUFFIXES` — ``Network.send``,
``SemanticBus.publish``/``publish_many``, the sharded batch broker,
``RtpReassembler.ingest``, the SNMP poll loop, and the attach-path
population churners) seeds a forward closure over resolved call edges.
Each reachable function gets a *loop context*: the maximum number of
enclosing loops accumulated along any call chain from an entry (a call
made inside a ``for`` adds one).  A statement's *effective depth* is its
function's context plus its local loop nesting — depth 0 runs once per
packet, depth 1 once per candidate per packet, and so on.  The PERF
rules key off that depth:

* **PERF001** — population-sized scan or copy (iteration over, or
  ``list()``/``sorted()``/``tuple()``/``set()`` of, a name in
  :data:`POPULATION_NAMES`) anywhere on a hot path.
* **PERF002** — container construction (copy-call, display, or
  comprehension) at effective depth >= 2: per-candidate × per-packet
  allocation churn.
* **PERF003** — repeated immutable-``bytes`` concatenation
  (``buf += chunk`` in a loop on a hot path): quadratic; use
  ``bytearray`` or ``join``.
* **PERF004** — loop-invariant pure calls in hot loops (every argument
  constant or unassigned in the loop), and uncached
  ``Selector(text)`` construction on a hot path outside the caching
  layer — re-parsing identical selector text per call.
* **PERF005** — eager string formatting handed to ``print``/logging
  inside a hot loop (the f-string renders even when the sink discards
  it).

**Replay determinism (DET).**  A second registry
(:data:`SIM_ROOT_SUFFIXES` plus every ``repro.experiments`` ``run_*`` /
``main``) seeds the *simulation-reachable* set — code whose behaviour
PR 5's byte-identical seeded replay depends on:

* **DET001** — unseeded or process-global RNG (``random.random()``,
  ``np.random.default_rng()`` with no seed, legacy ``np.random.*``
  draws) reachable from simulation paths.
* **DET002** — wall-clock reads (``time.time``/``perf_counter``/
  ``datetime.now``) reachable from simulation paths.  Experiment
  *harness* timing — measuring real throughput around a deterministic
  workload — is legitimate and exempted via
  :data:`DET_WALLCLOCK_EXEMPT_PATHS` (path fragments).
* **DET003** — iteration over a ``set``/``frozenset`` feeding an
  ordering-sensitive sink (delivery/append/heap/serialization) without
  ``sorted()``.  Python ``dict`` views are insertion-ordered and
  therefore deterministic; string ``set`` order is hash-randomized
  across processes, so an unsorted set iteration diverges between a
  run and its replay.
* **DET004** — ``id()`` or object-``hash()`` inside an ordering key
  (``sorted``/``sort``/``min``/``max`` ``key=`` or a ``heappush``
  entry): CPython ids are allocation addresses and differ every run.

Everything reports through the shared
:class:`~repro.analysis.diagnostics.Diagnostic` model, so
``# repro: ignore[PERF001]`` suppressions, ``--ignore``, baseline
fingerprints, and SARIF rendering all apply unchanged.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Optional

from .callgraph import CallGraph, CallSite, FunctionInfo, build_call_graph
from .diagnostics import (
    Diagnostic,
    filter_diagnostics,
    parse_suppressions,
    rule_severity,
)

__all__ = [
    "HOT_ENTRY_SUFFIXES",
    "SIM_ROOT_SUFFIXES",
    "POPULATION_NAMES",
    "PURE_CALLABLES",
    "DET_WALLCLOCK_EXEMPT_PATHS",
    "hot_contexts",
    "sim_reachable",
    "perf_diagnostics",
    "det_diagnostics",
    "hotpath_diagnostics",
    "analyze_hotpath",
]


# ----------------------------------------------------------------------
# registries
# ----------------------------------------------------------------------
#: Per-packet / per-message entry points (qualname suffixes, matched as
#: ``Class.method`` or bare function name).  The first block runs once
#: per message on the datapath; the second runs once per subscription on
#: the attach path, which at fleet scale is packet-rate population churn
#: (``sharded_attach_per_s`` is a committed trajectory metric).
HOT_ENTRY_SUFFIXES: tuple[str, ...] = (
    "Network.send",
    "Network.cast",
    "MulticastFabric.cast",
    "SemanticBus.publish",
    "SemanticBus.publish_many",
    "ShardedSemanticBus.publish",
    "ShardedSemanticBus.publish_many",
    "RtpReassembler.ingest",
    "NetworkStateInterface.poll",
    # attach-path population churn
    "SemanticBus.attach",
    "ShardedSemanticBus.attach",
    "MatchingEngine.add",
    "ClientProfile.__init__",
    "ClientProfile.set_interest",
)

#: Simulation roots for the DET rules: the event loop, the framework
#: drivers, and the datapath entries.  Module-level functions named
#: ``run_*`` or ``main`` inside ``repro.experiments`` count as roots
#: too (see :func:`sim_reachable`).
SIM_ROOT_SUFFIXES: tuple[str, ...] = HOT_ENTRY_SUFFIXES + (
    "Scheduler.step",
    "Scheduler.run",
    "Scheduler.run_until",
    "Scheduler.run_for",
    "CollaborationFramework.run",
    "CollaborationFramework.run_for",
)

#: Attribute/variable names that hold population-sized collections
#: (subscribers, clients, links...).  Scanning one of these per packet
#: is exactly the O(N) the indexed brokers exist to avoid.
POPULATION_NAMES: frozenset[str] = frozenset(
    {
        "subs",
        "_subs",
        "subscribers",
        "_subscribers",
        "clients",
        "_clients",
        "profiles",
        "_profiles",
        "links",
        "_links",
        "nodes",
        "_nodes",
        "members",
        "_members",
        "subscriptions",
        "_subscriptions",
        "_partial",
        "population",
    }
)

#: Known-pure callables whose result depends only on their arguments:
#: calling one in a loop with loop-invariant arguments re-does the same
#: work every iteration.
PURE_CALLABLES: frozenset[str] = frozenset(
    {
        "Selector",
        "parse",
        "compile_selector",
        "decompose",
        "required_attributes",
        "selector_diagnostics",
        "analyze_selector",
        "compile",  # re.compile
    }
)

#: Path fragments whose wall-clock reads are *harness* timing (real
#: throughput measured around a deterministic workload), not simulation
#: state — exempt from DET002.  Keep each entry justified here.
DET_WALLCLOCK_EXEMPT_PATHS: tuple[str, ...] = (
    # measures real elapsed time of the deterministic broker workload;
    # the workload itself is seeded and virtual-clocked
    "experiments/broker_scale.py",
)

#: module-level ``random.*`` draws on the process-global (unseeded) RNG
_GLOBAL_RANDOM_FNS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "gauss",
        "normalvariate",
        "expovariate",
        "betavariate",
        "triangular",
        "getrandbits",
    }
)

#: legacy ``np.random.*`` draws on numpy's process-global RNG
_NP_GLOBAL_FNS = frozenset(
    {
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "choice",
        "shuffle",
        "permutation",
        "normal",
        "uniform",
        "exponential",
        "poisson",
    }
)

_WALLCLOCK_TIME_FNS = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
    }
)

_WALLCLOCK_DATE_FNS = frozenset({"now", "utcnow", "today"})

#: method calls inside a loop body that make iteration order observable
_ORDER_SENSITIVE_METHODS = frozenset(
    {
        "append",
        "appendleft",
        "heappush",
        "put",
        "put_nowait",
        "publish",
        "send",
        "sendto",
        "write",
        "pack",
        "call_at",
        "call_after",
        "callback",
        "deliver",
        "join",
    }
)

#: cap on propagated loop depth — beyond per-candidate-per-packet the
#: verdicts stop changing, and the cap guarantees fixpoint termination
_DEPTH_CAP = 3

#: modules allowed to construct Selectors from variable text: they ARE
#: the caching layer PERF004 routes everyone else through
_PARSE_CACHE_LAYER = ("core/selectors.py", "core/matching_engine.py")


# ----------------------------------------------------------------------
# reachability + loop-cost propagation
# ----------------------------------------------------------------------
def _matches_suffix(qualname: str, suffix: str) -> bool:
    return qualname == suffix or qualname.endswith("." + suffix)


def _entry_functions(graph: CallGraph, suffixes: Iterable[str]) -> set[str]:
    out: set[str] = set()
    for q in graph.functions:
        for s in suffixes:
            if _matches_suffix(q, s):
                out.add(q)
                break
    return out


def _local_loop_depths(fn: ast.AST) -> dict[int, int]:
    """``id(expr-node) -> enclosing-loop count`` for every node in ``fn``.

    ``for``/``while`` bodies add one (the iterable expression itself is
    evaluated outside); each comprehension generator adds one for the
    element expression and deeper generators.  Nested function bodies
    are not descended into — they execute on their own schedule.
    """
    depths: dict[int, int] = {}

    def visit(node: ast.AST, d: int) -> None:
        depths[id(node)] = d
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            # only descend into the *top* function we were handed
            if depths.get(id(node)) != 0 or node is not fn:
                return
        if isinstance(node, (ast.For, ast.AsyncFor)):
            visit(node.iter, d)
            visit(node.target, d)
            for stmt in node.body + node.orelse:
                visit(stmt, d + 1)
            return
        if isinstance(node, ast.While):
            visit(node.test, d + 1)
            for stmt in node.body + node.orelse:
                visit(stmt, d + 1)
            return
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for i, gen in enumerate(node.generators):
                visit(gen.iter, d + i)
                visit(gen.target, d + i + 1)
                for cond in gen.ifs:
                    visit(cond, d + i + 1)
            inner = d + len(node.generators)
            if isinstance(node, ast.DictComp):
                visit(node.key, inner)
                visit(node.value, inner)
            else:
                visit(node.elt, inner)
            return
        for child in ast.iter_child_nodes(node):
            visit(child, d)

    visit(fn, 0)
    return depths


class _DepthIndex:
    """Lazily built per-function ``node -> local loop depth`` maps."""

    def __init__(self, graph: CallGraph) -> None:
        self._graph = graph
        self._cache: dict[str, dict[int, int]] = {}

    def depths(self, qualname: str) -> dict[int, int]:
        got = self._cache.get(qualname)
        if got is None:
            info = self._graph.functions[qualname]
            got = self._cache[qualname] = _local_loop_depths(info.node)
        return got

    def depth_of(self, qualname: str, node: ast.AST) -> int:
        return self.depths(qualname).get(id(node), 0)


def hot_contexts(
    graph: CallGraph, *, entries: Iterable[str] = HOT_ENTRY_SUFFIXES
) -> dict[str, int]:
    """Loop context of every hot-reachable function.

    ``context[q]`` is the maximum number of loops enclosing any call
    chain from a registered entry point down to ``q`` (capped at
    :data:`_DEPTH_CAP`): 0 means "runs once per packet", 1 "once per
    candidate per packet", etc.  Monotone max-propagation to fixpoint.
    """
    index = _DepthIndex(graph)
    context: dict[str, int] = {q: 0 for q in _entry_functions(graph, entries)}
    work = list(context)
    while work:
        q = work.pop()
        base = context[q]
        for site in graph.calls_from(q):
            if site.callee is None or site.callee not in graph.functions:
                continue
            cand = min(_DEPTH_CAP, base + index.depth_of(q, site.node))
            if cand > context.get(site.callee, -1):
                context[site.callee] = cand
                work.append(site.callee)
    return context


def sim_reachable(graph: CallGraph) -> set[str]:
    """Functions reachable from the simulation roots (DET scope)."""
    roots = _entry_functions(graph, SIM_ROOT_SUFFIXES)
    for q, info in graph.functions.items():
        if info.module.startswith("repro.experiments") and (
            info.name == "main" or info.name.startswith("run")
        ):
            roots.add(q)
    seen = set(roots)
    work = list(roots)
    while work:
        q = work.pop()
        for callee in graph.callees_of(q):
            if callee in graph.functions and callee not in seen:
                seen.add(callee)
                work.append(callee)
    return seen


# ----------------------------------------------------------------------
# shared AST helpers
# ----------------------------------------------------------------------
def _rightmost(expr: ast.expr) -> Optional[str]:
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    return None


def _dotted(expr: ast.expr) -> str:
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return f"{_dotted(expr.value)}.{expr.attr}"
    return "<expr>"


def _diag(
    code: str, message: str, info: FunctionInfo, node: ast.AST
) -> Diagnostic:
    return Diagnostic(
        code,
        rule_severity(code),
        message,
        subject=info.qualname,
        file=info.path,
        line=getattr(node, "lineno", None),
        column=getattr(node, "col_offset", -1) + 1 or None,
    )


def _assigned_names(node: ast.AST) -> set[str]:
    """Every name (re)bound anywhere inside ``node``."""
    out: set[str] = set()
    for sub in ast.walk(node):
        targets: list[ast.expr] = []
        if isinstance(sub, ast.Assign):
            targets = list(sub.targets)
        elif isinstance(sub, (ast.AugAssign, ast.AnnAssign)):
            targets = [sub.target]
        elif isinstance(sub, (ast.For, ast.AsyncFor)):
            targets = [sub.target]
        elif isinstance(sub, ast.withitem) and sub.optional_vars is not None:
            targets = [sub.optional_vars]
        elif isinstance(sub, ast.NamedExpr):
            targets = [sub.target]
        for t in targets:
            for leaf in ast.walk(t):
                if isinstance(leaf, ast.Name):
                    out.add(leaf.id)
    return out


def _loops_in(fn: ast.AST) -> Iterator[ast.AST]:
    """Top-level walk of every loop statement in ``fn`` (nested incl.)."""
    for node in ast.walk(fn):
        if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
            yield node


def _is_loop_invariant(arg: ast.expr, loop_assigned: set[str]) -> bool:
    """Whether ``arg`` provably evaluates the same every loop iteration."""
    for leaf in ast.walk(arg):
        if isinstance(leaf, ast.Name) and leaf.id in loop_assigned:
            return False
        if isinstance(leaf, ast.Call):
            return False  # any embedded call: conservatively variant
    return isinstance(arg, (ast.Constant, ast.Name, ast.Attribute))


# ----------------------------------------------------------------------
# PERF checkers
# ----------------------------------------------------------------------
class _PerfChecker:
    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph
        self.context = hot_contexts(graph)
        self.index = _DepthIndex(graph)
        self.out: list[Diagnostic] = []

    def run(self) -> list[Diagnostic]:
        for q, ctx in self.context.items():
            info = self.graph.functions[q]
            depths = self.index.depths(q)
            self._check_population_scans(info, ctx, depths)
            self._check_allocation_churn(info, ctx, depths)
            self._check_bytes_concat(info)
            self._check_invariant_calls(info)
            self._check_uncached_parse(info)
            self._check_eager_formatting(info, ctx, depths)
        return self.out

    # -- PERF001 --------------------------------------------------------
    def _check_population_scans(
        self, info: FunctionInfo, ctx: int, depths: dict[int, int]
    ) -> None:
        for node in ast.walk(info.node):
            pop: Optional[str] = None
            where: ast.AST = node
            if isinstance(node, (ast.For, ast.AsyncFor)):
                pop = _rightmost(node.iter)
                where = node.iter
            elif isinstance(node, ast.comprehension):
                continue  # handled via the comprehension owner below
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                for gen in node.generators:
                    name = _rightmost(gen.iter)
                    if name in POPULATION_NAMES:
                        self._perf001(info, gen.iter, name, ctx)
                continue
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                if node.func.id in ("list", "sorted", "tuple", "set") and len(
                    node.args
                ) >= 1:
                    pop = _rightmost(node.args[0])
            if pop in POPULATION_NAMES:
                assert pop is not None
                self._perf001(info, where, pop, ctx)

    def _perf001(self, info: FunctionInfo, node: ast.AST, pop: str, ctx: int) -> None:
        per = "per packet" if ctx == 0 else "inside a per-packet loop"
        self.out.append(
            _diag(
                "PERF001",
                f"population-sized scan/copy of `{pop}` {per} in"
                f" {info.name}(): O(population) work on the hot path",
                info,
                node,
            )
        )

    # -- PERF002 --------------------------------------------------------
    def _check_allocation_churn(
        self, info: FunctionInfo, ctx: int, depths: dict[int, int]
    ) -> None:
        """Same-source container copies re-made every hot-loop iteration.

        A copy whose source varies per iteration (indexing per-item data)
        is the loop's actual work and is not flagged; copying the *same*
        mapping/sequence once per candidate per packet is pure churn.
        """
        for loop in _loops_in(info.node):
            assigned = _assigned_names(loop)
            body_depth = depths.get(id(loop), 0) + 1
            for node in ast.walk(loop):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id in ("dict", "list", "set", "tuple")
                    and node.args
                ):
                    continue
                if depths.get(id(node), 0) < body_depth:
                    continue  # in the loop's iterable: evaluated once
                if not all(_is_loop_invariant(a, assigned) for a in node.args):
                    continue
                if _rightmost(node.args[0]) in POPULATION_NAMES:
                    continue  # PERF001 already covers population copies
                self.out.append(
                    _diag(
                        "PERF002",
                        f"{node.func.id}(...) copies the same source on every"
                        f" iteration of a hot loop in {info.name}():"
                        " per-candidate-per-packet allocation churn; hoist"
                        " the copy out of the loop",
                        info,
                        node,
                    )
                )

    # -- PERF003 --------------------------------------------------------
    def _check_bytes_concat(self, info: FunctionInfo) -> None:
        bytes_vars = self._bytes_locals(info.node)
        for loop in _loops_in(info.node):
            for node in ast.walk(loop):
                target: Optional[str] = None
                if (
                    isinstance(node, ast.AugAssign)
                    and isinstance(node.op, ast.Add)
                    and isinstance(node.target, ast.Name)
                ):
                    target = node.target.id
                elif (
                    isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and isinstance(node.value, ast.BinOp)
                    and isinstance(node.value.op, ast.Add)
                    and isinstance(node.value.left, ast.Name)
                    and node.value.left.id == node.targets[0].id
                ):
                    target = node.targets[0].id
                if target is not None and target in bytes_vars:
                    self.out.append(
                        _diag(
                            "PERF003",
                            f"`{target} += ...` concatenates immutable bytes"
                            f" inside a loop in {info.name}(): quadratic;"
                            " accumulate in a bytearray or join once",
                            info,
                            node,
                        )
                    )

    @staticmethod
    def _bytes_locals(fn: ast.AST) -> set[str]:
        """Names bound to a bytes-ish initializer anywhere in ``fn``."""
        out: set[str] = set()
        for node in ast.walk(fn):
            if not (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
            ):
                continue
            v = node.value
            if isinstance(v, ast.Constant) and isinstance(v.value, bytes):
                out.add(node.targets[0].id)
            elif isinstance(v, ast.Call):
                name = _rightmost(v.func)
                if name in ("bytes", "encode"):
                    out.add(node.targets[0].id)
        return out

    # -- PERF004 (a): loop-invariant pure calls -------------------------
    def _check_invariant_calls(self, info: FunctionInfo) -> None:
        depths = self.index.depths(info.qualname)
        for loop in _loops_in(info.node):
            assigned = _assigned_names(loop)
            body_depth = depths.get(id(loop), 0) + 1
            for node in ast.walk(loop):
                if not isinstance(node, ast.Call):
                    continue
                if depths.get(id(node), 0) < body_depth:
                    continue  # in the loop's iterable: evaluated once
                name = _rightmost(node.func)
                if name not in PURE_CALLABLES:
                    continue
                args = list(node.args) + [kw.value for kw in node.keywords]
                if not args:
                    continue
                if all(_is_loop_invariant(a, assigned) for a in args):
                    self.out.append(
                        _diag(
                            "PERF004",
                            f"loop-invariant pure call {name}(...) inside a"
                            f" hot loop in {info.name}(): identical work"
                            " every iteration; hoist it out of the loop",
                            info,
                            node,
                        )
                    )

    # -- PERF004 (b): uncached selector parse ---------------------------
    def _check_uncached_parse(self, info: FunctionInfo) -> None:
        norm = info.path.replace("\\", "/")
        if any(norm.endswith(layer) for layer in _PARSE_CACHE_LAYER):
            return
        for node in ast.walk(info.node):
            if not (isinstance(node, ast.Call) and _rightmost(node.func) == "Selector"):
                continue
            if not node.args or isinstance(node.args[0], ast.Constant):
                continue
            self.out.append(
                _diag(
                    "PERF004",
                    f"Selector(...) re-parses selector text on every call to"
                    f" {info.name}(): route through the parse cache"
                    " (repro.core.selectors.parse / compile_selector)",
                    info,
                    node,
                )
            )

    # -- PERF005 --------------------------------------------------------
    def _check_eager_formatting(
        self, info: FunctionInfo, ctx: int, depths: dict[int, int]
    ) -> None:
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            total = ctx + depths.get(id(node), 0)
            if total < 1:
                continue
            sink: Optional[str] = None
            if isinstance(node.func, ast.Name) and node.func.id == "print":
                sink = "print"
            elif isinstance(node.func, ast.Attribute) and node.func.attr in (
                "debug",
                "info",
                "warning",
                "error",
                "exception",
                "log",
            ):
                base = _rightmost(node.func.value)
                if base in ("logging", "logger", "log", "_log", "_logger"):
                    sink = f"{base}.{node.func.attr}"
            if sink is None:
                continue
            if sink == "print" or any(self._is_eager_format(a) for a in node.args):
                self.out.append(
                    _diag(
                        "PERF005",
                        f"eager {sink}(...) in a hot loop in {info.name}():"
                        " formats/writes once per packet even when the sink"
                        " discards it; guard it or log outside the loop",
                        info,
                        node,
                    )
                )

    @staticmethod
    def _is_eager_format(arg: ast.expr) -> bool:
        if isinstance(arg, ast.JoinedStr):
            return True
        if isinstance(arg, ast.BinOp) and isinstance(arg.op, (ast.Mod, ast.Add)):
            return any(
                isinstance(side, ast.Constant) and isinstance(side.value, str)
                for side in (arg.left, arg.right)
            )
        if isinstance(arg, ast.Call) and _rightmost(arg.func) == "format":
            return True
        return False


# ----------------------------------------------------------------------
# DET checkers
# ----------------------------------------------------------------------
class _DetChecker:
    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph
        self.reachable = sim_reachable(graph)
        self.out: list[Diagnostic] = []

    def run(self) -> list[Diagnostic]:
        for q in self.reachable:
            info = self.graph.functions[q]
            for site in self.graph.calls_from(q):
                self._check_rng(info, site)
                self._check_wallclock(info, site)
            self._check_set_iteration(info)
            self._check_identity_keys(info)
        return self.out

    # -- DET001 ---------------------------------------------------------
    def _check_rng(self, info: FunctionInfo, site: CallSite) -> None:
        repr_ = site.func_repr
        msg: Optional[str] = None
        if repr_.startswith("random.") and site.method in _GLOBAL_RANDOM_FNS:
            msg = f"{repr_}() draws from the process-global RNG"
        elif site.method == "Random" and repr_.split(".")[0] in ("random",) and not (
            site.node.args or site.node.keywords
        ):
            msg = "random.Random() constructed without a seed"
        elif site.method == "default_rng" and not (site.node.args or site.node.keywords):
            msg = f"{repr_}() creates an unseeded numpy Generator"
        elif (
            ".random." in f".{repr_}"
            and repr_.split(".")[0] in ("np", "numpy")
            and site.method in _NP_GLOBAL_FNS
        ):
            msg = f"{repr_}() draws from numpy's process-global RNG"
        if msg is not None:
            self.out.append(
                _diag(
                    "DET001",
                    f"{msg} on a simulation path ({info.name}()): seeded"
                    " replay will not be byte-identical; thread a seeded"
                    " Generator/Random through instead",
                    info,
                    site.node,
                )
            )

    # -- DET002 ---------------------------------------------------------
    def _check_wallclock(self, info: FunctionInfo, site: CallSite) -> None:
        norm = site.path.replace("\\", "/")
        if any(fragment in norm for fragment in DET_WALLCLOCK_EXEMPT_PATHS):
            return
        repr_ = site.func_repr
        hit = (
            repr_.startswith("time.") and site.method in _WALLCLOCK_TIME_FNS
        ) or (
            site.method in _WALLCLOCK_DATE_FNS
            and ("datetime" in repr_ or repr_.startswith("date."))
        )
        if hit:
            self.out.append(
                _diag(
                    "DET002",
                    f"wall-clock read {repr_}() on a simulation path"
                    f" ({info.name}()): replay diverges with host timing;"
                    " use the virtual clock, or register the harness in"
                    " DET_WALLCLOCK_EXEMPT_PATHS with a justification",
                    info,
                    site.node,
                )
            )

    # -- DET003 ---------------------------------------------------------
    def _check_set_iteration(self, info: FunctionInfo) -> None:
        set_locals = self._set_locals(info.node)
        for node in ast.walk(info.node):
            if not isinstance(node, (ast.For, ast.AsyncFor)):
                continue
            if not self._is_set_expr(node.iter, set_locals):
                continue
            sink = self._order_sink_in(node)
            if sink is None:
                continue
            self.out.append(
                _diag(
                    "DET003",
                    f"iteration over a set feeds ordering-sensitive"
                    f" `{sink}` in {info.name}(): set order is"
                    " hash-randomized across runs; iterate sorted(...)",
                    info,
                    node.iter,
                )
            )

    @staticmethod
    def _set_locals(fn: ast.AST) -> set[str]:
        out: set[str] = set()
        for node in ast.walk(fn):
            if not (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
            ):
                continue
            v = node.value
            is_set = isinstance(v, (ast.Set, ast.SetComp)) or (
                isinstance(v, ast.Call)
                and _rightmost(v.func)
                in ("set", "frozenset", "intersection", "union", "difference")
            )
            if is_set:
                out.add(node.targets[0].id)
            elif node.targets[0].id in out:
                out.discard(node.targets[0].id)  # rebound to something else
        return out

    @staticmethod
    def _is_set_expr(expr: ast.expr, set_locals: set[str]) -> bool:
        if isinstance(expr, ast.Name):
            return expr.id in set_locals
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        if isinstance(expr, ast.Call):
            return _rightmost(expr.func) in ("set", "frozenset")
        return False

    @staticmethod
    def _order_sink_in(loop: ast.AST) -> Optional[str]:
        assert isinstance(loop, (ast.For, ast.AsyncFor))
        for stmt in loop.body:
            for node in ast.walk(stmt):
                if isinstance(node, (ast.Yield, ast.YieldFrom)):
                    return "yield"
                if isinstance(node, ast.Call):
                    name = _rightmost(node.func)
                    if name in _ORDER_SENSITIVE_METHODS:
                        return name
        return None

    # -- DET004 ---------------------------------------------------------
    def _check_identity_keys(self, info: FunctionInfo) -> None:
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            name = _rightmost(node.func)
            suspect: Optional[ast.expr] = None
            if name in ("sorted", "min", "max", "sort"):
                for kw in node.keywords:
                    if kw.arg == "key":
                        suspect = kw.value
            elif name == "heappush" and len(node.args) >= 2:
                suspect = node.args[1]
            if suspect is None:
                continue
            ident = self._identity_call_in(suspect)
            if ident is None:
                continue
            self.out.append(
                _diag(
                    "DET004",
                    f"{ident}() used in an ordering key passed to {name} in"
                    f" {info.name}(): object identity/hash varies across"
                    " runs; key on a stable field (seq, id string) instead",
                    info,
                    node,
                )
            )

    @staticmethod
    def _identity_call_in(expr: ast.expr) -> Optional[str]:
        for node in ast.walk(expr):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in ("id", "hash")
            ):
                return node.func.id
        return None


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------
def _apply_suppressions(
    graph: CallGraph, diags: list[Diagnostic], ignore: Iterable[str]
) -> list[Diagnostic]:
    suppressions = {
        path: parse_suppressions(source) for path, source in graph.sources.items()
    }
    out: list[Diagnostic] = []
    for d in diags:
        sup = suppressions.get(d.file or "")
        out.extend(filter_diagnostics([d], ignore=ignore, suppressions=sup))
    return out


def perf_diagnostics(
    graph: CallGraph, *, ignore: Iterable[str] = ()
) -> list[Diagnostic]:
    """All PERF findings over an already-built call graph."""
    return _apply_suppressions(graph, _PerfChecker(graph).run(), ignore)


def det_diagnostics(
    graph: CallGraph, *, ignore: Iterable[str] = ()
) -> list[Diagnostic]:
    """All DET findings over an already-built call graph."""
    return _apply_suppressions(graph, _DetChecker(graph).run(), ignore)


def hotpath_diagnostics(
    graph: CallGraph,
    *,
    ignore: Iterable[str] = (),
    include_perf: bool = True,
    include_det: bool = True,
) -> list[Diagnostic]:
    """PERF + DET findings over an already-built call graph."""
    diags: list[Diagnostic] = []
    if include_perf:
        diags.extend(perf_diagnostics(graph, ignore=ignore))
    if include_det:
        diags.extend(det_diagnostics(graph, ignore=ignore))
    return diags


def analyze_hotpath(
    paths: Iterable[str], *, ignore: Iterable[str] = ()
) -> list[Diagnostic]:
    """Build the call graph over ``paths`` and run both families."""
    graph = build_call_graph(paths)
    return hotpath_diagnostics(graph, ignore=ignore)
