"""Incremental analysis cache keyed by file content hash.

Whole-repo analyzer runs repeat a lot of work: the per-file passes
(repo-lint, WIRE) re-parse every file even when nothing changed, and the
graph passes re-derive findings from an identical tree.  This cache
persists each pass's diagnostics keyed by a SHA-256 digest of the
analyzed file's bytes (per-file passes) or of the whole file set
(graph passes), so a warm run re-analyzes only what changed.

Correctness properties:

* The cache file carries a **salt** covering the schema version, the
  rule registry (codes, severities, and message templates), and the
  active ``ignore`` set.  Any rule change, new analyzer, or different
  ignore configuration makes every prior entry unreadable — a stale
  cache can never mask a finding a fresh run would produce.
* A corrupt, unreadable, or wrong-salt cache file degrades to an empty
  cache, never to an error.
* Entries round-trip :class:`~repro.analysis.diagnostics.Diagnostic`
  losslessly (``to_dict`` / ``Severity.parse``), so cached output is
  byte-identical to a cold run's.

The CLI persists the cache next to the analysis baseline
(``--cache [FILE]``, default ``analysis-cache.json``).
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Iterable, Optional

from .diagnostics import RULES, Diagnostic, Severity

__all__ = ["AnalysisCache", "DEFAULT_CACHE_NAME"]

DEFAULT_CACHE_NAME = "analysis-cache.json"

_SCHEMA = 1


def _salt(ignore: Iterable[str]) -> str:
    h = hashlib.sha256()
    h.update(f"schema:{_SCHEMA}".encode())
    for code in sorted(RULES):
        sev, msg = RULES[code]
        h.update(f"{code}:{int(sev)}:{msg}".encode())
    for code in sorted({c.strip().upper() for c in ignore}):
        h.update(f"ignore:{code}".encode())
    return h.hexdigest()


def _dump_diag(d: Diagnostic) -> dict:
    return d.to_dict()


def _load_diag(entry: dict) -> Diagnostic:
    return Diagnostic(
        code=str(entry["code"]),
        severity=Severity.parse(str(entry["severity"])),
        message=str(entry["message"]),
        subject=str(entry.get("subject", "")),
        file=entry.get("file"),
        line=entry.get("line"),
        column=entry.get("column"),
    )


class AnalysisCache:
    """Per-file and per-tree diagnostic memo, persisted as JSON."""

    def __init__(self, path: Optional[str], salt: str) -> None:
        self.path = path
        self.salt = salt
        #: {family: {file_path: {"digest": str, "diagnostics": [dict]}}}
        self._files: dict[str, dict[str, dict]] = {}
        #: {family-qualified tree key: [dict]}
        self._graphs: dict[str, list[dict]] = {}
        self.hits = 0
        self.misses = 0
        self._digests: dict[str, str] = {}

    # ------------------------------------------------------------------
    @classmethod
    def open(cls, path: Optional[str], *, ignore: Iterable[str] = ()) -> "AnalysisCache":
        """Load the cache at ``path`` (None = in-memory only).

        A missing, corrupt, or differently-salted file yields an empty
        cache.
        """
        cache = cls(path, _salt(ignore))
        if path is None or not os.path.exists(path):
            return cache
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, ValueError):
            return cache
        if not isinstance(payload, dict) or payload.get("salt") != cache.salt:
            return cache
        files = payload.get("files", {})
        graphs = payload.get("graphs", {})
        if isinstance(files, dict):
            cache._files = files
        if isinstance(graphs, dict):
            cache._graphs = graphs
        return cache

    def save(self) -> None:
        """Persist atomically (write-then-replace); no-op when in-memory."""
        if self.path is None:
            return
        payload = {"salt": self.salt, "files": self._files, "graphs": self._graphs}
        tmp = f"{self.path}.tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, self.path)

    # ------------------------------------------------------------------
    def digest(self, path: str) -> str:
        """SHA-256 of the file's bytes (memoized for this run)."""
        got = self._digests.get(path)
        if got is None:
            with open(path, "rb") as fh:
                got = hashlib.sha256(fh.read()).hexdigest()
            self._digests[path] = got
        return got

    def tree_key(self, files: Iterable[str]) -> str:
        """One digest over a whole file set — the graph-pass cache key."""
        h = hashlib.sha256()
        for path in files:
            h.update(path.encode("utf-8", "surrogateescape"))
            h.update(self.digest(path).encode())
        return h.hexdigest()

    # ------------------------------------------------------------------
    def get(self, family: str, path: str, digest: str) -> Optional[list[Diagnostic]]:
        entry = self._files.get(family, {}).get(path)
        if entry is None or entry.get("digest") != digest:
            self.misses += 1
            return None
        try:
            out = [_load_diag(e) for e in entry["diagnostics"]]
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return out

    def put(
        self, family: str, path: str, digest: str, diagnostics: Iterable[Diagnostic]
    ) -> None:
        self._files.setdefault(family, {})[path] = {
            "digest": digest,
            "diagnostics": [_dump_diag(d) for d in diagnostics],
        }

    def get_graph(self, key: str) -> Optional[list[Diagnostic]]:
        entry = self._graphs.get(key)
        if entry is None:
            self.misses += 1
            return None
        try:
            out = [_load_diag(e) for e in entry]
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return out

    def put_graph(self, key: str, diagnostics: Iterable[Diagnostic]) -> None:
        self._graphs[key] = [_dump_diag(d) for d in diagnostics]
