"""Interval/set abstract domain over selector attribute values.

A profile attribute lives in one of five *sorts*: missing, boolean,
number, string, or list.  Every atomic selector predicate is true only
inside a describable region of that space (``x < 5`` — numbers below 5;
``x contains 'jpeg'`` — lists containing ``'jpeg'``; ``exists(x)`` —
anything but missing), and its negation is the complement.  The analyzer
therefore represents the set of values an attribute may take inside one
DNF clause as an :class:`AttrDomain`: a union of per-sort constraints —

* ``missing`` — whether absence is still allowed;
* ``bools`` — the allowed subset of ``{True, False}``;
* ``num`` / ``strs`` — a :class:`Band`: either a finite pin-set or an
  interval with open/closed bounds, minus a finite exclusion set;
* ``lst`` — must-contain / must-not-contain element sets.

Soundness contract: :meth:`AttrDomain.is_empty` returning ``True`` is a
*proof* of emptiness (used for UNSAT verdicts); :meth:`AttrDomain.sample`
is best-effort (samples are re-verified against the original selector
before a SAT verdict is claimed, so an unlucky sample degrades the
verdict to UNKNOWN, never to a wrong answer).  For numbers over the
reals the emptiness test is also complete; for strings it is not (e.g.
the open interval ``('a', 'a\\x00')`` is empty but not provably so here).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Union

from ..core.attributes import MISSING

__all__ = ["Band", "ListBand", "AttrDomain", "NUM", "STR"]

NUM = "num"
STR = "str"

_Scalar = Union[int, float, str]


@dataclass(frozen=True)
class Band:
    """One ordered sort's allowed region: pin-set *or* interval − exclusions.

    ``pinned`` non-``None`` means the region is exactly that finite set
    (interval fields are then ignored).  Bounds of ``None`` are
    unbounded.  ``kind`` is :data:`NUM` or :data:`STR` and fixes which
    literals the band accepts.
    """

    kind: str
    pinned: Optional[frozenset] = None
    lo: Optional[_Scalar] = None
    lo_strict: bool = False
    hi: Optional[_Scalar] = None
    hi_strict: bool = False
    excluded: frozenset = frozenset()
    dead: bool = False

    # -- membership (exact) --------------------------------------------
    def contains(self, v: _Scalar) -> bool:
        if self.dead:
            return False
        if self.pinned is not None:
            return v in self.pinned
        if v in self.excluded:
            return False
        if self.lo is not None and (v < self.lo or (v == self.lo and self.lo_strict)):
            return False
        if self.hi is not None and (v > self.hi or (v == self.hi and self.hi_strict)):
            return False
        return True

    # -- constraint application ----------------------------------------
    def kill(self) -> "Band":
        return replace(self, dead=True)

    def pin(self, values: frozenset) -> "Band":
        """Intersect with a finite value set."""
        if self.dead:
            return self
        kept = frozenset(v for v in values if self.contains(v))
        return Band(self.kind, pinned=kept, dead=not kept)

    def exclude(self, v: _Scalar) -> "Band":
        if self.dead:
            return self
        if self.pinned is not None:
            kept = self.pinned - {v}
            return replace(self, pinned=kept, dead=not kept)
        return replace(self, excluded=self.excluded | {v})

    def restrict(self, op: str, bound: _Scalar) -> "Band":
        """Intersect with ``{value : value <op> bound}``."""
        if self.dead:
            return self
        if self.pinned is not None:
            kept = frozenset(v for v in self.pinned if _cmp(v, op, bound))
            return replace(self, pinned=kept, dead=not kept)
        lo, lo_s, hi, hi_s = self.lo, self.lo_strict, self.hi, self.hi_strict
        if op in ("<", "<="):
            strict = op == "<"
            if hi is None or bound < hi or (bound == hi and strict and not hi_s):
                hi, hi_s = bound, strict
            elif bound == hi:
                hi_s = hi_s or strict
        elif op in (">", ">="):
            strict = op == ">"
            if lo is None or bound > lo or (bound == lo and strict and not lo_s):
                lo, lo_s = bound, strict
            elif bound == lo:
                lo_s = lo_s or strict
        else:  # pragma: no cover - callers pass ordered ops only
            raise ValueError(f"not an ordered op: {op!r}")
        out = replace(self, lo=lo, lo_strict=lo_s, hi=hi, hi_strict=hi_s)
        return replace(out, dead=out.provably_empty())

    # -- emptiness (sound; complete for numbers) ------------------------
    def provably_empty(self) -> bool:
        if self.dead:
            return True
        if self.pinned is not None:
            return not self.pinned
        if self.lo is not None and self.hi is not None:
            if self.lo > self.hi:
                return True
            if self.lo == self.hi:
                if self.lo_strict or self.hi_strict:
                    return True
                return self.lo in self.excluded
        return False

    # -- witness extraction (best-effort) --------------------------------
    def sample(self) -> Optional[_Scalar]:
        if self.provably_empty():
            return None
        if self.pinned is not None:
            return min(self.pinned, key=repr) if self.kind == STR else min(self.pinned)
        candidates: list[_Scalar] = []
        if self.lo is not None and not self.lo_strict:
            candidates.append(self.lo)
        if self.hi is not None and not self.hi_strict:
            candidates.append(self.hi)
        if self.kind == NUM:
            candidates.extend(self._num_interior())
        else:
            candidates.extend(self._str_interior())
        for c in candidates:
            if self.contains(c):
                return c
        return None

    def _num_interior(self) -> list[float]:
        lo = self.lo if self.lo is not None else None
        hi = self.hi if self.hi is not None else None
        if lo is None and hi is None:
            base, span = 0.0, 1.0
        elif lo is None:
            base, span = float(hi) - 1.0, 1.0  # type: ignore[arg-type]
        elif hi is None:
            base, span = float(lo) + 1.0, 1.0
        else:
            base, span = (float(lo) + float(hi)) / 2.0, (float(hi) - float(lo)) / 4.0 or 0.5
        out = [base]
        # dodge the finite exclusion set by walking irrational-ish steps
        step = span / 7.919
        for k in range(1, len(self.excluded) + 3):
            out.append(base + k * step)
            out.append(base - k * step)
        return out

    def _str_interior(self) -> list[str]:
        lo = self.lo if isinstance(self.lo, str) else ""
        out = [lo + "m", lo + "m0", lo + "\x01", lo + "~"]
        if isinstance(self.hi, str) and self.hi:
            out.append(self.hi[: max(len(self.hi) - 1, 0)])
        for k in range(len(self.excluded) + 2):
            out.append(lo + "m" * (k + 2))
        return out


@dataclass(frozen=True)
class ListBand:
    """Allowed list values: element must/must-not constraints."""

    alive: bool = True
    must_contain: frozenset = frozenset()
    must_not_contain: frozenset = frozenset()

    def require(self, v: _Scalar) -> "ListBand":
        if v in self.must_not_contain:
            return replace(self, alive=False)
        return replace(self, must_contain=self.must_contain | {v})

    def forbid(self, v: _Scalar) -> "ListBand":
        if v in self.must_contain:
            return replace(self, alive=False)
        return replace(self, must_not_contain=self.must_not_contain | {v})

    def kill(self) -> "ListBand":
        return replace(self, alive=False)

    def provably_empty(self) -> bool:
        return not self.alive or bool(self.must_contain & self.must_not_contain)

    def sample(self) -> Optional[list]:
        if self.provably_empty():
            return None
        return sorted(self.must_contain, key=repr)


def _cmp(a: _Scalar, op: str, b: _Scalar) -> bool:
    if op == "<":
        return a < b
    if op == "<=":
        return a <= b
    if op == ">":
        return a > b
    return a >= b


@dataclass(frozen=True)
class AttrDomain:
    """Everything one attribute may still be inside one DNF clause."""

    missing: bool = True
    bools: frozenset = frozenset({True, False})
    num: Band = field(default_factory=lambda: Band(NUM))
    strs: Band = field(default_factory=lambda: Band(STR))
    lst: ListBand = field(default_factory=ListBand)

    # -- sort-level surgery ----------------------------------------------
    def only(self, sort: str) -> "AttrDomain":
        """Keep just ``sort`` (kills missing too): used by positive atoms
        whose truth region lives in a single sort."""
        return AttrDomain(
            missing=False,
            bools=self.bools if sort == "bool" else frozenset(),
            num=self.num if sort == NUM else self.num.kill(),
            strs=self.strs if sort == STR else self.strs.kill(),
            lst=self.lst if sort == "list" else self.lst.kill(),
        )

    def without_missing(self) -> "AttrDomain":
        return replace(self, missing=False)

    def only_missing(self) -> "AttrDomain":
        return AttrDomain(
            missing=self.missing,
            bools=frozenset(),
            num=self.num.kill(),
            strs=self.strs.kill(),
            lst=self.lst.kill(),
        )

    # -- verdict helpers --------------------------------------------------
    def is_empty(self) -> bool:
        """Sound emptiness proof (see module docstring)."""
        return (
            not self.missing
            and not self.bools
            and self.num.provably_empty()
            and self.strs.provably_empty()
            and self.lst.provably_empty()
        )

    def sample(self) -> object:
        """A member of the region: a scalar/list value, or
        :data:`~repro.core.attributes.MISSING` to omit the attribute, or
        ``None`` when construction failed (caller degrades to UNKNOWN)."""
        if self.missing:
            return MISSING
        if self.num.pinned is not None and self.num.pinned:
            return self.num.sample()
        if self.strs.pinned is not None and self.strs.pinned:
            return self.strs.sample()
        if not self.num.provably_empty():
            v = self.num.sample()
            if v is not None:
                return v
        if not self.strs.provably_empty():
            v = self.strs.sample()
            if v is not None:
                return v
        if self.bools:
            return True in self.bools
        if not self.lst.provably_empty():
            return self.lst.sample()
        return None
