"""The structured diagnostic model shared by every analyzer pass.

Every check in :mod:`repro.analysis` reports through one shape — a
:class:`Diagnostic` with a *stable rule code*, a severity, a
human-readable message, and (when known) a source location — so the CLI,
the CI gate, and the runtime hooks all consume the same stream.

Rule codes are stable identifiers (``SEL001``, ``POL003``, ``LNT002``,
...): tools may filter on them, and inline suppressions name them.

Suppression
-----------
Two mechanisms, matching the two ways configs reach the analyzer:

* **Inline comments** for anything found in a source file::

      TRUE_SELECTOR = Selector("true")  # repro: ignore[SEL002]

  ``# repro: ignore[CODE,CODE2]`` suppresses those rule codes on that
  line; ``# repro: ignore`` (no bracket) suppresses every rule there.

* **Programmatic ignore sets** for in-memory configs: every analyzer
  entry point accepts ``ignore={"SEL002", ...}`` and the CLI exposes
  ``--ignore CODE``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, replace
from enum import IntEnum
from typing import Iterable, Mapping, Optional

__all__ = [
    "Severity",
    "Diagnostic",
    "DiagnosticWarning",
    "RULES",
    "rule_severity",
    "filter_diagnostics",
    "parse_suppressions",
    "max_severity",
]


class Severity(IntEnum):
    """Ordered severity; comparisons follow the integer order."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @classmethod
    def parse(cls, text: str) -> "Severity":
        try:
            return cls[text.strip().upper()]
        except KeyError:
            raise ValueError(f"unknown severity {text!r}") from None

    def __str__(self) -> str:
        return self.name.lower()


class DiagnosticWarning(UserWarning):
    """Category used by the runtime hooks (bus attach, policy database)."""


#: Stable rule registry: code -> (default severity, one-line description).
RULES: dict[str, tuple[Severity, str]] = {
    # -- selector analysis ------------------------------------------------
    "SEL001": (Severity.ERROR, "selector is unsatisfiable: it can never match any profile"),
    "SEL002": (Severity.WARNING, "selector is a tautology: it matches every profile (vacuous)"),
    "SEL003": (Severity.WARNING, "attribute used with conflicting types in one conjunction"),
    "SEL004": (Severity.INFO, "selector too complex for exact analysis; verdict unknown"),
    "SEL005": (Severity.INFO, "selector is subsumed by / equivalent to another selector"),
    "SEL006": (Severity.ERROR, "selector literal does not parse"),
    # -- policy & contract lint ------------------------------------------
    "POL001": (Severity.WARNING, "step-policy values are not monotone over the parameter"),
    "POL002": (Severity.WARNING, "step-policy band is redundant (same value as its neighbour)"),
    "POL003": (Severity.ERROR, "packet decision outside the paper's {0,1,2,4,8,16} set"),
    "POL004": (Severity.ERROR, "SIR tier thresholds collapse a tier (gap/overlap)"),
    "POL005": (Severity.ERROR, "QoS contract contradicts the policy database"),
    "POL006": (Severity.INFO, "contract constrains a parameter no policy produces or observes"),
    # -- profile / transform lint ----------------------------------------
    "PRO001": (Severity.WARNING, "transform rules form a cycle"),
    "PRO002": (Severity.WARNING, "transform rule can never help given the interest selector"),
    "PRO003": (Severity.WARNING, "transform rule is a no-op (from == to)"),
    # -- repo lint --------------------------------------------------------
    "LNT001": (Severity.ERROR, "bare `except:` in a dispatch path"),
    "LNT002": (Severity.ERROR, "mutable default argument"),
    "LNT003": (Severity.ERROR, "transport constructed directly instead of injected"),
    # -- dataflow: units ---------------------------------------------------
    "UNI001": (Severity.WARNING, "arithmetic or assignment mixes incompatible physical units"),
    "UNI002": (Severity.WARNING, "dB value passed where linear ratio expected (or vice versa)"),
    "UNI003": (Severity.WARNING, "rate-unit mismatch (bit/s vs kbit/s vs byte/s) without conversion"),
    "UNI004": (Severity.WARNING, "time-unit mismatch (s vs ms vs µs) without conversion"),
    "UNI005": (Severity.WARNING, "data-unit mismatch (bytes vs bits vs packets) without conversion"),
    # -- dataflow: exception flow -----------------------------------------
    "EXC001": (Severity.WARNING, "codec/wire error can escape a delivery callback across a dispatch boundary"),
    "EXC002": (Severity.WARNING, "scheduler callback can raise, aborting the event loop mid-run"),
    "EXC003": (Severity.WARNING, "handler silently swallows failures on a dispatch path"),
    # -- dataflow: resource lifecycle -------------------------------------
    "RES001": (Severity.WARNING, "socket/transport leaks: never closed, or not closed on every path"),
    "RES002": (Severity.WARNING, "double close of a socket/transport on one path"),
    "RES003": (Severity.ERROR, "socket/transport used after close on one path"),
    # -- typestate: protocol automata -------------------------------------
    "TSP001": (Severity.ERROR, "lock released without a matching acquire on this path"),
    "TSP002": (Severity.WARNING, "lock acquired twice by the same holder without a release between"),
    "TSP003": (Severity.ERROR, "LeaveEvent handled without revoking the departed client's locks"),
    "TSP004": (Severity.WARNING, "RTP fragments emitted out of frag_index order"),
    "TSP005": (Severity.ERROR, "RTP reassembly consumed before frag_count fragments arrived"),
    "TSP006": (Severity.ERROR, "SNMP request issued on a closed manager session"),
    "TSP007": (Severity.ERROR, "publish/callback registration on a detached subscription"),
    # -- concurrency: callback-context discipline -------------------------
    "CON001": (Severity.WARNING, "shared Arbiter/LockManager/bus state mutated from a delivery callback"),
    "CON002": (Severity.WARNING, "SemanticBus.publish() called synchronously from a delivery callback"),
    "CON003": (Severity.WARNING, "shared container mutated by callbacks from multiple thread roots"),
    # -- concurrency: lock order & shared-state races ---------------------
    "DLK001": (Severity.ERROR, "lock-order cycle in the whole-program acquisition graph (potential deadlock)"),
    "DLK002": (Severity.WARNING, "lock acquired while holding a different backend's lock (cross-boundary nesting; one callback re-entry away from a cycle)"),
    "DLK003": (Severity.WARNING, "field is lock-protected on some paths but written without the lock on another"),
    "RACE001": (Severity.ERROR, "field written from multiple thread roots with at least one unguarded write"),
    "RACE002": (Severity.WARNING, "unsynchronized lazy initialisation reachable without a lock (two threads can both construct)"),
    "RACE003": (Severity.WARNING, "non-atomic check-then-act on a shared container reachable without a lock"),
    # -- hot-path cost (interprocedural loop-cost propagation) ------------
    "PERF001": (Severity.WARNING, "population-sized scan or copy on a per-packet hot path (O(subscribers) work per message)"),
    "PERF002": (Severity.WARNING, "per-packet container construction in a nested hot loop (allocation churn per candidate per message)"),
    "PERF003": (Severity.WARNING, "repeated immutable-bytes concatenation in a hot loop (quadratic; use bytearray or join)"),
    "PERF004": (Severity.WARNING, "loop-invariant pure call or uncached selector re-parse on a hot path (hoist or route through the parse cache)"),
    "PERF005": (Severity.WARNING, "eager string formatting / print / logging in a hot loop (formats even when the sink discards it)"),
    # -- replay determinism -----------------------------------------------
    "DET001": (Severity.ERROR, "unseeded or process-global RNG reachable from simulation paths (breaks byte-identical seeded replay)"),
    "DET002": (Severity.WARNING, "wall-clock read reachable from simulation paths (use the virtual clock; harness timing needs an exemption-registry entry)"),
    "DET003": (Severity.WARNING, "unstable-order set iteration flows into an ordering-sensitive sink (sort before iterating)"),
    "DET004": (Severity.ERROR, "id()/object-hash() used in an ordering key (identity varies across runs)"),
    # -- wire-format symmetry & decode safety ------------------------------
    "WIRE001": (Severity.ERROR, "encoder and decoder disagree on field order, width, or endianness"),
    "WIRE002": (Severity.ERROR, "decoder reads past len(data) on truncated input without a bounds guard"),
    "WIRE003": (Severity.ERROR, "length-prefix field disagrees with the loop that produces or consumes it"),
    "WIRE004": (Severity.WARNING, "magic-prefix message discrimination can collide with a peer codec's leading field"),
    "WIRE005": (Severity.WARNING, "non-canonical encoding: unordered container iterated into wire bytes"),
}


def rule_severity(code: str, *, in_hot_scope: bool = True) -> Severity:
    """Default severity for ``code``; lint rules demote to WARNING
    outside their hot scope (e.g. bare except outside dispatch paths)."""
    sev, _ = RULES[code]
    if not in_hot_scope and sev is Severity.ERROR and code.startswith("LNT"):
        return Severity.WARNING
    return sev


@dataclass(frozen=True)
class Diagnostic:
    """One finding from any analyzer pass.

    ``subject`` names the analyzed object (a selector text, a policy
    name, a file-relative symbol); ``file``/``line``/``column`` locate it
    when the finding came from a source file (1-based line/column).
    """

    code: str
    severity: Severity
    message: str
    subject: str = ""
    file: Optional[str] = None
    line: Optional[int] = None
    column: Optional[int] = None

    def format(self) -> str:
        loc = ""
        if self.file is not None:
            loc = self.file
            if self.line is not None:
                loc += f":{self.line}"
                if self.column is not None:
                    loc += f":{self.column}"
            loc += ": "
        subj = f" [{self.subject}]" if self.subject else ""
        return f"{loc}{self.severity}: {self.code}: {self.message}{subj}"

    def at(self, file: Optional[str], line: Optional[int], column: Optional[int] = None) -> "Diagnostic":
        """Copy with a source location attached."""
        return replace(self, file=file, line=line, column=column)

    def to_dict(self) -> dict[str, object]:
        return {
            "code": self.code,
            "severity": str(self.severity),
            "message": self.message,
            "subject": self.subject,
            "file": self.file,
            "line": self.line,
            "column": self.column,
        }


_SUPPRESS_RE = re.compile(r"#\s*repro:\s*ignore(?:\[(?P<codes>[A-Za-z0-9_,\s]*)\])?")


def parse_suppressions(source: str) -> Mapping[int, frozenset[str]]:
    """Per-line inline suppressions in ``source``.

    Returns ``{line_number: codes}`` (1-based); an empty frozenset means
    *every* rule is suppressed on that line.
    """
    out: dict[int, frozenset[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        m = _SUPPRESS_RE.search(line)
        if m is None:
            continue
        codes = m.group("codes")
        if codes is None:
            out[lineno] = frozenset()
        else:
            out[lineno] = frozenset(c.strip().upper() for c in codes.split(",") if c.strip())
    return out


def filter_diagnostics(
    diagnostics: Iterable[Diagnostic],
    *,
    ignore: Iterable[str] = (),
    suppressions: Optional[Mapping[int, frozenset[str]]] = None,
) -> list[Diagnostic]:
    """Drop diagnostics named by ``ignore`` or an inline suppression.

    ``suppressions`` maps line numbers of the *analyzed file* to code
    sets (see :func:`parse_suppressions`).
    """
    ignored = {c.strip().upper() for c in ignore}
    out: list[Diagnostic] = []
    for d in diagnostics:
        if d.code.upper() in ignored:
            continue
        if suppressions is not None and d.line is not None:
            codes = suppressions.get(d.line)
            if codes is not None and (not codes or d.code.upper() in codes):
                continue
        out.append(d)
    return out


def max_severity(diagnostics: Iterable[Diagnostic]) -> Optional[Severity]:
    """Highest severity present, or ``None`` for an empty stream."""
    worst: Optional[Severity] = None
    for d in diagnostics:
        if worst is None or d.severity > worst:
            worst = d.severity
    return worst
