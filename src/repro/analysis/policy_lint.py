"""Lint for the policy database, QoS contracts, and profile transforms.

These checks run over *live config objects* (not source text), so the
same pass backs three surfaces: the ``repro.analysis`` CLI, the optional
:class:`~repro.core.policies.PolicyDatabase` validation hook, and the
:class:`~repro.messaging.broker.SemanticBus` attach hook.

Rules
-----
* ``POL001`` — a :class:`StepPolicy`'s value sequence (breakpoints then
  floor) is not monotone: adaptation would oscillate as the parameter
  degrades monotonically.
* ``POL002`` — adjacent bands carry the same value: the threshold
  between them can never change the decision (unreachable threshold).
* ``POL003`` — a packet-output value outside the paper's
  ``{0, 1, 2, 4, 8, 16}`` step set: the inference engine would snap it
  anyway, silently changing the configured behaviour.
* ``POL004`` — SIR tier thresholds that collapse a tier (equal adjacent
  thresholds leave a modality unreachable — an overlap/gap in tiers).
* ``POL005`` — a QoS contract whose ``packets`` range excludes every
  value any policy (or the full budget) can produce: permanently
  violated.
* ``POL006`` — a contract constraint on a parameter that no policy
  outputs and no policy observes (likely a typo).
* ``PRO001``–``PRO003`` — transform-rule cycles, rules that can never
  help given the interest selector, and no-op rules.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..core.contracts import QoSContract
from ..core.policies import PolicyDatabase, SirTierPolicy, StepPolicy
from ..core.profiles import ClientProfile, TransformRule
from ..core.selectors import Selector, _And, _Attr, _Compare, _Literal
from .diagnostics import Diagnostic, rule_severity
from .selector_analysis import MAX_CLAUSES, Verdict, _verdict_of_ast

__all__ = [
    "PACKET_STEPS",
    "lint_step_policy",
    "lint_sir_policy",
    "lint_contract_against",
    "lint_policy_database",
    "lint_transforms",
    "lint_profile",
]

#: the paper's admissible packet budgets (powers of two, plus "gated off")
PACKET_STEPS = frozenset({0, 1, 2, 4, 8, 16})


def _diag(code: str, message: str, subject: str) -> Diagnostic:
    return Diagnostic(code, rule_severity(code), message, subject=subject)


# ----------------------------------------------------------------------
# step policies
# ----------------------------------------------------------------------
def lint_step_policy(policy: StepPolicy, name: str = "") -> list[Diagnostic]:
    subject = name or f"StepPolicy({policy.parameter}->{policy.output})"
    out: list[Diagnostic] = []
    values = [v for _, v in policy.breakpoints] + [policy.floor]

    non_increasing = all(a >= b for a, b in zip(values, values[1:]))
    non_decreasing = all(a <= b for a, b in zip(values, values[1:]))
    if not (non_increasing or non_decreasing):
        out.append(
            _diag(
                "POL001",
                f"values {values} are not monotone over {policy.parameter!r}:"
                " the decision would oscillate as the parameter degrades",
                subject,
            )
        )

    bounds = [b for b, _ in policy.breakpoints]
    for i, (a, b) in enumerate(zip(values, values[1:])):
        if a == b:
            threshold = bounds[i] if i < len(bounds) else bounds[-1]
            out.append(
                _diag(
                    "POL002",
                    f"threshold {threshold} is unreachable: the bands on both"
                    f" sides decide the same value {a}",
                    subject,
                )
            )

    if policy.output == "packets":
        bad = sorted({v for v in values if v not in PACKET_STEPS})
        if bad:
            out.append(
                _diag(
                    "POL003",
                    f"packet decisions {bad} are outside the paper's"
                    " {0, 1, 2, 4, 8, 16} step set; the inference engine"
                    " would silently snap them",
                    subject,
                )
            )
    return out


# ----------------------------------------------------------------------
# SIR tiers
# ----------------------------------------------------------------------
def lint_sir_policy(policy: SirTierPolicy, name: str = "sir") -> list[Diagnostic]:
    out: list[Diagnostic] = []
    if policy.sketch_db == policy.image_db:
        out.append(
            _diag(
                "POL004",
                f"sketch threshold equals image threshold ({policy.image_db} dB):"
                " the TEXT_AND_SKETCH tier is unreachable",
                name,
            )
        )
    if policy.text_db == policy.sketch_db:
        out.append(
            _diag(
                "POL004",
                f"text threshold equals sketch threshold ({policy.sketch_db} dB):"
                " the TEXT_ONLY tier is unreachable",
                name,
            )
        )
    return out


# ----------------------------------------------------------------------
# contracts × policies
# ----------------------------------------------------------------------
def lint_contract_against(
    contract: QoSContract,
    policies: PolicyDatabase,
    *,
    max_packets: int = 16,
) -> list[Diagnostic]:
    """Cross-check one contract against the policy database."""
    out: list[Diagnostic] = []
    step = policies.step_policies
    outputs: dict[str, set[float]] = {}
    observed_params: set[str] = set()
    for p in step.values():
        observed_params.add(p.parameter)
        vals = outputs.setdefault(p.output, set())
        vals.update(v for _, v in p.breakpoints)
        vals.add(p.floor)
    # with no applicable policy the engine grants the full budget
    outputs.setdefault("packets", set()).add(float(max_packets))

    for param in contract.parameters:
        c = contract.constraint(param)
        assert c is not None
        if param in outputs:
            achievable = sorted(outputs[param])
            if not any(c.satisfied(v) for v in achievable):
                lo = c.minimum if c.minimum is not None else "-inf"
                hi = c.maximum if c.maximum is not None else "inf"
                out.append(
                    _diag(
                        "POL005",
                        f"contract range [{lo}, {hi}] on {param!r} excludes every"
                        f" decision the policies can produce ({achievable}):"
                        " the contract is permanently violated",
                        contract.name,
                    )
                )
        elif param not in observed_params:
            out.append(
                _diag(
                    "POL006",
                    f"constraint on {param!r}: no policy outputs it and no"
                    " policy observes it (possible typo)",
                    contract.name,
                )
            )
    return out


# ----------------------------------------------------------------------
# whole database
# ----------------------------------------------------------------------
def lint_policy_database(
    policies: PolicyDatabase,
    *,
    contracts: Iterable[QoSContract] = (),
    max_packets: int = 16,
) -> list[Diagnostic]:
    """All policy/contract diagnostics for one database."""
    out: list[Diagnostic] = []
    for name, policy in sorted(policies.step_policies.items()):
        out.extend(lint_step_policy(policy, name))
    out.extend(lint_sir_policy(policies.sir_policy))
    for contract in contracts:
        out.extend(lint_contract_against(contract, policies, max_packets=max_packets))
    return out


# ----------------------------------------------------------------------
# profile transforms
# ----------------------------------------------------------------------
def _interest_admits(interest: Selector, attribute: str, value: object) -> Optional[bool]:
    """Can the interest accept headers carrying ``attribute == value``?"""
    if isinstance(value, (list, tuple)):
        return None  # equality atoms over lists are outside the fragment
    probe = _And((interest._ast, _Compare("==", _Attr(attribute), _Literal(value))))
    verdict, _, _, _ = _verdict_of_ast(probe, MAX_CLAUSES)
    if verdict is Verdict.SAT:
        return True
    if verdict is Verdict.UNSAT:
        return False
    return None


def lint_transforms(
    interest: Selector, transforms: Iterable[TransformRule], *, subject: str = ""
) -> list[Diagnostic]:
    """PRO001/002/003 over one client's transform rules."""
    rules = list(transforms)
    out: list[Diagnostic] = []

    for rule in rules:
        if rule.attribute and rule.from_value == rule.to_value:
            out.append(
                _diag(
                    "PRO003",
                    f"rule {rule} rewrites {rule.attribute!r} to its own value"
                    " (no-op)",
                    subject or str(rule),
                )
            )

    # cycles: edges (attr, from) -> (attr, to)
    edges: dict[tuple[str, object], set[tuple[str, object]]] = {}
    for rule in rules:
        src = (rule.attribute, rule.from_value)
        dst = (rule.attribute, rule.to_value)
        if src != dst:
            edges.setdefault(src, set()).add(dst)
    state: dict[tuple[str, object], int] = {}  # 1 = on stack, 2 = done

    def dfs(node: tuple[str, object], path: list[tuple[str, object]]) -> None:
        state[node] = 1
        path.append(node)
        for nxt in sorted(edges.get(node, ()), key=repr):
            if state.get(nxt) == 1:
                cycle = path[path.index(nxt):] + [nxt]
                desc = " -> ".join(f"{a}={v!r}" for a, v in cycle)
                note = _diag(
                    "PRO001",
                    f"transform rules form a cycle: {desc}; chained transforms"
                    " can churn without converging",
                    subject or desc,
                )
                if all(d.message != note.message for d in out):
                    out.append(note)
            elif state.get(nxt) is None:
                dfs(nxt, path)
        path.pop()
        state[node] = 2

    for node in sorted(edges, key=repr):
        if state.get(node) is None:
            dfs(node, [])

    # dead rules: output neither acceptable to the interest nor consumed
    # by another rule on the same attribute
    consumed = {(r.attribute, r.from_value) for r in rules}
    for rule in rules:
        if rule.from_value == rule.to_value:
            continue  # already PRO003
        admits = _interest_admits(interest, rule.attribute, rule.to_value)
        feeds_chain = (rule.attribute, rule.to_value) in consumed
        if admits is False and not feeds_chain:
            out.append(
                _diag(
                    "PRO002",
                    f"rule {rule} can never help: the interest selector rejects"
                    f" {rule.attribute} == {rule.to_value!r} and no other rule"
                    " consumes it",
                    subject or str(rule),
                )
            )
    return out


def lint_profile(profile: ClientProfile) -> list[Diagnostic]:
    """Interest-selector analysis + transform lint for one profile.

    This is what the :class:`~repro.messaging.broker.SemanticBus` attach
    hook runs.
    """
    from ..core.selectors import TRUE_SELECTOR
    from .selector_analysis import selector_diagnostics

    subject = f"profile {profile.client_id!r}"
    out = selector_diagnostics(profile.interest, subject=subject)
    if profile.interest == TRUE_SELECTOR:
        # accept-everything is the documented default, not vacuity
        out = [d for d in out if d.code != "SEL002"]
    out.extend(lint_transforms(profile.interest, profile.transforms, subject=subject))
    return out
