"""Cross-layer dataflow verification: units, exception flow, resource lifecycle.

Three rule families run over the :mod:`~repro.analysis.callgraph`:

**Units (UNI001–005).**  An abstract domain of physical units — dB vs
linear ratio, W/mW, bps/kbps/bytes-per-second, s/ms/µs, bytes/bits/
packets — seeded from a registry of known signatures (``to_db``,
``from_db``, scheduler delays, MIB gauge scales) and from naming
conventions (``*_db``, ``*_bps``, ``*_ms``, ...), then propagated
intraprocedurally with call-graph return summaries.  Mixed-unit
arithmetic, dB-for-linear call arguments, and mis-scaled SNMP gauge
probes are flagged.

**Exception flow (EXC001–003).**  A fixpoint over the call graph
computes which exception types can escape each function (raises, minus
enclosing handlers, plus callee summaries).  Callbacks registered on
delivery boundaries (``on_receive=``/``on_delivery=``/RTP reassembly)
must not leak codec/wire errors; scheduler callbacks must not leak at
all; handlers on dispatch paths must not silently swallow failures.

**Resource lifecycle (RES001–003).**  Path-sensitive tracking of
transport/socket objects (``DatagramSocket``, ``MulticastSocket``,
``LoopbackUDP``, real sockets, SNMP endpoints): leak-on-exception and
never-closed locals, straight-line double close, and use-after-close.
Objects that escape the creating function (returned, stored on ``self``,
passed along) are exempt from leak checks — ownership moved.

Every finding flows through the shared :class:`~repro.analysis.diagnostics.Diagnostic`
model, so ``# repro: ignore[CODE]`` suppression, severity gating, the
baseline file, and SARIF output all apply.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Optional

from .callgraph import CallGraph, CallSite, FunctionInfo, build_call_graph
from .diagnostics import Diagnostic, filter_diagnostics, parse_suppressions, rule_severity

__all__ = [
    "Unit",
    "UNIT_DIMENSIONS",
    "UNIT_SCALES",
    "SIGNATURES",
    "METHOD_SIGNATURES",
    "GAUGE_UNITS",
    "RESOURCE_TYPES",
    "WIRE_ERROR_TYPES",
    "UnitSig",
    "compute_escaping_exceptions",
    "compute_return_units",
    "dataflow_diagnostics",
    "analyze_dataflow",
]


# ======================================================================
# the unit domain
# ======================================================================
class Unit:
    """String-valued unit constants (a flat abstract domain + UNKNOWN)."""

    DB = "dB"
    LINEAR = "linear"
    WATT = "W"
    MILLIWATT = "mW"
    BPS = "bit/s"
    KBPS = "kbit/s"
    BYTES_PER_SEC = "byte/s"
    SECONDS = "s"
    MILLISECONDS = "ms"
    MICROSECONDS = "us"
    BYTES = "byte"
    BITS = "bit"
    PACKETS = "packet"


#: dimension name -> units belonging to it (units in different dimensions
#: never mix in +/-/comparison; units in the same dimension need a scale
#: conversion)
UNIT_DIMENSIONS: dict[str, frozenset[str]] = {
    "ratio": frozenset({Unit.DB, Unit.LINEAR}),
    "power": frozenset({Unit.WATT, Unit.MILLIWATT}),
    "rate": frozenset({Unit.BPS, Unit.KBPS, Unit.BYTES_PER_SEC}),
    "time": frozenset({Unit.SECONDS, Unit.MILLISECONDS, Unit.MICROSECONDS}),
    "data": frozenset({Unit.BYTES, Unit.BITS, Unit.PACKETS}),
}

#: scale of each unit relative to its dimension's base (for gauge checks);
#: packets have no fixed scale and never convert by a constant factor
UNIT_SCALES: dict[str, float] = {
    Unit.WATT: 1.0,
    Unit.MILLIWATT: 1e-3,
    Unit.BPS: 1.0,
    Unit.KBPS: 1e3,
    Unit.BYTES_PER_SEC: 8.0,
    Unit.SECONDS: 1.0,
    Unit.MILLISECONDS: 1e-3,
    Unit.MICROSECONDS: 1e-6,
    Unit.BITS: 1.0,
    Unit.BYTES: 8.0,
}


def dimension_of(unit: str) -> Optional[str]:
    for dim, members in UNIT_DIMENSIONS.items():
        if unit in members:
            return dim
    return None


def _mismatch_code(a: str, b: str) -> str:
    """Which UNI rule a unit pair violates (assumes ``a != b``)."""
    da, db_ = dimension_of(a), dimension_of(b)
    if da == db_:
        if da == "rate":
            return "UNI003"
        if da == "time":
            return "UNI004"
        if da == "data":
            return "UNI005"
    return "UNI001"


#: ``name`` / ``name_suffix`` -> unit, longest suffix tried first
_NAME_SUFFIX_UNITS: tuple[tuple[str, str], ...] = (
    ("_bytes_per_sec", Unit.BYTES_PER_SEC),
    ("_seconds", Unit.SECONDS),
    ("_packets", Unit.PACKETS),
    ("_kbps", Unit.KBPS),
    ("_bytes", Unit.BYTES),
    ("_bits", Unit.BITS),
    ("_secs", Unit.SECONDS),
    ("_sec", Unit.SECONDS),
    ("_bps", Unit.BPS),
    ("_db", Unit.DB),
    ("_ms", Unit.MILLISECONDS),
    ("_us", Unit.MICROSECONDS),
    ("_mw", Unit.MILLIWATT),
)

#: exact variable/parameter names with a conventional meaning in this tree
_NAME_EXACT_UNITS: dict[str, str] = {
    "sir": Unit.LINEAR,
    "gamma": Unit.LINEAR,
    "packet_bits": Unit.BITS,
    "frame_bits": Unit.BITS,
    "packets": Unit.PACKETS,
}


def unit_from_name(name: str) -> Optional[str]:
    """Unit implied by a variable/parameter/key name, if any."""
    low = name.lower()
    if low in _NAME_EXACT_UNITS:
        return _NAME_EXACT_UNITS[low]
    for suffix, unit in _NAME_SUFFIX_UNITS:
        if low.endswith(suffix) and len(low) > len(suffix):
            return unit
    return None


@dataclass(frozen=True)
class UnitSig:
    """Known units of one callable: parameter units and return unit.

    ``params`` maps positional index (``self`` excluded) *or* keyword
    name to a unit.
    """

    params: dict[object, str] = field(default_factory=dict)
    returns: Optional[str] = None


#: dotted-suffix-keyed signatures for module-level functions
SIGNATURES: dict[str, UnitSig] = {
    "sir.to_db": UnitSig({0: Unit.LINEAR, "x": Unit.LINEAR}, Unit.DB),
    "sir.from_db": UnitSig({0: Unit.DB, "x_db": Unit.DB}, Unit.LINEAR),
    "sir.sir": UnitSig({}, Unit.LINEAR),
    "sir.sir_sweep": UnitSig({}, Unit.LINEAR),
    "sir.sir_matrix": UnitSig({}, Unit.LINEAR),
    "sir.sir_db": UnitSig({}, Unit.DB),
    "linkquality.bit_error_rate": UnitSig({0: Unit.LINEAR, "gamma": Unit.LINEAR}, Unit.LINEAR),
    "linkquality.packet_loss_probability": UnitSig(
        {0: Unit.LINEAR, "gamma": Unit.LINEAR, "packet_bits": Unit.BITS}, Unit.LINEAR
    ),
    "linkquality.loss_for_sir_db": UnitSig(
        {0: Unit.DB, "sir_db": Unit.DB, "coding_gain_db": Unit.DB, "packet_bits": Unit.BITS},
        Unit.LINEAR,
    ),
    "linkquality.effective_throughput": UnitSig(
        {0: Unit.LINEAR, "gamma": Unit.LINEAR, "rate_bps": Unit.BPS}, Unit.BPS
    ),
    "powercontrol.frame_success_rate": UnitSig(
        {0: Unit.LINEAR, "gamma": Unit.LINEAR, "frame_bits": Unit.BITS}, Unit.LINEAR
    ),
}

#: (class short name, method) signatures — clock/scheduler times are seconds
METHOD_SIGNATURES: dict[tuple[str, str], UnitSig] = {
    ("Scheduler", "call_after"): UnitSig({0: Unit.SECONDS, "delay": Unit.SECONDS}),
    ("Scheduler", "call_at"): UnitSig({0: Unit.SECONDS, "t": Unit.SECONDS}),
    ("Scheduler", "run_until"): UnitSig({0: Unit.SECONDS, "t": Unit.SECONDS}),
    ("Scheduler", "run_for"): UnitSig({0: Unit.SECONDS, "duration": Unit.SECONDS}),
    ("SirTierPolicy", "tier"): UnitSig({0: Unit.DB, "sir_db": Unit.DB}),
    ("PolicyDatabase", "decide_tier"): UnitSig({0: Unit.DB, "sir_db": Unit.DB}),
}

#: MIB object (rightmost attribute name) -> unit of the raw gauge value,
#: per the TASSL/MIB-II definitions in snmp/oids.py and the bindings in
#: hosts/snmp_binding.py / snmp/switch_binding.py
GAUGE_UNITS: dict[str, str] = {
    "linkBandwidth": Unit.BYTES_PER_SEC,  # TASSL gauge is bytes/s on the wire
    "linkLatencyUs": Unit.MICROSECONDS,
    "linkJitterUs": Unit.MICROSECONDS,
    "ifSpeed": Unit.BPS,  # MIB-II ifSpeed is bits/s
    "ifInOctets": Unit.BYTES,
    "ifOutOctets": Unit.BYTES,
}

#: attribute names with conventional units *inside gauge transforms only*
#: (Link.latency/jitter are seconds, Link.bandwidth is bytes/s in simnet)
_GAUGE_ATTR_UNITS: dict[str, str] = {
    "latency": Unit.SECONDS,
    "jitter": Unit.SECONDS,
    "bandwidth": Unit.BYTES_PER_SEC,
}

#: calls that pass their first argument's unit through unchanged
_IDENTITY_CALLS = frozenset(
    {
        "asarray",
        "atleast_1d",
        "atleast_2d",
        "ascontiguousarray",
        "abs",
        "float",
        "round",
        "minimum",
        "maximum",
        "clip",
        "copy",
        "broadcast_to",
        "full_like",
    }
)


# ======================================================================
# exception-flow registries
# ======================================================================
#: exception types that wire input can trigger: crossing a dispatch
#: boundary unhandled means a malformed datagram kills the event loop
WIRE_ERROR_TYPES = frozenset(
    {
        "WireError",
        "RtpError",
        "BerError",
        "SnmpProtocolError",
        "SerializationError",
        "UnicodeDecodeError",
    }
)

#: builtin exception hierarchy fallback (project classes come from the graph)
_BUILTIN_BASES: dict[str, tuple[str, ...]] = {
    "ValueError": ("Exception",),
    "TypeError": ("Exception",),
    "KeyError": ("LookupError",),
    "IndexError": ("LookupError",),
    "LookupError": ("Exception",),
    "RuntimeError": ("Exception",),
    "OSError": ("Exception",),
    "UnicodeDecodeError": ("ValueError",),
    "ZeroDivisionError": ("ArithmeticError",),
    "ArithmeticError": ("Exception",),
    "StopIteration": ("Exception",),
    "Exception": ("BaseException",),
}

#: kwarg names whose value is a delivery/receive callback
_DELIVERY_CALLBACK_KWARGS = frozenset({"on_receive", "on_delivery", "on_payload", "on_rejected"})

#: (callable short name, positional index) pairs that take a delivery callback
_DELIVERY_CALLBACK_POSITIONS: dict[str, int] = {"RtpReassembler": 0}

#: path fragments where EXC003 (silent swallow) applies
_DISPATCH_FILE_FRAGMENTS = (
    "messaging/",
    "network/",
    "snmp/",
    "core/matching",
    "core/inference",
    "core/events",
)


# ======================================================================
# resource-lifecycle registry
# ======================================================================
@dataclass(frozen=True)
class ResourceType:
    """Lifecycle surface of one resource class."""

    close_methods: tuple[str, ...]
    use_methods: tuple[str, ...]


RESOURCE_TYPES: dict[str, ResourceType] = {
    "DatagramSocket": ResourceType(("close",), ("bind", "bind_ephemeral", "sendto")),
    "MulticastSocket": ResourceType(("leave", "close"), ("send", "unicast")),
    "SimTransport": ResourceType(("close",), ("send", "unicast")),
    "LoopbackUDP": ResourceType(("close",), ("send", "unicast", "poll")),
    "RealSnmpAgent": ResourceType(("close",), ("serve", "serve_once")),
    "RealSnmpManager": ResourceType(("close",), ("get", "get_next", "set")),
    "SnmpManager": ResourceType(("close",), ("get", "get_scalar", "get_next", "set", "walk")),
    "NetworkStateInterface": ResourceType(("close",), ("poll",)),
    "SemanticEndpoint": ResourceType(("close",), ("publish", "unicast")),
    "socket": ResourceType(("close",), ("bind", "sendto", "recvfrom", "send", "recv", "connect")),
}

#: calls that never raise — don't count as a leak hazard between
#: acquisition and release
_SAFE_CALLS = frozenset(
    {
        "len",
        "isinstance",
        "getattr",
        "id",
        "repr",
        "str",
        "print",
        "append",
        "tuple",
        "list",
        "dict",
        "set",
        "frozenset",
        "range",
        "enumerate",
        "sorted",
    }
)


# ======================================================================
# shared helpers
# ======================================================================
def _rightmost(expr: ast.expr) -> Optional[str]:
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    return None


def _diag(code: str, message: str, subject: str, path: str, node: ast.AST) -> Diagnostic:
    return Diagnostic(
        code,
        rule_severity(code),
        message,
        subject=subject,
        file=path,
        line=getattr(node, "lineno", None),
        column=getattr(node, "col_offset", -1) + 1 if hasattr(node, "col_offset") else None,
    )


# ======================================================================
# UNI: unit propagation
# ======================================================================
def _signature_for(site: CallSite, graph: CallGraph) -> Optional[UnitSig]:
    """Registry or heuristic signature for a call site's target."""
    if site.callee is not None:
        for suffix, sig in SIGNATURES.items():
            if site.callee == suffix or site.callee.endswith("." + suffix):
                return sig
    if site.recv_type is not None:
        sig = METHOD_SIGNATURES.get((site.recv_type, site.method))
        if sig is not None:
            return sig
    # bare-name calls to seeded functions (imported under their own name)
    for suffix, sig in SIGNATURES.items():
        if suffix.endswith("." + site.func_repr):
            return sig
    # project functions: derive param units from parameter names
    if site.callee is not None and site.callee in graph.functions:
        info = graph.functions[site.callee]
        params: dict[object, str] = {}
        for i, p in enumerate(info.params):
            u = unit_from_name(p)
            if u is not None:
                params[i] = u
                params[p] = u
        if params:
            return UnitSig(params)
    return None


class _UnitEnv:
    """Variable -> unit within one function body."""

    def __init__(self, fn: FunctionInfo, sig: Optional[UnitSig]) -> None:
        self.vars: dict[str, str] = {}
        for i, p in enumerate(fn.params):
            u = None
            if sig is not None:
                u = sig.params.get(i) or sig.params.get(p)
            u = u or unit_from_name(p)
            if u is not None:
                self.vars[p] = u


class _UnitChecker:
    def __init__(self, graph: CallGraph, return_units: dict[str, str]) -> None:
        self.graph = graph
        self.return_units = return_units
        self.diags: list[Diagnostic] = []
        self._sites: dict[int, CallSite] = {}

    # -- expression units ----------------------------------------------
    def unit_of(self, expr: ast.expr, env: _UnitEnv) -> Optional[str]:
        if isinstance(expr, ast.Name):
            return env.vars.get(expr.id) or unit_from_name(expr.id)
        if isinstance(expr, ast.Attribute):
            return unit_from_name(expr.attr)
        if isinstance(expr, ast.Subscript):
            sl = expr.slice
            if isinstance(sl, ast.Constant) and isinstance(sl.value, str):
                return unit_from_name(sl.value)
            return self.unit_of(expr.value, env)
        if isinstance(expr, ast.Constant):
            return None  # dimensionless literal: compatible with anything
        if isinstance(expr, ast.UnaryOp):
            return self.unit_of(expr.operand, env)
        if isinstance(expr, ast.IfExp):
            a = self.unit_of(expr.body, env)
            b = self.unit_of(expr.orelse, env)
            return a if a == b else None
        if isinstance(expr, ast.BinOp) and isinstance(expr.op, (ast.Add, ast.Sub)):
            a = self.unit_of(expr.left, env)
            b = self.unit_of(expr.right, env)
            if a is not None and b is not None:
                return a if a == b else None
            return a or b
        if isinstance(expr, ast.Call):
            site = self._sites.get(id(expr))
            if site is not None:
                sig = _signature_for(site, self.graph)
                if sig is not None and sig.returns is not None:
                    return sig.returns
                if site.callee is not None and site.callee in self.return_units:
                    return self.return_units[site.callee]
            name = _rightmost(expr.func)
            if name in _IDENTITY_CALLS and expr.args:
                return self.unit_of(expr.args[0], env)
            return None
        return None

    # -- checks ---------------------------------------------------------
    def check_function(self, fn: FunctionInfo) -> None:
        sig = None
        for suffix, s in SIGNATURES.items():
            if fn.qualname.endswith(suffix):
                sig = s
                break
        env = _UnitEnv(fn, sig)
        self._sites = {id(s.node): s for s in self.graph.calls_from(fn.qualname)}
        assert isinstance(fn.node, (ast.FunctionDef, ast.AsyncFunctionDef))
        for stmt in ast.walk(fn.node):
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 and isinstance(
                stmt.targets[0], ast.Name
            ):
                u = self.unit_of(stmt.value, env)
                target = stmt.targets[0].id
                if u is not None:
                    declared = unit_from_name(target)
                    if declared is not None and declared != u:
                        self.diags.append(
                            _diag(
                                _mismatch_code(declared, u),
                                f"'{target}' declares {declared} but is assigned"
                                f" a {u} value",
                                fn.qualname,
                                fn.path,
                                stmt,
                            )
                        )
                    env.vars[target] = u
                else:
                    declared = unit_from_name(target)
                    if declared is not None:
                        env.vars[target] = declared
            elif isinstance(stmt, ast.BinOp) and isinstance(stmt.op, (ast.Add, ast.Sub)):
                self._check_pair(stmt.left, stmt.right, env, fn, stmt, "arithmetic")
            elif isinstance(stmt, ast.Compare) and len(stmt.comparators) == 1:
                self._check_pair(
                    stmt.left, stmt.comparators[0], env, fn, stmt, "comparison"
                )
            elif isinstance(stmt, ast.Call):
                self._check_call(stmt, env, fn)

    def _check_pair(
        self,
        left: ast.expr,
        right: ast.expr,
        env: _UnitEnv,
        fn: FunctionInfo,
        node: ast.AST,
        kind: str,
    ) -> None:
        a = self.unit_of(left, env)
        b = self.unit_of(right, env)
        if a is not None and b is not None and a != b:
            self.diags.append(
                _diag(
                    _mismatch_code(a, b),
                    f"{kind} mixes {a} and {b}",
                    fn.qualname,
                    fn.path,
                    node,
                )
            )

    def _check_call(self, call: ast.Call, env: _UnitEnv, fn: FunctionInfo) -> None:
        site = self._sites.get(id(call))
        if site is None:
            return
        sig = _signature_for(site, self.graph)
        if sig is None or not sig.params:
            return
        pairs: list[tuple[object, ast.expr]] = list(enumerate(call.args))
        pairs += [(kw.arg, kw.value) for kw in call.keywords if kw.arg is not None]
        for key, arg in pairs:
            expected = sig.params.get(key)
            if expected is None:
                continue
            actual = self.unit_of(arg, env)
            if actual is None or actual == expected:
                continue
            if {actual, expected} == {Unit.DB, Unit.LINEAR}:
                code = "UNI002"
            else:
                code = _mismatch_code(actual, expected)
            self.diags.append(
                _diag(
                    code,
                    f"{site.func_repr}() expects {expected} for"
                    f" {key!r}, got a {actual} value",
                    fn.qualname,
                    fn.path,
                    arg,
                )
            )


def compute_return_units(graph: CallGraph, rounds: int = 3) -> dict[str, str]:
    """Fixpoint return-unit summaries for project functions."""
    out: dict[str, str] = {}
    for _ in range(rounds):
        changed = False
        checker = _UnitChecker(graph, out)
        for fn in graph.functions.values():
            sig = None
            for suffix, s in SIGNATURES.items():
                if fn.qualname.endswith(suffix):
                    sig = s
                    break
            if sig is not None and sig.returns is not None:
                if out.get(fn.qualname) != sig.returns:
                    out[fn.qualname] = sig.returns
                    changed = True
                continue
            env = _UnitEnv(fn, sig)
            checker._sites = {id(s.node): s for s in graph.calls_from(fn.qualname)}
            units: set[Optional[str]] = set()
            assert isinstance(fn.node, (ast.FunctionDef, ast.AsyncFunctionDef))
            for stmt in ast.walk(fn.node):
                # seed env from simple assignments first (walk order is
                # document order for a function body)
                if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 and isinstance(
                    stmt.targets[0], ast.Name
                ):
                    u = checker.unit_of(stmt.value, env) or unit_from_name(
                        stmt.targets[0].id
                    )
                    if u is not None:
                        env.vars[stmt.targets[0].id] = u
                elif isinstance(stmt, ast.Return) and stmt.value is not None:
                    units.add(checker.unit_of(stmt.value, env))
            if len(units) == 1:
                (u,) = units
                if u is not None and out.get(fn.qualname) != u:
                    out[fn.qualname] = u
                    changed = True
        if not changed:
            break
    return out


# ----------------------------------------------------------------------
# UNI: SNMP gauge / probe scale checking
# ----------------------------------------------------------------------
def _constant_factor(expr: ast.expr, base_unit_of) -> Optional[tuple[Optional[str], float]]:
    """Decompose ``expr`` as (unit-of-source, multiplicative factor).

    Handles ``x``, ``x * k``, ``k * x``, ``x / k`` and nests through
    ``int()`` / ``_numeric()`` style single-argument wrappers.
    """
    if isinstance(expr, ast.Call) and len(expr.args) >= 1:
        return _constant_factor(expr.args[0], base_unit_of)
    if isinstance(expr, ast.BinOp):
        if isinstance(expr.op, ast.Mult):
            for a, b in ((expr.left, expr.right), (expr.right, expr.left)):
                if isinstance(b, ast.Constant) and isinstance(b.value, (int, float)):
                    inner = _constant_factor(a, base_unit_of)
                    if inner is not None:
                        return inner[0], inner[1] * float(b.value)
        elif isinstance(expr.op, ast.Div):
            if isinstance(expr.right, ast.Constant) and isinstance(
                expr.right.value, (int, float)
            ) and expr.right.value != 0:
                inner = _constant_factor(expr.left, base_unit_of)
                if inner is not None:
                    return inner[0], inner[1] / float(expr.right.value)
        return None
    return base_unit_of(expr), 1.0


def _gauge_name(expr: ast.expr) -> Optional[str]:
    """Rightmost known MIB object name in an OID expression."""
    for node in ast.walk(expr):
        if isinstance(node, ast.Attribute) and node.attr in GAUGE_UNITS:
            return node.attr
        if isinstance(node, ast.Name) and node.id in GAUGE_UNITS:
            return node.id
    return None


def _check_scale(
    from_unit: str,
    to_unit: str,
    factor: float,
    subject: str,
    path: str,
    node: ast.AST,
    what: str,
) -> Optional[Diagnostic]:
    if from_unit == to_unit and factor == 1.0:
        return None
    if dimension_of(from_unit) != dimension_of(to_unit):
        return _diag(
            _mismatch_code(from_unit, to_unit),
            f"{what}: {from_unit} value delivered as {to_unit}",
            subject,
            path,
            node,
        )
    sf, st = UNIT_SCALES.get(from_unit), UNIT_SCALES.get(to_unit)
    if sf is None or st is None:
        return None  # e.g. packets: no constant conversion exists
    expected = sf / st
    if abs(factor - expected) <= 1e-9 * max(1.0, expected):
        return None
    return _diag(
        _mismatch_code(from_unit, to_unit),
        f"{what}: converting {from_unit} to {to_unit} needs a factor of"
        f" {expected:g}, found {factor:g}",
        subject,
        path,
        node,
    )


class _GaugeChecker:
    """Probe registrations and MIB gauge bindings with wrong scales."""

    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph
        self.diags: list[Diagnostic] = []

    def run(self) -> list[Diagnostic]:
        for site in self.graph.calls:
            call = site.node
            name = site.method
            if name == "Probe":
                self._check_probe(call, site)
            elif name == "register_callable" and len(call.args) >= 2:
                self._check_binding(call, site)
        self._check_tables()
        return self.diags

    def _resolve_local(self, expr: ast.expr, site: CallSite) -> ast.expr:
        """Chase a Name to a parameter default or local lambda/constant."""
        if not isinstance(expr, ast.Name):
            return expr
        fn = self.graph.functions.get(site.caller)
        if fn is None:
            return expr
        node = fn.node
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        args = node.args
        if args.defaults:
            for a, d in zip(args.args[-len(args.defaults) :], args.defaults):
                if a.arg == expr.id:
                    return d
        for a, d in zip(args.kwonlyargs, args.kw_defaults):
            if d is not None and a.arg == expr.id:
                return d
        binding = _local_bindings(node).get(expr.id)
        return binding if binding is not None else expr

    def _check_probe(self, call: ast.Call, site: CallSite) -> None:
        args: dict[str, Optional[ast.expr]] = {
            "oid": call.args[1] if len(call.args) > 1 else None,
            "parameter": call.args[2] if len(call.args) > 2 else None,
            "transform": call.args[3] if len(call.args) > 3 else None,
        }
        for kw in call.keywords:
            if kw.arg in args:
                args[kw.arg] = kw.value
        oid, parameter, transform = args["oid"], args["parameter"], args["transform"]
        if oid is None or parameter is None:
            return
        gauge = _gauge_name(oid)
        if gauge is None:
            return
        parameter = self._resolve_local(parameter, site)
        if not (isinstance(parameter, ast.Constant) and isinstance(parameter.value, str)):
            return
        to_unit = unit_from_name(parameter.value)
        if to_unit is None:
            return
        if transform is not None:
            transform = self._resolve_local(transform, site)
        factor = self._transform_factor(transform)
        if factor is None:
            return  # opaque transform: trust it
        d = _check_scale(
            GAUGE_UNITS[gauge],
            to_unit,
            factor,
            f"{gauge} -> {parameter.value}",
            site.path,
            call,
            "SNMP probe scaling",
        )
        if d is not None:
            self.diags.append(d)

    def _check_tables(self) -> None:
        """Registration-table tuples: ``(TASSL.linkBandwidth, "bandwidth_bps",
        transform)`` rows iterated before the ``Probe(...)`` constructor sees
        only loop variables, so match the table literal itself."""
        for fn in self.graph.functions.values():
            node = fn.node
            assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            lambdas = _local_bindings(node)
            for sub in ast.walk(node):
                if isinstance(sub, ast.Tuple) and 2 <= len(sub.elts) <= 4:
                    self._check_table_row(sub, fn.path, lambdas)

    def _check_table_row(
        self, row: ast.Tuple, path: str, lambdas: dict[str, ast.expr]
    ) -> None:
        gauge: Optional[str] = None
        param: Optional[str] = None
        transform: Optional[ast.expr] = None
        for elt in row.elts:
            if gauge is None and isinstance(elt, (ast.Attribute, ast.Call)):
                g = _gauge_name(elt)
                if g is not None:
                    gauge = g
                    continue
            if param is None and isinstance(elt, ast.Constant) and isinstance(
                elt.value, str
            ):
                param = elt.value
                continue
            if transform is None and isinstance(elt, (ast.Lambda, ast.Name)):
                transform = elt
        if gauge is None or param is None:
            return
        to_unit = unit_from_name(param)
        if to_unit is None:
            return
        if isinstance(transform, ast.Name) and transform.id in lambdas:
            transform = lambdas[transform.id]
        factor = self._transform_factor(transform)
        if factor is None:
            return
        d = _check_scale(
            GAUGE_UNITS[gauge],
            to_unit,
            factor,
            f"{gauge} -> {param}",
            path,
            row,
            "SNMP probe scaling",
        )
        if d is not None:
            self.diags.append(d)

    def _transform_factor(self, transform: Optional[ast.expr]) -> Optional[float]:
        """Multiplicative factor a probe transform applies, if derivable."""
        if transform is None or (
            isinstance(transform, ast.Name) and transform.id in ("_numeric",)
        ):
            return 1.0
        if isinstance(transform, ast.Lambda):
            decomposed = _constant_factor(transform.body, lambda e: None)
            if decomposed is not None:
                return decomposed[1]
        return None

    def _check_binding(self, call: ast.Call, site: CallSite) -> None:
        """``register_callable(TASSL.linkLatencyUs, lambda: Gauge32(x * k))``."""
        gauge = _gauge_name(call.args[0])
        if gauge is None:
            return
        getter = call.args[1]
        if not isinstance(getter, ast.Lambda):
            return
        decomposed = _constant_factor(
            getter.body,
            lambda e: _GAUGE_ATTR_UNITS.get(_rightmost(e) or "")
            if isinstance(e, (ast.Attribute, ast.Name))
            else None,
        )
        if decomposed is None or decomposed[0] is None:
            return
        from_unit, factor = decomposed
        d = _check_scale(
            from_unit,
            GAUGE_UNITS[gauge],
            factor,
            f"{gauge} binding",
            site.path,
            call,
            "MIB gauge scaling",
        )
        if d is not None:
            self.diags.append(d)


def _local_bindings(fn: ast.AST) -> dict[str, ast.expr]:
    """``name = <lambda or constant>`` bindings inside a function body."""
    out: dict[str, ast.expr] = {}
    for stmt in ast.walk(fn):
        target: Optional[str] = None
        value: Optional[ast.expr] = None
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
        ):
            target, value = stmt.targets[0].id, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            target, value = stmt.target.id, stmt.value
        if target is not None and isinstance(value, (ast.Lambda, ast.Constant)):
            out.setdefault(target, value)
    return out


# ======================================================================
# EXC: exception flow
# ======================================================================
def _exception_ancestors(graph: CallGraph, name: str) -> set[str]:
    out = set(graph.ancestors(name))
    frontier = [name] + list(out)
    while frontier:
        n = frontier.pop()
        for base in _BUILTIN_BASES.get(n, ()):
            if base not in out:
                out.add(base)
                frontier.append(base)
    return out


def _handler_catches(graph: CallGraph, handler_types: set[str], exc: str) -> bool:
    if not handler_types:  # bare except
        return True
    if exc in handler_types:
        return True
    return bool(handler_types & _exception_ancestors(graph, exc))


def _handler_type_names(handler: ast.ExceptHandler) -> set[str]:
    t = handler.type
    if t is None:
        return set()
    names: set[str] = set()
    for node in [t] if not isinstance(t, ast.Tuple) else list(t.elts):
        n = _rightmost(node)
        if n:
            names.add(n)
    return names


class _EscapeAnalyzer:
    """Which exception type names can escape each function."""

    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph
        self.summaries: dict[str, frozenset[str]] = {}
        self._site_index: dict[str, dict[int, CallSite]] = {}

    def compute(self, rounds: int = 6) -> dict[str, frozenset[str]]:
        for q in self.graph.functions:
            self.summaries[q] = frozenset()
        for _ in range(rounds):
            changed = False
            for q, fn in self.graph.functions.items():
                assert isinstance(fn.node, (ast.FunctionDef, ast.AsyncFunctionDef))
                esc = frozenset(self._escapes(fn.node.body, q, caught_stack=()))
                if esc != self.summaries[q]:
                    self.summaries[q] = esc
                    changed = True
            if not changed:
                break
        return self.summaries

    def _escapes(
        self, stmts: list[ast.stmt], caller: str, caught_stack: tuple[set[str], ...]
    ) -> set[str]:
        out: set[str] = set()
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue  # nested defs run when called, not inline
            out |= self._stmt_escapes(stmt, caller, caught_stack)
        return out

    def _stmt_escapes(
        self, stmt: ast.stmt, caller: str, caught_stack: tuple[set[str], ...]
    ) -> set[str]:
        if isinstance(stmt, ast.Raise):
            if stmt.exc is None:
                # bare re-raise: whatever the innermost handler caught
                return set(caught_stack[-1]) if caught_stack else set()
            name = _rightmost(
                stmt.exc.func if isinstance(stmt.exc, ast.Call) else stmt.exc
            )
            return {name} if name else set()
        if isinstance(stmt, ast.Try):
            body = self._escapes(stmt.body, caller, caught_stack)
            handler_escapes: set[str] = set()
            for handler in stmt.handlers:
                types = _handler_type_names(handler)
                caught = {e for e in body if _handler_catches(self.graph, types, e)}
                body -= caught
                handler_escapes |= self._escapes(
                    handler.body, caller, caught_stack + (types or caught or {"Exception"},)
                )
            out = body | handler_escapes
            out |= self._escapes(stmt.orelse, caller, caught_stack)
            out |= self._escapes(stmt.finalbody, caller, caught_stack)
            return out
        # compound statements: nested statement lists recurse (so inner
        # try/except filtering applies); only this statement's OWN
        # expressions contribute call-summary escapes directly
        out: set[str] = set()
        for _field, value in ast.iter_fields(stmt):
            if isinstance(value, list):
                nested = [s for s in value if isinstance(s, ast.stmt)]
                if nested:
                    out |= self._escapes(nested, caller, caught_stack)
                for v in value:
                    if isinstance(v, ast.AST) and not isinstance(v, ast.stmt):
                        out |= self._calls_in(v, caller)
            elif isinstance(value, ast.AST):
                out |= self._calls_in(value, caller)
        return out

    def _calls_in(self, node: ast.AST, caller: str) -> set[str]:
        """Escape sets of resolved calls in one expression subtree
        (deferred bodies — lambdas, nested defs — excluded)."""
        out: set[str] = set()
        sites = self._sites_by_caller(caller)
        stack = [node]
        while stack:
            n = stack.pop()
            if isinstance(n, (ast.Lambda, ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if isinstance(n, ast.Call):
                site = sites.get(id(n))
                if site is not None and site.callee in self.summaries:
                    out |= set(self.summaries[site.callee])
            stack.extend(ast.iter_child_nodes(n))
        return out

    def _sites_by_caller(self, caller: str) -> dict[int, CallSite]:
        cached = self._site_index.get(caller)
        if cached is None:
            cached = {id(s.node): s for s in self.graph.calls_from(caller)}
            self._site_index[caller] = cached
        return cached


def compute_escaping_exceptions(graph: CallGraph) -> dict[str, frozenset[str]]:
    """Escaping exception-type summaries for every function in the graph."""
    return _EscapeAnalyzer(graph).compute()


def _resolve_callback_ref(
    expr: ast.expr, fn: FunctionInfo, graph: CallGraph
) -> Optional[str]:
    """Qualname of a function referenced (not called) by ``expr``."""
    if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
        if expr.value.id == "self" and fn.cls is not None:
            return graph.method_qualname(fn.cls, expr.attr)
    if isinstance(expr, ast.Name):
        q = f"{fn.module}.{expr.id}"
        if q in graph.functions:
            return q
    return None


class _ExceptionChecker:
    def __init__(self, graph: CallGraph, escapes: dict[str, frozenset[str]]) -> None:
        self.graph = graph
        self.escapes = escapes
        self.diags: list[Diagnostic] = []

    def run(self) -> list[Diagnostic]:
        wire_closure = self._wire_closure()
        for fn in self.graph.functions.values():
            assert isinstance(fn.node, (ast.FunctionDef, ast.AsyncFunctionDef))
            for node in ast.walk(fn.node):
                # delivery-callback registrations: `x.on_receive = cb`
                if (
                    isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Attribute)
                    and node.targets[0].attr in _DELIVERY_CALLBACK_KWARGS
                ):
                    self._check_delivery(node.value, fn, node, wire_closure)
                elif isinstance(node, ast.Call):
                    for kw in node.keywords:
                        if kw.arg in _DELIVERY_CALLBACK_KWARGS:
                            self._check_delivery(kw.value, fn, node, wire_closure)
                    name = _rightmost(node.func)
                    pos = _DELIVERY_CALLBACK_POSITIONS.get(name or "")
                    if pos is not None and len(node.args) > pos:
                        self._check_delivery(node.args[pos], fn, node, wire_closure)
                    if name in ("call_after", "call_at") and len(node.args) >= 2:
                        self._check_scheduled(node.args[1], fn, node)
                elif isinstance(node, ast.ExceptHandler):
                    self._check_swallow(node, fn, wire_closure)
        return self.diags

    def _wire_closure(self) -> frozenset[str]:
        """Wire errors plus every project subclass of one."""
        out = set(WIRE_ERROR_TYPES)
        for cls in self.graph.class_bases:
            if _exception_ancestors(self.graph, cls) & WIRE_ERROR_TYPES:
                out.add(cls)
        return frozenset(out)

    def _check_delivery(
        self,
        ref: ast.expr,
        fn: FunctionInfo,
        node: ast.AST,
        wire_closure: frozenset[str],
    ) -> None:
        target = _resolve_callback_ref(ref, fn, self.graph)
        if target is None:
            return
        leaking = sorted(set(self.escapes.get(target, frozenset())) & wire_closure)
        if leaking:
            self.diags.append(
                _diag(
                    "EXC001",
                    f"delivery callback {target.rsplit('.', 1)[-1]}() can leak"
                    f" {', '.join(leaking)} across the dispatch boundary"
                    " (malformed input kills the event loop)",
                    target,
                    fn.path,
                    node,
                )
            )

    def _check_scheduled(self, ref: ast.expr, fn: FunctionInfo, node: ast.AST) -> None:
        target = _resolve_callback_ref(ref, fn, self.graph)
        if target is None:
            return
        leaking = sorted(self.escapes.get(target, frozenset()) - {"KeyboardInterrupt"})
        if leaking:
            self.diags.append(
                _diag(
                    "EXC002",
                    f"scheduler callback {target.rsplit('.', 1)[-1]}() can raise"
                    f" {', '.join(leaking)}, aborting the event loop mid-run",
                    target,
                    fn.path,
                    node,
                )
            )

    def _check_swallow(
        self, handler: ast.ExceptHandler, fn: FunctionInfo, wire_closure: frozenset[str]
    ) -> None:
        path = fn.path.replace("\\", "/")
        if not any(frag in path for frag in _DISPATCH_FILE_FRAGMENTS):
            return
        if not all(
            isinstance(s, (ast.Pass, ast.Continue, ast.Break))
            or (isinstance(s, ast.Expr) and isinstance(s.value, ast.Constant))
            for s in handler.body
        ):
            return
        types = _handler_type_names(handler)
        broad = not types or types & {"Exception", "BaseException"}
        wire = bool(types & wire_closure)
        if broad or wire:
            what = "every exception" if broad else ", ".join(sorted(types & wire_closure))
            self.diags.append(
                _diag(
                    "EXC003",
                    f"handler silently swallows {what} on a dispatch path;"
                    " count it or emit a DiagnosticWarning",
                    fn.qualname,
                    fn.path,
                    handler,
                )
            )


# ======================================================================
# RES: resource lifecycle
# ======================================================================
_OPEN, _CLOSED, _MAYBE = "open", "closed", "maybe-closed"


@dataclass
class _Tracked:
    var: str
    rtype: str
    node: ast.AST
    escaped: bool = False
    ever_closed: bool = False
    close_node: Optional[ast.AST] = None


class _ResourceChecker:
    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph
        self.diags: list[Diagnostic] = []

    def run(self) -> list[Diagnostic]:
        for fn in self.graph.functions.values():
            self._check_function(fn)
        return self.diags

    def _check_function(self, fn: FunctionInfo) -> None:
        assert isinstance(fn.node, (ast.FunctionDef, ast.AsyncFunctionDef))
        tracked: dict[str, _Tracked] = {}
        self._collect(fn, tracked)
        if not tracked:
            return
        state: dict[str, str] = {}
        self._walk(fn.node.body, state, tracked, fn, in_finally=False)
        self._leak_checks(fn, tracked, state)

    # -- discovery ------------------------------------------------------
    def _collect(self, fn: FunctionInfo, tracked: dict[str, _Tracked]) -> None:
        assert isinstance(fn.node, (ast.FunctionDef, ast.AsyncFunctionDef))
        for node in ast.walk(fn.node):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Call)
            ):
                rtype = self._resource_type_of(node.value)
                if rtype is not None:
                    var = node.targets[0].id
                    tracked.setdefault(var, _Tracked(var, rtype, node))
        if not tracked:
            return
        # escape analysis: returned, yielded, stored, passed, closed over
        names = set(tracked)
        for node in ast.walk(fn.node):
            if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
                v = getattr(node, "value", None)
                for sub in ast.walk(v) if v is not None else ():
                    if isinstance(sub, ast.Name) and sub.id in names:
                        tracked[sub.id].escaped = True
            elif isinstance(node, ast.Assign):
                if any(not isinstance(t, ast.Name) for t in node.targets):
                    for sub in ast.walk(node.value):
                        if isinstance(sub, ast.Name) and sub.id in names:
                            tracked[sub.id].escaped = True
            elif isinstance(node, ast.Call):
                # passed as an argument (ownership transfer), but a plain
                # method call on the resource itself is not an escape
                for arg in list(node.args) + [kw.value for kw in node.keywords]:
                    for sub in ast.walk(arg):
                        if isinstance(sub, ast.Name) and sub.id in names:
                            tracked[sub.id].escaped = True
            elif isinstance(node, (ast.Lambda, ast.FunctionDef, ast.AsyncFunctionDef)):
                if node is not fn.node:
                    for sub in ast.walk(node):
                        if isinstance(sub, ast.Name) and sub.id in names:
                            tracked[sub.id].escaped = True

    def _resource_type_of(self, call: ast.Call) -> Optional[str]:
        name = _rightmost(call.func)
        if name in RESOURCE_TYPES:
            return name
        return None

    # -- path walk ------------------------------------------------------
    def _walk(
        self,
        stmts: list[ast.stmt],
        state: dict[str, str],
        tracked: dict[str, _Tracked],
        fn: FunctionInfo,
        in_finally: bool,
    ) -> bool:
        """Interpret ``stmts``; returns True when the path terminates."""
        for stmt in stmts:
            if isinstance(stmt, (ast.Return, ast.Raise, ast.Break, ast.Continue)):
                self._scan_expr(stmt, state, tracked, fn)
                return True
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 and isinstance(
                stmt.targets[0], ast.Name
            ):
                var = stmt.targets[0].id
                self._scan_expr(stmt.value, state, tracked, fn)
                if var in tracked:
                    if isinstance(stmt.value, ast.Call) and self._resource_type_of(
                        stmt.value
                    ):
                        state[var] = _OPEN
                    else:
                        state.pop(var, None)  # re-bound to something else
                continue
            if isinstance(stmt, ast.If):
                self._scan_expr(stmt.test, state, tracked, fn)
                s1, s2 = dict(state), dict(state)
                t1 = self._walk(stmt.body, s1, tracked, fn, in_finally)
                t2 = self._walk(stmt.orelse, s2, tracked, fn, in_finally)
                if t1 and t2:
                    return True
                if t1:
                    state.clear(); state.update(s2)
                elif t2:
                    state.clear(); state.update(s1)
                else:
                    self._merge(state, s1, s2)
                continue
            if isinstance(stmt, (ast.For, ast.While)):
                body_state = dict(state)
                self._walk(stmt.body, body_state, tracked, fn, in_finally)
                self._merge(state, dict(state), body_state)
                self._walk(stmt.orelse, state, tracked, fn, in_finally)
                continue
            if isinstance(stmt, ast.Try):
                body_state = dict(state)
                t_body = self._walk(stmt.body, body_state, tracked, fn, in_finally)
                merged = dict(state)
                self._merge(merged, dict(state), body_state)
                for handler in stmt.handlers:
                    h_state = dict(merged)
                    self._walk(handler.body, h_state, tracked, fn, in_finally)
                    self._merge(merged, merged, h_state)
                if not t_body:
                    self._walk(stmt.orelse, body_state, tracked, fn, in_finally)
                    self._merge(merged, merged, body_state)
                t_fin = self._walk(stmt.finalbody, merged, tracked, fn, in_finally=True)
                state.clear(); state.update(merged)
                if t_fin:
                    return True
                continue
            if isinstance(stmt, ast.With):
                for item in stmt.items:
                    self._scan_expr(item.context_expr, state, tracked, fn)
                    if (
                        isinstance(item.context_expr, ast.Call)
                        and item.optional_vars is not None
                        and isinstance(item.optional_vars, ast.Name)
                        and item.optional_vars.id in tracked
                    ):
                        state[item.optional_vars.id] = _OPEN
                term = self._walk(stmt.body, state, tracked, fn, in_finally)
                for item in stmt.items:
                    if isinstance(item.optional_vars, ast.Name) and (
                        item.optional_vars.id in tracked
                    ):
                        # context manager closes on exit
                        tracked[item.optional_vars.id].ever_closed = True
                        tracked[item.optional_vars.id].close_node = stmt
                        state[item.optional_vars.id] = _CLOSED
                if term:
                    return True
                continue
            # plain statement: scan for close()/use() calls
            self._scan_expr(stmt, state, tracked, fn)
        return False

    def _merge(
        self, into: dict[str, str], s1: dict[str, str], s2: dict[str, str]
    ) -> None:
        into.clear()
        for var in set(s1) | set(s2):
            a, b = s1.get(var), s2.get(var)
            if a == b and a is not None:
                into[var] = a
            elif a is not None or b is not None:
                into[var] = _MAYBE

    def _scan_expr(
        self,
        node: ast.AST,
        state: dict[str, str],
        tracked: dict[str, _Tracked],
        fn: FunctionInfo,
    ) -> None:
        for sub in ast.walk(node):
            if not (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and isinstance(sub.func.value, ast.Name)
                and sub.func.value.id in tracked
            ):
                continue
            var = sub.func.value.id
            info = tracked[var]
            rtype = RESOURCE_TYPES[info.rtype]
            method = sub.func.attr
            current = state.get(var)
            if method in rtype.close_methods:
                if current == _CLOSED:
                    self.diags.append(
                        _diag(
                            "RES002",
                            f"double close: {var}.{method}() on an already-closed"
                            f" {info.rtype}",
                            fn.qualname,
                            fn.path,
                            sub,
                        )
                    )
                state[var] = _CLOSED
                info.ever_closed = True
                if info.close_node is None:
                    info.close_node = sub
            elif method in rtype.use_methods:
                if current == _CLOSED:
                    self.diags.append(
                        _diag(
                            "RES003",
                            f"use after close: {var}.{method}() after"
                            f" {info.rtype} was closed on this path",
                            fn.qualname,
                            fn.path,
                            sub,
                        )
                    )

    # -- leak checks ----------------------------------------------------
    def _leak_checks(
        self, fn: FunctionInfo, tracked: dict[str, _Tracked], state: dict[str, str]
    ) -> None:
        assert isinstance(fn.node, (ast.FunctionDef, ast.AsyncFunctionDef))
        parents = _parent_map(fn.node)
        for info in tracked.values():
            if info.escaped:
                continue
            if not info.ever_closed:
                self.diags.append(
                    _diag(
                        "RES001",
                        f"{info.rtype} '{info.var}' is never closed in"
                        f" {fn.name}() and does not escape",
                        fn.qualname,
                        fn.path,
                        info.node,
                    )
                )
                continue
            if state.get(info.var) == _MAYBE:
                self.diags.append(
                    _diag(
                        "RES001",
                        f"{info.rtype} '{info.var}' is closed on some paths"
                        f" but not all in {fn.name}()",
                        fn.qualname,
                        fn.path,
                        info.node,
                    )
                )
                continue
            if info.close_node is not None and not self._exception_safe(
                info, parents
            ) and self._hazard_between(fn, info):
                self.diags.append(
                    _diag(
                        "RES001",
                        f"{info.rtype} '{info.var}' leaks if a call between"
                        f" acquisition and close raises; close it in a"
                        " finally block or use a context manager",
                        fn.qualname,
                        fn.path,
                        info.node,
                    )
                )

    def _exception_safe(self, info: _Tracked, parents: dict[ast.AST, ast.AST]) -> bool:
        """Close sits in a ``finally`` block or ``with`` handles it."""
        node = info.close_node
        if isinstance(node, ast.With):
            return True
        while node is not None:
            parent = parents.get(node)
            if isinstance(parent, ast.Try) and any(
                n is node or _contains(n, node) for n in parent.finalbody
            ):
                return True
            node = parent
        return False

    def _hazard_between(self, fn: FunctionInfo, info: _Tracked) -> bool:
        """A possibly-raising call between acquisition and release."""
        start = getattr(info.node, "lineno", 0)
        end = getattr(info.close_node, "lineno", 1 << 30)
        assert isinstance(fn.node, (ast.FunctionDef, ast.AsyncFunctionDef))
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            line = getattr(node, "lineno", 0)
            if not (start < line < end):
                continue
            name = _rightmost(node.func)
            if name in _SAFE_CALLS:
                continue
            if (
                isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == info.var
                and name in RESOURCE_TYPES[info.rtype].close_methods
            ):
                continue
            return True
        return False


def _parent_map(root: ast.AST) -> dict[ast.AST, ast.AST]:
    out: dict[ast.AST, ast.AST] = {}
    for node in ast.walk(root):
        for child in ast.iter_child_nodes(node):
            out[child] = node
    return out


def _contains(root: ast.AST, target: ast.AST) -> bool:
    return any(n is target for n in ast.walk(root))


# ======================================================================
# entry points
# ======================================================================
def dataflow_diagnostics(
    graph: CallGraph, *, ignore: Iterable[str] = ()
) -> list[Diagnostic]:
    """All UNI/EXC/RES findings over an already-built call graph."""
    diags: list[Diagnostic] = []

    return_units = compute_return_units(graph)
    unit_checker = _UnitChecker(graph, return_units)
    for fn in graph.functions.values():
        unit_checker.check_function(fn)
    diags.extend(unit_checker.diags)
    diags.extend(_GaugeChecker(graph).run())

    escapes = compute_escaping_exceptions(graph)
    diags.extend(_ExceptionChecker(graph, escapes).run())

    diags.extend(_ResourceChecker(graph).run())

    # per-file inline suppressions + global ignores
    suppressions = {
        path: parse_suppressions(source) for path, source in graph.sources.items()
    }
    out: list[Diagnostic] = []
    for d in diags:
        sup = suppressions.get(d.file or "")
        out.extend(filter_diagnostics([d], ignore=ignore, suppressions=sup))
    return out


def analyze_dataflow(paths: Iterable[str], *, ignore: Iterable[str] = ()) -> list[Diagnostic]:
    """Build the call graph over ``paths`` and run every dataflow pass."""
    graph = build_call_graph(paths)
    return dataflow_diagnostics(graph, ignore=ignore)
