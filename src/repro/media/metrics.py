"""Image quality and rate metrics used throughout the evaluation.

The paper reports three quantities for the image viewer (Figs. 6–7):

* **number of packets** accepted (1..16, powers of two);
* **BPP** — bits per pixel actually used, ``bits / (h*w)`` (for color
  images the channel bits all count against the same pixel budget, which
  is how the paper's 14.3-BPP color numbers arise);
* **compression ratio** — raw bits over coded bits, with raw = 8 bits per
  channel per pixel.

PSNR supplements these as the standard distortion measure.
"""

from __future__ import annotations

import numpy as np

__all__ = ["mse", "psnr", "bpp", "compression_ratio", "raw_bits"]


def mse(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Mean squared error between two images of identical shape."""
    a = np.asarray(original, dtype=float)
    b = np.asarray(reconstructed, dtype=float)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch {a.shape} vs {b.shape}")
    return float(np.mean((a - b) ** 2))


def psnr(original: np.ndarray, reconstructed: np.ndarray, peak: float = 255.0) -> float:
    """Peak signal-to-noise ratio in dB (``inf`` for identical images)."""
    m = mse(original, reconstructed)
    if m == 0.0:
        return float("inf")
    return 10.0 * np.log10(peak * peak / m)


def raw_bits(shape: tuple[int, ...], bits_per_sample: int = 8) -> int:
    """Uncompressed size in bits of an image of ``shape``."""
    n = 1
    for s in shape:
        n *= int(s)
    return n * bits_per_sample


def bpp(bits_used: int, shape: tuple[int, ...]) -> float:
    """Bits per *pixel*: channel bits share the pixel denominator."""
    h, w = shape[0], shape[1]
    if h <= 0 or w <= 0:
        raise ValueError(f"bad shape {shape}")
    return bits_used / (h * w)


def compression_ratio(bits_used: int, shape: tuple[int, ...], bits_per_sample: int = 8) -> float:
    """Raw bits over coded bits (``inf`` when nothing was coded)."""
    if bits_used <= 0:
        return float("inf")
    return raw_bits(shape, bits_per_sample) / bits_used
