"""Verbal description of an image — the text modality tier.

"A verbal description can be tagged to this sketch and can be used to
enable clients with minimal capabilities (e.g., a client on a wireless
connection) to be effective participants" (paper Sec. 5.4).

The generator is rule-based and deterministic: it segments bright/dark
regions (``scipy.ndimage.label``), characterises their size and location,
and emits a short natural-language summary.  Determinism matters — the
same shared image must produce the same text at every client.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

__all__ = ["ImageDescription", "describe_image"]

_POSITIONS = {
    (0, 0): "top-left",
    (0, 1): "top-centre",
    (0, 2): "top-right",
    (1, 0): "middle-left",
    (1, 1): "centre",
    (1, 2): "middle-right",
    (2, 0): "bottom-left",
    (2, 1): "bottom-centre",
    (2, 2): "bottom-right",
}


@dataclass(frozen=True)
class ImageDescription:
    """Structured description plus its rendered text."""

    shape: tuple[int, ...]
    mean_brightness: float
    contrast: float
    n_bright_regions: int
    n_dark_regions: int
    region_summaries: tuple[str, ...]
    text: str

    @property
    def n_bytes(self) -> int:
        """Wire size of the textual description."""
        return len(self.text.encode("utf-8"))


def _position_name(centroid: tuple[float, float], shape: tuple[int, int]) -> str:
    row = min(2, int(3 * centroid[0] / shape[0]))
    col = min(2, int(3 * centroid[1] / shape[1]))
    return _POSITIONS[(row, col)]


def _region_summaries(
    mask: np.ndarray, kind: str, shape: tuple[int, int], max_regions: int, min_frac: float
) -> list[str]:
    labels, n = ndimage.label(mask)
    if n == 0:
        return []
    sizes = ndimage.sum_labels(np.ones_like(labels), labels, index=range(1, n + 1))
    centroids = ndimage.center_of_mass(mask, labels, index=range(1, n + 1))
    order = np.argsort(sizes)[::-1]
    out = []
    total = mask.size
    for idx in order[:max_regions]:
        frac = sizes[idx] / total
        if frac < min_frac:
            break
        size_word = "large" if frac > 0.08 else "small"
        out.append(
            f"a {size_word} {kind} region in the {_position_name(centroids[idx], shape)}"
            f" (~{100 * frac:.0f}% of the frame)"
        )
    return out


def describe_image(image: np.ndarray, max_regions: int = 4) -> ImageDescription:
    """Produce the verbal description of ``image``.

    >>> from repro.media.images import collaboration_scene
    >>> d = describe_image(collaboration_scene(64, 64))
    >>> "64x64" in d.text and d.n_bright_regions >= 1
    True
    """
    img = np.asarray(image, dtype=float)
    gray = img.mean(axis=-1) if img.ndim == 3 else img
    h, w = gray.shape
    mean_b = float(gray.mean())
    contrast = float(gray.std())
    bright = gray > min(mean_b + contrast, 250.0)
    dark = gray < max(mean_b - contrast, 5.0)
    bright_s = _region_summaries(bright, "bright", (h, w), max_regions, min_frac=0.005)
    dark_s = _region_summaries(dark, "dark", (h, w), max_regions, min_frac=0.005)

    tone = (
        "dark" if mean_b < 80 else "bright" if mean_b > 175 else "mid-toned"
    )
    flatness = "high-contrast" if contrast > 60 else "low-contrast" if contrast < 20 else "moderate-contrast"
    kind = "color" if img.ndim == 3 else "grayscale"
    parts = [
        f"A {h}x{w} {kind} image, {tone} and {flatness}."
    ]
    features = bright_s + dark_s
    if features:
        parts.append("Main features: " + "; ".join(features) + ".")
    else:
        parts.append("No prominent regions; content is mostly uniform.")
    text = " ".join(parts)
    return ImageDescription(
        shape=img.shape,
        mean_brightness=mean_b,
        contrast=contrast,
        n_bright_regions=len(bright_s),
        n_dark_regions=len(dark_s),
        region_summaries=tuple(features),
        text=text,
    )
