"""Progressive image transmission: packetization of embedded bitstreams.

The image viewer splits a coded image into up to 16 packets; the inference
engine tells the receiver how many to accept (1, 2, 4, 8, 16).  Because
the EZW stream is embedded, the first *k* packets form a decodable prefix
and "image detail is hierarchically added" as more packets arrive.

Multi-channel (color) images are handled by splitting every channel's
stream into the same number of prefix increments and bundling increment
*k* of each channel into packet *k* — so any packet prefix yields a
balanced-quality color reconstruction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from .ezw import EzwEncoded, decode_image, encode_image
from .metrics import bpp, compression_ratio, psnr
from .wavelet import max_levels

__all__ = ["ImagePacket", "ImagePacketError", "ProgressiveImage", "ReceptionReport", "PACKET_COUNTS"]


class ImagePacketError(ValueError):
    """Raised on truncated or corrupt image-packet bytes."""

#: The packet counts the paper's inference engine selects among (FIG6).
PACKET_COUNTS = (1, 2, 4, 8, 16)


@dataclass(frozen=True)
class ImagePacket:
    """One transmissible increment of a progressive image.

    ``chunks[c]`` is ``(payload_bytes, n_bits)`` for channel ``c``.
    """

    index: int
    total: int
    chunks: tuple[tuple[bytes, int], ...]

    @property
    def n_bits(self) -> int:
        return sum(bits for _, bits in self.chunks)

    @property
    def n_bytes(self) -> int:
        return sum(len(data) for data, _ in self.chunks)

    def to_bytes(self) -> bytes:
        """Flatten for transmission (header: index, total, per-chunk bits)."""
        out = bytearray()
        out += self.index.to_bytes(2, "big")
        out += self.total.to_bytes(2, "big")
        out += len(self.chunks).to_bytes(1, "big")
        for data, bits in self.chunks:
            out += bits.to_bytes(4, "big")
            out += len(data).to_bytes(4, "big")
            out += data
        return bytes(out)

    @classmethod
    def from_bytes(cls, raw: bytes) -> "ImagePacket":
        """Inverse of :meth:`to_bytes`; :class:`ImagePacketError` on
        truncated or corrupt input (short slices would otherwise decode
        silently-wrong values, not just crash)."""
        if len(raw) < 5:
            raise ImagePacketError(f"packet header needs 5 bytes, have {len(raw)}")
        index = int.from_bytes(raw[0:2], "big")
        total = int.from_bytes(raw[2:4], "big")
        n_chunks = raw[4]
        chunks = []
        pos = 5
        for _ in range(n_chunks):
            if pos + 8 > len(raw):
                raise ImagePacketError("truncated chunk header")
            bits = int.from_bytes(raw[pos : pos + 4], "big")
            ln = int.from_bytes(raw[pos + 4 : pos + 8], "big")
            end = pos + 8 + ln
            if end > len(raw):
                raise ImagePacketError(f"chunk payload runs past the packet: need {end} byte(s), have {len(raw)}")
            chunks.append((raw[pos + 8 : end], bits))
            pos = end
        return cls(index, total, tuple(chunks))


@dataclass
class ReceptionReport:
    """Metrics of a reconstruction from a subset of packets."""

    packets_used: int
    bits_used: int
    bpp: float
    compression_ratio: float
    psnr_db: float


class ProgressiveImage:
    """Encode once, packetize, reconstruct from any packet prefix.

    Parameters
    ----------
    image:
        ``uint8`` grayscale ``(h, w)`` or color ``(h, w, 3)``.
    n_packets:
        How many packets to cut the stream into (paper: 16).
    target_bpp:
        Optional rate control: cap the full-quality stream at this many
        bits per pixel (channel bits share the pixel budget).  ``None``
        encodes to (near-)lossless depth.
    levels:
        Wavelet decomposition depth; defaults to the deepest supported.
    """

    def __init__(
        self,
        image: np.ndarray,
        n_packets: int = 16,
        target_bpp: Optional[float] = None,
        levels: Optional[int] = None,
    ) -> None:
        img = np.asarray(image)
        if img.ndim == 2:
            channels = [img]
        elif img.ndim == 3:
            channels = [img[..., c] for c in range(img.shape[-1])]
        else:
            raise ValueError(f"expected 2-D or 3-D image, got ndim={img.ndim}")
        if n_packets < 1:
            raise ValueError("n_packets must be >= 1")
        self.image = img
        self.shape = img.shape
        self.n_packets = n_packets
        h, w = img.shape[0], img.shape[1]
        self.levels = levels if levels is not None else min(5, max_levels((h, w)))
        if self.levels < 1:
            raise ValueError(f"image {h}x{w} supports no wavelet levels")

        per_channel_bits: Optional[int] = None
        if target_bpp is not None:
            per_channel_bits = max(1, int(target_bpp * h * w / len(channels)))
        self.encoded: list[EzwEncoded] = [
            encode_image(ch, self.levels, max_bits=per_channel_bits) for ch in channels
        ]
        self.total_bits = sum(e.payload_bits for e in self.encoded)

    # ------------------------------------------------------------------
    def packets(self) -> list[ImagePacket]:
        """Cut every channel stream into ``n_packets`` prefix increments."""
        out = []
        # per-channel cut points in bits, byte-aligned for cheap slicing
        cuts = []
        for enc in self.encoded:
            edges = np.linspace(0, enc.payload_bits, self.n_packets + 1)
            edges = (np.round(edges / 8).astype(int) * 8)
            edges[-1] = enc.payload_bits
            cuts.append(edges)
        for k in range(self.n_packets):
            chunks = []
            for enc, edges in zip(self.encoded, cuts):
                b0, b1 = int(edges[k]), int(edges[k + 1])
                data = enc.payload[b0 // 8 : (b1 + 7) // 8]
                chunks.append((data, b1 - b0))
            out.append(ImagePacket(k, self.n_packets, tuple(chunks)))
        return out

    # ------------------------------------------------------------------
    def reconstruct(self, n_received: int) -> np.ndarray:
        """Decode from the first ``n_received`` packets (clamped to range)."""
        k = max(0, min(self.n_packets, int(n_received)))
        frac_bits = self._prefix_bits(k)
        recon_channels = []
        for enc, bits in zip(self.encoded, frac_bits):
            rec = decode_image(enc.truncated(bits))
            recon_channels.append(np.clip(rec, 0, 255))
        if self.image.ndim == 2:
            return recon_channels[0]
        return np.stack(recon_channels, axis=-1)

    def _prefix_bits(self, k: int) -> list[int]:
        out = []
        for enc in self.encoded:
            edges = np.linspace(0, enc.payload_bits, self.n_packets + 1)
            edges = (np.round(edges / 8).astype(int) * 8)
            edges[-1] = enc.payload_bits
            out.append(int(edges[k]))
        return out

    def report(self, n_received: int) -> ReceptionReport:
        """Reconstruct and compute the paper's three metrics (+PSNR)."""
        k = max(0, min(self.n_packets, int(n_received)))
        bits_used = sum(self._prefix_bits(k))
        recon = self.reconstruct(k)
        return ReceptionReport(
            packets_used=k,
            bits_used=bits_used,
            bpp=bpp(bits_used, self.shape[:2]),
            compression_ratio=compression_ratio(bits_used, self.shape),
            psnr_db=psnr(self.image, recon),
        )

    def reports(self, packet_counts: Sequence[int] = PACKET_COUNTS) -> list[ReceptionReport]:
        """Reception reports for a series of packet counts (FIG6/7 rows)."""
        return [self.report(k) for k in packet_counts]

    @property
    def t0_exps(self) -> tuple[int, ...]:
        """Per-channel EZW threshold exponents (decode parameters)."""
        return tuple(e.t0_exp for e in self.encoded)

    @property
    def channels(self) -> int:
        return 1 if self.image.ndim == 2 else self.image.shape[-1]


class ReceivedImage:
    """Receiver-side assembly of a progressive image from packets.

    Construct from the announce metadata (shape, levels, per-channel
    threshold exponents, packet count), feed :class:`ImagePacket` objects
    as they arrive (any order), and :meth:`reconstruct` from whatever
    contiguous prefix is available — embedded coding means a missing
    middle packet caps usable quality at the gap.
    """

    def __init__(
        self,
        height: int,
        width: int,
        channels: int,
        levels: int,
        t0_exps: Sequence[int],
        n_packets: int,
    ) -> None:
        if len(t0_exps) != channels:
            raise ValueError(f"need one t0_exp per channel: {len(t0_exps)} vs {channels}")
        self.height = height
        self.width = width
        self.n_channels = channels
        self.levels = levels
        self.t0_exps = tuple(int(e) for e in t0_exps)
        self.n_packets = n_packets
        self._packets: dict[int, ImagePacket] = {}

    def add_packet(self, packet: ImagePacket) -> None:
        """Store one packet; duplicates are idempotent."""
        if packet.total != self.n_packets:
            raise ValueError(
                f"packet advertises {packet.total} packets, expected {self.n_packets}"
            )
        if not (0 <= packet.index < self.n_packets):
            raise ValueError(f"packet index {packet.index} out of range")
        self._packets[packet.index] = packet

    @property
    def received(self) -> int:
        """Number of distinct packets held."""
        return len(self._packets)

    @property
    def usable_prefix(self) -> int:
        """Length of the contiguous prefix from packet 0."""
        k = 0
        while k in self._packets:
            k += 1
        return k

    def prefix_bits(self, k: Optional[int] = None) -> int:
        """Payload bits in the first ``k`` packets (default: usable prefix)."""
        k = self.usable_prefix if k is None else k
        return sum(self._packets[i].n_bits for i in range(k))

    def reconstruct(self, max_packets: Optional[int] = None) -> np.ndarray:
        """Decode from the usable prefix (optionally capped)."""
        k = self.usable_prefix
        if max_packets is not None:
            k = min(k, max_packets)
        # concatenate each channel's chunks across the prefix
        recon_channels = []
        for c in range(self.n_channels):
            data = bytearray()
            bits = 0
            for i in range(k):
                chunk, nbits = self._packets[i].chunks[c]
                data += chunk
                bits += nbits
            enc = EzwEncoded(
                (self.height, self.width), self.levels, self.t0_exps[c], bytes(data), bits
            )
            recon_channels.append(np.clip(decode_image(enc), 0, 255))
        if self.n_channels == 1:
            return recon_channels[0]
        return np.stack(recon_channels, axis=-1)

    def thumbnail(self, scale_levels: int = 2, max_packets: Optional[int] = None) -> np.ndarray:
        """A reduced-resolution view of the current reconstruction.

        "Each of the users may access the same visual information but at
        different resolutions" — a thin client renders the 2^-k-scale
        approximation directly from the wavelet pyramid, paying no
        full-resolution inverse transform.
        """
        from .ezw import EzwEncoded, ezw_decode
        from .wavelet import haar_idwt2_partial

        k = self.usable_prefix if max_packets is None else min(self.usable_prefix, max_packets)
        channels = []
        for c in range(self.n_channels):
            data = bytearray()
            bits = 0
            for i in range(k):
                chunk, nbits = self._packets[i].chunks[c]
                data += chunk
                bits += nbits
            enc = EzwEncoded(
                (self.height, self.width), self.levels, self.t0_exps[c], bytes(data), bits
            )
            coeffs = ezw_decode(enc)
            skip = min(scale_levels, self.levels)
            channels.append(
                np.clip(haar_idwt2_partial(coeffs, self.levels, skip), 0, 255)
            )
        if self.n_channels == 1:
            return channels[0]
        return np.stack(channels, axis=-1)

    def report(self, original: Optional[np.ndarray] = None, max_packets: Optional[int] = None) -> ReceptionReport:
        """Metrics of the current reconstruction (PSNR needs the original)."""
        k = self.usable_prefix if max_packets is None else min(self.usable_prefix, max_packets)
        bits = self.prefix_bits(k)
        shape = (
            (self.height, self.width)
            if self.n_channels == 1
            else (self.height, self.width, self.n_channels)
        )
        p = float("nan")
        if original is not None:
            p = psnr(original, self.reconstruct(k))
        return ReceptionReport(
            packets_used=k,
            bits_used=bits,
            bpp=bpp(bits, shape[:2]),
            compression_ratio=compression_ratio(bits, shape),
            psnr_db=p,
        )
