"""Embedded zerotree wavelet coder (Shapiro 1992, paper ref [23]).

The image viewer's progressive codec: wavelet coefficients are bit-plane
coded in significance order so that *any prefix* of the bitstream decodes
to a valid approximation — exactly the "image detail is hierarchically
added to the sketch" behaviour the paper's adaptation relies on.  The
inference engine then picks how many packets (prefix length) a client
accepts.

Algorithm sketch (per Shapiro):

* threshold schedule ``T_0 = 2**floor(log2 max|c|)``, halved each round;
* **dominant pass**: scan coefficients coarse→fine; newly significant ones
  emit POS/NEG, insignificant subtree roots emit ZTR (their descendants
  are skipped this pass), otherwise IZ;
* **subordinate pass**: one magnitude-refinement bit for every
  already-significant coefficient (successive interval halving).

Symbol prefix code: ``0``=ZTR/Z, ``10``=IZ, ``110``=POS, ``111``=NEG.
The decoder replays the same scan from the symbols alone, so encoder and
decoder stay in lock-step at any truncation point.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from .bitstream import BitReader, BitWriter, OutOfBits
from .wavelet import haar_dwt2, haar_idwt2

__all__ = ["EzwEncoded", "ezw_encode", "ezw_decode", "encode_image", "decode_image"]


# ----------------------------------------------------------------------
# tree structure (cached per geometry)
# ----------------------------------------------------------------------
@lru_cache(maxsize=32)
def _structure(h: int, w: int, levels: int) -> tuple[np.ndarray, tuple, np.ndarray]:
    """Scan order, children lists and child counts for an (h, w) pyramid.

    Returns ``(scan, children, n_children)`` where ``scan`` is a flat-index
    array in coarse→fine order, ``children[f]`` is a tuple of flat child
    indices and ``n_children[f]`` their count.
    """
    return _structure_impl(h, w, levels)


@lru_cache(maxsize=32)
def _descendants(h: int, w: int, levels: int) -> tuple:
    """Per-node arrays of *all* strict descendants (for ZTR skip-marking).

    Built bottom-up so each node's array is its children plus their
    descendant arrays; total storage is O(n · levels).  Marking a whole
    zerotree then costs one vectorized fancy-index assignment instead of
    a Python stack walk (the profiler's top hot spot).
    """
    scan, children, _ = _structure(h, w, levels)
    desc: list = [None] * (h * w)
    empty = np.empty(0, dtype=np.int64)
    for f in scan[::-1]:  # fine → coarse: children before parents
        kids = children[f]
        if not kids:
            desc[f] = empty
        else:
            parts = [np.asarray(kids, dtype=np.int64)]
            parts.extend(desc[k] for k in kids)
            desc[f] = np.concatenate(parts)
    return tuple(desc)


def _structure_impl(h: int, w: int, levels: int) -> tuple[np.ndarray, tuple, np.ndarray]:
    def flat(i: np.ndarray, j: np.ndarray) -> np.ndarray:
        return i * w + j

    scan_parts: list[np.ndarray] = []
    h0, w0 = h >> levels, w >> levels
    ii, jj = np.mgrid[0:h0, 0:w0]
    scan_parts.append(flat(ii, jj).ravel())
    for k in range(levels, 0, -1):  # coarsest detail level first
        hk, wk = h >> k, w >> k
        ii, jj = np.mgrid[0:hk, 0:wk]
        scan_parts.append(flat(ii, jj + wk).ravel())       # HL
        scan_parts.append(flat(ii + hk, jj).ravel())       # LH
        scan_parts.append(flat(ii + hk, jj + wk).ravel())  # HH
    scan = np.concatenate(scan_parts)

    children: list[tuple[int, ...]] = [() for _ in range(h * w)]
    # LL parents: three same-scale detail children each
    for i in range(h0):
        for j in range(w0):
            children[i * w + j] = (
                i * w + (j + w0),
                (i + h0) * w + j,
                (i + h0) * w + (j + w0),
            )
    # detail bands above the finest: 2x2 child blocks one level finer
    for k in range(levels, 1, -1):
        hk, wk = h >> k, w >> k
        for name_i, name_j in ((0, wk), (hk, 0), (hk, wk)):  # HL, LH, HH origins
            for i in range(hk):
                for j in range(wk):
                    pi, pj = name_i + i, name_j + j
                    ci, cj = 2 * pi, 2 * pj
                    children[pi * w + pj] = (
                        ci * w + cj,
                        ci * w + cj + 1,
                        (ci + 1) * w + cj,
                        (ci + 1) * w + cj + 1,
                    )
    n_children = np.array([len(c) for c in children], dtype=np.int64)
    return scan, tuple(children), n_children


def _descendant_max(coeffs_abs: np.ndarray, scan: np.ndarray, children: tuple) -> np.ndarray:
    """Max |coefficient| over all strict descendants of each node."""
    flat = coeffs_abs.ravel()
    D = np.zeros_like(flat)
    for f in scan[::-1]:  # fine → coarse: children before parents
        kids = children[f]
        if kids:
            D[f] = max(max(flat[c], D[c]) for c in kids)
    return D


# ----------------------------------------------------------------------
# encoded container
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EzwEncoded:
    """An EZW bitstream plus the header needed to decode any prefix."""

    shape: tuple[int, int]
    levels: int
    t0_exp: int          # T0 = 2.0 ** t0_exp
    payload: bytes
    payload_bits: int

    @property
    def total_bits(self) -> int:
        return self.payload_bits

    def truncated(self, max_bits: int) -> "EzwEncoded":
        """A prefix of this stream limited to ``max_bits`` payload bits."""
        bits = max(0, min(self.payload_bits, int(max_bits)))
        nbytes = (bits + 7) // 8
        return EzwEncoded(self.shape, self.levels, self.t0_exp, self.payload[:nbytes], bits)


# ----------------------------------------------------------------------
# encoder
# ----------------------------------------------------------------------
def ezw_encode(
    coeffs: np.ndarray, levels: int, max_bits: int | None = None, min_threshold: float = 0.5
) -> EzwEncoded:
    """Encode a wavelet-coefficient array into an embedded bitstream.

    ``max_bits`` stops the encoder early (rate control); ``min_threshold``
    bounds the deepest refinement (0.5 ≈ lossless for integer inputs under
    the orthonormal Haar up to rounding).
    """
    c = np.asarray(coeffs, dtype=float)
    h, w = c.shape
    scan, children, _ = _structure(h, w, levels)
    flat = c.ravel()
    mags = np.abs(flat)
    cmax = float(mags.max())
    if cmax == 0.0:
        return EzwEncoded((h, w), levels, 0, b"", 0)
    t0_exp = int(np.floor(np.log2(cmax)))
    T = 2.0 ** t0_exp
    D = _descendant_max(mags, scan, children)

    writer = BitWriter()
    significant = np.zeros(flat.shape[0], dtype=bool)
    sub_order: list[int] = []        # flat indices, in significance order
    low = np.zeros(flat.shape[0])    # current interval low per significant coeff
    width = np.zeros(flat.shape[0])
    skip_pass = np.zeros(flat.shape[0], dtype=bool)
    budget = max_bits if max_bits is not None else float("inf")

    def over_budget() -> bool:
        return writer.bits_written >= budget

    descendants = _descendants(coeffs.shape[0], coeffs.shape[1], levels)
    write_bit = writer.write_bit
    write_bits = writer.write_bits
    while T >= min_threshold and not over_budget():
        # ---- dominant pass --------------------------------------------
        skip_pass[:] = False
        for f in scan:
            if writer.bits_written >= budget:
                break
            if skip_pass[f] or significant[f]:
                continue
            mag = mags[f]
            if mag >= T:
                write_bits(0b110 if flat[f] >= 0 else 0b111, 3)
                significant[f] = True
                sub_order.append(f)
                low[f] = T
                width[f] = T
            else:
                if D[f] < T:           # zerotree root (or leaf zero)
                    write_bit(0)
                    skip_pass[descendants[f]] = True
                else:                  # isolated zero
                    write_bits(0b10, 2)
        # ---- subordinate pass -----------------------------------------
        for f in sub_order:
            if over_budget():
                break
            half = width[f] / 2.0
            if mags[f] >= low[f] + half:
                writer.write_bit(1)
                low[f] += half
            else:
                writer.write_bit(0)
            width[f] = half
        T /= 2.0

    payload = writer.getvalue()
    return EzwEncoded((h, w), levels, t0_exp, payload, writer.bits_written)


# ----------------------------------------------------------------------
# decoder
# ----------------------------------------------------------------------
def ezw_decode(encoded: EzwEncoded, min_threshold: float = 0.5) -> np.ndarray:
    """Decode (a possibly truncated) EZW stream back to coefficients.

    Runs the same scan as the encoder, reconstructing each significant
    coefficient at the midpoint of its current uncertainty interval.
    Exhausting the stream mid-pass simply stops refinement.
    """
    h, w = encoded.shape
    scan, children, _ = _structure(h, w, encoded.levels)
    n = h * w
    recon = np.zeros(n)
    if encoded.payload_bits == 0:
        return recon.reshape(h, w)
    reader = BitReader(encoded.payload, bit_limit=encoded.payload_bits)
    significant = np.zeros(n, dtype=bool)
    sign = np.zeros(n)
    low = np.zeros(n)
    width = np.zeros(n)
    sub_order: list[int] = []
    skip_pass = np.zeros(n, dtype=bool)
    T = 2.0 ** encoded.t0_exp

    descendants = _descendants(h, w, encoded.levels)
    try:
        while T >= min_threshold:
            skip_pass[:] = False
            for f in scan:
                if skip_pass[f] or significant[f]:
                    continue
                b0 = reader.read_bit()
                if b0 == 0:            # ZTR / Z
                    skip_pass[descendants[f]] = True
                    continue
                b1 = reader.read_bit()
                if b1 == 0:            # IZ
                    continue
                b2 = reader.read_bit()  # POS / NEG
                significant[f] = True
                sign[f] = 1.0 if b2 == 0 else -1.0
                low[f] = T
                width[f] = T
                sub_order.append(f)
            for f in sub_order:
                half = width[f] / 2.0
                if reader.read_bit():
                    low[f] += half
                width[f] = half
            T /= 2.0
    except OutOfBits:
        pass

    mask = significant
    recon[mask] = sign[mask] * (low[mask] + width[mask] / 2.0)
    return recon.reshape(h, w)


# ----------------------------------------------------------------------
# image-level convenience (single channel)
# ----------------------------------------------------------------------
def encode_image(image: np.ndarray, levels: int, max_bits: int | None = None) -> EzwEncoded:
    """DWT + EZW-encode one grayscale channel (float or uint8)."""
    coeffs = haar_dwt2(np.asarray(image, dtype=float), levels)
    return ezw_encode(coeffs, levels, max_bits=max_bits)


def decode_image(encoded: EzwEncoded) -> np.ndarray:
    """Decode one channel and invert the DWT (float output)."""
    coeffs = ezw_decode(encoded)
    return haar_idwt2(coeffs, encoded.levels)
