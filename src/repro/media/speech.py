"""Synthetic speech: text→speech and speech→text transformers.

Real TTS engines are unavailable offline, so we implement a *frequency-
keyed* synthetic voice: each character maps to a distinct sine-tone frame.
This preserves everything the framework cares about — a speech rendition
whose size scales with text length, that round-trips back to text (our
"speech recognition" decodes the tones via FFT), and whose bandwidth cost
the QoS policies can reason about.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "SpeechClip",
    "text_to_speech",
    "speech_to_text",
    "SpeechError",
    "quantize_u8",
    "dequantize_u8",
]

#: Samples per second of the synthetic voice.
SAMPLE_RATE = 8000
#: Samples per character frame.
FRAME = 160  # 20 ms
#: Base frequency (Hz) and per-symbol spacing.  With 160-sample frames at
#: 8 kHz the FFT bin width is 50 Hz, so symbols sit exactly on bins.
F0 = 400.0
F_STEP = 50.0

_ALPHABET = " abcdefghijklmnopqrstuvwxyz0123456789.,;:!?'\"()-%/"
_CHAR_TO_IDX = {c: i for i, c in enumerate(_ALPHABET)}


class SpeechError(ValueError):
    """Raised on unsynthesizable input or undecodable audio."""


@dataclass(frozen=True)
class SpeechClip:
    """A synthetic speech waveform with provenance metadata."""

    samples: np.ndarray          # float32 in [-1, 1]
    sample_rate: int
    text_length: int

    @property
    def duration(self) -> float:
        """Clip length in seconds."""
        return len(self.samples) / self.sample_rate

    @property
    def n_bytes(self) -> int:
        """Wire size assuming 8-bit mu-law-style quantization."""
        return len(self.samples)


def _char_freq(idx: int) -> float:
    return F0 + F_STEP * idx


def text_to_speech(text: str) -> SpeechClip:
    """Render ``text`` as a frequency-keyed waveform.

    Unknown characters are mapped to space (lossy, like any TTS front
    end normalising its input).
    """
    if not text:
        raise SpeechError("cannot synthesize empty text")
    norm = text.lower()
    t = np.arange(FRAME) / SAMPLE_RATE
    window = np.hanning(FRAME)
    frames = []
    for ch in norm:
        idx = _CHAR_TO_IDX.get(ch, 0)
        frames.append(np.sin(2 * np.pi * _char_freq(idx) * t) * window)
    samples = np.concatenate(frames).astype(np.float32)
    return SpeechClip(samples=samples, sample_rate=SAMPLE_RATE, text_length=len(norm))


def quantize_u8(clip: SpeechClip) -> bytes:
    """8-bit wire form of a clip ([-1, 1] → 0..255), for SpeechShareEvent."""
    q = np.clip((clip.samples + 1.0) * 127.5, 0, 255).astype(np.uint8)
    return q.tobytes()


def dequantize_u8(data: bytes, sample_rate: int = SAMPLE_RATE) -> SpeechClip:
    """Inverse of :func:`quantize_u8` (text_length unknown → frame count)."""
    samples = np.frombuffer(data, dtype=np.uint8).astype(np.float32) / 127.5 - 1.0
    return SpeechClip(
        samples=samples, sample_rate=sample_rate, text_length=len(samples) // FRAME
    )


def speech_to_text(clip: SpeechClip) -> str:
    """Decode a frequency-keyed clip back to text (per-frame FFT peak)."""
    n = len(clip.samples)
    if n == 0 or n % FRAME:
        raise SpeechError(f"clip length {n} is not a whole number of frames")
    frames = clip.samples.reshape(-1, FRAME)
    spectrum = np.abs(np.fft.rfft(frames, axis=1))
    freqs = np.fft.rfftfreq(FRAME, d=1.0 / clip.sample_rate)
    peak_freqs = freqs[np.argmax(spectrum, axis=1)]
    indices = np.clip(
        np.round((peak_freqs - F0) / F_STEP).astype(int), 0, len(_ALPHABET) - 1
    )
    return "".join(_ALPHABET[i] for i in indices)
