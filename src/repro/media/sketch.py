"""Sketch extraction: the "base image" modality tier.

"The module uses robust segmentation of the image to extract a realistic
sketch of the main features.  This sketch preserves the essential
information required for effective collaboration, and requires up to 2000
times lesser data than the original" (paper Sec. 5.4).

Pipeline: Sobel gradient magnitude → percentile threshold → optional
block-max downsampling → 1-bit run-length coding.  On the synthetic
collaboration scene at 256×256 RGB this lands in the paper's ~2000×
reduction regime (see ``tests/media/test_sketch.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["sobel_magnitude", "extract_sketch", "Sketch", "SketchError"]


class SketchError(ValueError):
    """Raised on invalid sketch parameters or corrupt encodings."""


def sobel_magnitude(image: np.ndarray) -> np.ndarray:
    """Gradient magnitude via 3×3 Sobel kernels (vectorized, edge-padded)."""
    g = np.asarray(image, dtype=float)
    if g.ndim == 3:
        g = g.mean(axis=-1)
    if g.ndim != 2:
        raise SketchError(f"expected 2-D or 3-D image, got ndim={g.ndim}")
    p = np.pad(g, 1, mode="edge")
    # Sobel responses written as shifted-view sums: no Python loops.
    gx = (
        (p[:-2, 2:] + 2 * p[1:-1, 2:] + p[2:, 2:])
        - (p[:-2, :-2] + 2 * p[1:-1, :-2] + p[2:, :-2])
    )
    gy = (
        (p[2:, :-2] + 2 * p[2:, 1:-1] + p[2:, 2:])
        - (p[:-2, :-2] + 2 * p[:-2, 1:-1] + p[:-2, 2:])
    )
    return np.hypot(gx, gy)


@dataclass(frozen=True)
class Sketch:
    """A 1-bit feature sketch plus its compact wire encoding."""

    shape: tuple[int, int]          # sketch resolution (possibly downsampled)
    source_shape: tuple[int, ...]   # original image shape
    mask: np.ndarray                # bool (h, w)
    encoded: bytes                  # RLE wire form

    @property
    def n_bytes(self) -> int:
        """Wire size of the sketch."""
        return len(self.encoded)

    def reduction_factor(self, bits_per_sample: int = 8) -> float:
        """Raw image bytes / sketch bytes — the paper's "2000 times"."""
        raw = int(np.prod(self.source_shape)) * bits_per_sample // 8
        return raw / max(self.n_bytes, 1)

    def to_image(self) -> np.ndarray:
        """Render the sketch as uint8 (features white on black)."""
        return (self.mask.astype(np.uint8)) * 255


def _rle_encode(bits: np.ndarray) -> bytes:
    """Run-length encode a flat boolean array, runs as varint counts.

    Stream starts with the first bit value, then alternating run lengths
    in LEB128 varints.
    """
    flat = np.asarray(bits, dtype=bool).ravel()
    out = bytearray([1 if flat[0] else 0])
    changes = np.flatnonzero(np.diff(flat.view(np.int8)))
    edges = np.concatenate([[-1], changes, [flat.size - 1]])
    runs = np.diff(edges)
    for run in runs:
        v = int(run)
        while True:
            b = v & 0x7F
            v >>= 7
            if v:
                out.append(b | 0x80)
            else:
                out.append(b)
                break
    return bytes(out)


def _rle_decode(data: bytes, size: int) -> np.ndarray:
    """Inverse of :func:`_rle_encode`."""
    if not data:
        raise SketchError("empty RLE stream")
    bit = bool(data[0])
    out = np.empty(size, dtype=bool)
    pos_out = 0
    pos = 1
    while pos_out < size:
        if pos >= len(data):
            raise SketchError("truncated RLE stream")
        run = 0
        shift = 0
        while True:
            if pos >= len(data):
                raise SketchError("truncated RLE varint")
            b = data[pos]
            pos += 1
            run |= (b & 0x7F) << shift
            shift += 7
            if not (b & 0x80):
                break
        if pos_out + run > size:
            raise SketchError("RLE overruns declared size")
        out[pos_out : pos_out + run] = bit
        pos_out += run
        bit = not bit
    return out


def _bitpack_encode(bits: np.ndarray) -> bytes:
    """Fixed-size 1-bit packing fallback when RLE does not pay off."""
    return bytes(np.packbits(np.asarray(bits, dtype=bool).ravel()))


def _bitpack_decode(data: bytes, size: int) -> np.ndarray:
    out = np.unpackbits(np.frombuffer(data, dtype=np.uint8), count=size)
    return out.astype(bool)


def extract_sketch(
    image: np.ndarray,
    edge_percentile: float = 94.0,
    downsample: int | None = None,
) -> Sketch:
    """Extract the main-feature sketch of ``image``.

    Parameters
    ----------
    edge_percentile:
        Gradient-magnitude percentile above which a pixel is a feature.
    downsample:
        Block size for block-mean downsampling the image *before* edge
        detection (coarser sketch, smaller encoding).  1 disables
        downsampling.  ``None`` (default) adapts so the sketch lands near
        32×32 — a fixed tiny footprint that yields the paper's "up to
        2000×" reduction on large images.
    """
    if not (50.0 <= edge_percentile < 100.0):
        raise SketchError("edge_percentile must be in [50, 100)")
    img = np.asarray(image)
    if downsample is None:
        downsample = max(1, min(img.shape[0], img.shape[1]) // 32)
    if downsample < 1:
        raise SketchError("downsample must be >= 1")
    gray = np.asarray(img, dtype=float)
    if gray.ndim == 3:
        gray = gray.mean(axis=-1)
    if downsample > 1:
        h, w = gray.shape
        h2, w2 = h // downsample, w // downsample
        if h2 < 4 or w2 < 4:
            raise SketchError("downsample too large for image")
        gray = gray[: h2 * downsample, : w2 * downsample].reshape(
            h2, downsample, w2, downsample
        ).mean(axis=(1, 3))
    mag = sobel_magnitude(gray)
    threshold = np.percentile(mag, edge_percentile)
    mask = mag > threshold
    # choose the cheaper of run-length and fixed bit-packing; one format byte
    rle = _rle_encode(mask)
    packed = _bitpack_encode(mask)
    if len(rle) <= len(packed):
        encoded = b"R" + rle
    else:
        encoded = b"P" + packed
    return Sketch(
        shape=mask.shape, source_shape=img.shape, mask=mask, encoded=encoded
    )


def decode_sketch(encoded: bytes, shape: tuple[int, int], source_shape: tuple[int, ...]) -> Sketch:
    """Rebuild a :class:`Sketch` from its wire encoding."""
    if not encoded:
        raise SketchError("empty sketch encoding")
    fmt, body = encoded[:1], encoded[1:]
    size = shape[0] * shape[1]
    if fmt == b"R":
        mask = _rle_decode(body, size).reshape(shape)
    elif fmt == b"P":
        mask = _bitpack_decode(body, size).reshape(shape)
    else:
        raise SketchError(f"unknown sketch format {fmt!r}")
    return Sketch(shape=shape, source_shape=source_shape, mask=mask, encoded=encoded)
