"""Bit-level I/O for the embedded coders.

The embedded zerotree coder produces a *prefix-decodable* bitstream: any
truncation yields a valid (coarser) reconstruction.  :class:`BitReader`
therefore raises :class:`OutOfBits` instead of padding — the decoder
treats exhaustion as "stop refining here".
"""

from __future__ import annotations

__all__ = ["BitWriter", "BitReader", "OutOfBits"]


class OutOfBits(EOFError):
    """The reader hit the end of the (possibly truncated) stream."""


class BitWriter:
    """Accumulates bits MSB-first into a bytes buffer."""

    def __init__(self) -> None:
        self._bytes = bytearray()
        self._acc = 0
        self._nacc = 0
        self.bits_written = 0

    def write_bit(self, bit: int) -> None:
        """Append one bit (0 or 1)."""
        self._acc = (self._acc << 1) | (1 if bit else 0)
        self._nacc += 1
        self.bits_written += 1
        if self._nacc == 8:
            self._bytes.append(self._acc)
            self._acc = 0
            self._nacc = 0

    def write_bits(self, value: int, count: int) -> None:
        """Append ``count`` bits of ``value``, MSB first."""
        if count < 0 or (value >> count):
            raise ValueError(f"value {value} does not fit in {count} bits")
        for shift in range(count - 1, -1, -1):
            self.write_bit((value >> shift) & 1)

    def getvalue(self) -> bytes:
        """The stream so far, zero-padded to a byte boundary."""
        out = bytearray(self._bytes)
        if self._nacc:
            out.append(self._acc << (8 - self._nacc))
        return bytes(out)


class BitReader:
    """Reads bits MSB-first from a bytes buffer.

    ``bit_limit`` optionally caps the readable bits below ``8*len(data)``
    (used when a byte-aligned packetization carries a bit-exact length).
    """

    def __init__(self, data: bytes, bit_limit: int | None = None) -> None:
        self._data = data
        self._pos = 0
        self._limit = 8 * len(data) if bit_limit is None else min(bit_limit, 8 * len(data))

    @property
    def bits_read(self) -> int:
        return self._pos

    @property
    def bits_remaining(self) -> int:
        return self._limit - self._pos

    def read_bit(self) -> int:
        """Read one bit; raises :class:`OutOfBits` at stream end."""
        if self._pos >= self._limit:
            raise OutOfBits
        byte = self._data[self._pos >> 3]
        bit = (byte >> (7 - (self._pos & 7))) & 1
        self._pos += 1
        return bit

    def read_bits(self, count: int) -> int:
        """Read ``count`` bits as an unsigned integer, MSB first."""
        v = 0
        for _ in range(count):
            v = (v << 1) | self.read_bit()
        return v
