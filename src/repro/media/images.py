"""Synthetic test images (no PIL / image files offline).

The paper shares photographic images through the image viewer; offline we
generate deterministic synthetic scenes with comparable structure —
smooth backgrounds, strong edges, textured regions — so the wavelet coder
and the sketch extractor see realistic statistics.  All generators return
``uint8`` arrays, grayscale ``(h, w)`` or RGB ``(h, w, 3)``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "gradient",
    "checkerboard",
    "gaussian_blobs",
    "collaboration_scene",
    "to_rgb",
    "ImageError",
]


class ImageError(ValueError):
    """Raised on invalid image parameters."""


def _validate(h: int, w: int) -> None:
    if h < 8 or w < 8:
        raise ImageError(f"image too small: {h}x{w}")


def gradient(h: int = 128, w: int = 128, direction: str = "diagonal") -> np.ndarray:
    """A smooth ramp; the easiest content for the coder (near-zero detail).

    ``direction`` is one of ``"horizontal"``, ``"vertical"``, ``"diagonal"``.
    """
    _validate(h, w)
    ii, jj = np.mgrid[0:h, 0:w]
    if direction == "horizontal":
        ramp = jj / max(w - 1, 1)
    elif direction == "vertical":
        ramp = ii / max(h - 1, 1)
    elif direction == "diagonal":
        ramp = (ii + jj) / max(h + w - 2, 1)
    else:
        raise ImageError(f"unknown direction {direction!r}")
    return (ramp * 255).astype(np.uint8)


def checkerboard(h: int = 128, w: int = 128, cell: int = 16) -> np.ndarray:
    """Maximum-edge content; the coder's worst case."""
    _validate(h, w)
    if cell < 1:
        raise ImageError("cell must be >= 1")
    ii, jj = np.mgrid[0:h, 0:w]
    return (((ii // cell + jj // cell) % 2) * 255).astype(np.uint8)


def gaussian_blobs(
    h: int = 128, w: int = 128, n_blobs: int = 5, seed: int = 0
) -> np.ndarray:
    """Soft bright regions on a dark field (smooth, mid compressibility)."""
    _validate(h, w)
    rng = np.random.default_rng(seed)
    ii, jj = np.mgrid[0:h, 0:w]
    img = np.zeros((h, w))
    for _ in range(n_blobs):
        ci, cj = rng.uniform(0, h), rng.uniform(0, w)
        s = rng.uniform(min(h, w) / 16, min(h, w) / 6)
        amp = rng.uniform(100, 255)
        img += amp * np.exp(-((ii - ci) ** 2 + (jj - cj) ** 2) / (2 * s * s))
    return np.clip(img, 0, 255).astype(np.uint8)


def collaboration_scene(h: int = 128, w: int = 128, seed: int = 7) -> np.ndarray:
    """A structured 'shared document' scene: background ramp, a bright
    disk, a dark rectangle, a cross, plus faint sensor noise.

    This is the default payload of the image-viewer experiments: it has
    sharp object boundaries (so the sketch extractor finds features) and
    smooth interiors (so progressive refinement is visible).
    """
    _validate(h, w)
    rng = np.random.default_rng(seed)
    ii, jj = np.mgrid[0:h, 0:w]
    img = 60.0 + 60.0 * (ii + jj) / (h + w)

    # bright disk upper-left-ish
    ci, cj, r = h * 0.30, w * 0.30, min(h, w) * 0.18
    disk = ((ii - ci) ** 2 + (jj - cj) ** 2) <= r * r
    img[disk] = 220.0

    # dark rectangle lower-right
    r0, r1 = int(h * 0.55), int(h * 0.85)
    c0, c1 = int(w * 0.55), int(w * 0.9)
    img[r0:r1, c0:c1] = 30.0

    # cross through the centre
    cw = max(1, min(h, w) // 32)
    img[h // 2 - cw : h // 2 + cw, :] = 160.0
    img[:, w // 2 - cw : w // 2 + cw] = 160.0

    img += rng.normal(0.0, 2.0, img.shape)
    return np.clip(img, 0, 255).astype(np.uint8)


def to_rgb(gray: np.ndarray, tint: tuple[float, float, float] = (1.0, 0.85, 0.6)) -> np.ndarray:
    """Colorize a grayscale image with a per-channel tint (RGB uint8).

    Adds channel-dependent structure so color coding is non-trivial.
    """
    g = np.asarray(gray, dtype=float)
    if g.ndim != 2:
        raise ImageError("to_rgb expects a 2-D grayscale image")
    channels = [np.clip(g * t, 0, 255) for t in tint]
    # add a gentle opposing ramp in the blue channel for decorrelation
    ii, jj = np.mgrid[0 : g.shape[0], 0 : g.shape[1]]
    channels[2] = np.clip(channels[2] + 30.0 * jj / max(g.shape[1] - 1, 1), 0, 255)
    return np.stack(channels, axis=-1).astype(np.uint8)
