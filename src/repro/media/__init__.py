"""Media substrate: progressive image coding, sketch extraction, verbal
description, synthetic speech, and the information-transformer registry."""

from .bitstream import BitReader, BitWriter, OutOfBits
from .wavelet import WaveletError, haar_dwt2, haar_idwt2, max_levels, subband_slices
from .ezw import EzwEncoded, decode_image, encode_image, ezw_decode, ezw_encode
from .images import (
    ImageError,
    checkerboard,
    collaboration_scene,
    gaussian_blobs,
    gradient,
    to_rgb,
)
from .metrics import bpp, compression_ratio, mse, psnr, raw_bits
from .progressive import PACKET_COUNTS, ImagePacket, ProgressiveImage, ReceivedImage, ReceptionReport
from .sketch import Sketch, SketchError, decode_sketch, extract_sketch, sobel_magnitude
from .describe import ImageDescription, describe_image
from .speech import SpeechClip, SpeechError, speech_to_text, text_to_speech
from .transformers import (
    Modality,
    TransformError,
    Transformer,
    TransformerRegistry,
    default_registry,
)

__all__ = [
    "BitReader",
    "BitWriter",
    "OutOfBits",
    "WaveletError",
    "haar_dwt2",
    "haar_idwt2",
    "max_levels",
    "subband_slices",
    "EzwEncoded",
    "decode_image",
    "encode_image",
    "ezw_decode",
    "ezw_encode",
    "ImageError",
    "checkerboard",
    "collaboration_scene",
    "gaussian_blobs",
    "gradient",
    "to_rgb",
    "bpp",
    "compression_ratio",
    "mse",
    "psnr",
    "raw_bits",
    "PACKET_COUNTS",
    "ImagePacket",
    "ProgressiveImage",
    "ReceivedImage",
    "ReceptionReport",
    "Sketch",
    "SketchError",
    "decode_sketch",
    "extract_sketch",
    "sobel_magnitude",
    "ImageDescription",
    "describe_image",
    "SpeechClip",
    "SpeechError",
    "speech_to_text",
    "text_to_speech",
    "Modality",
    "TransformError",
    "Transformer",
    "TransformerRegistry",
    "default_registry",
]
