"""Information transformer registry: modality transformations.

"The information transformer component maintains a suite of media-specific
information abstraction modules ... designed to be extendible so that new
modules and media types can be easily incorporated" (paper Sec. 5.4).

A :class:`TransformerRegistry` holds directed edges between
:class:`Modality` values; :meth:`TransformerRegistry.plan` finds the
cheapest chain (Dijkstra over transformation costs) so a client whose
profile says "speech only" can still receive a shared image via
image→text→speech.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from enum import Enum
from typing import Any, Callable, Optional

from .describe import describe_image
from .sketch import extract_sketch
from .speech import speech_to_text, text_to_speech

__all__ = [
    "Modality",
    "Transformer",
    "TransformerRegistry",
    "TransformError",
    "default_registry",
]


class TransformError(RuntimeError):
    """Raised when no transformation chain exists or a module fails."""


class Modality(str, Enum):
    """Media modalities the framework can carry."""

    IMAGE = "image"
    SKETCH = "sketch"
    TEXT = "text"
    SPEECH = "speech"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Transformer:
    """One media-specific abstraction module.

    ``cost`` is a relative computational/latency weight used by
    :meth:`TransformerRegistry.plan` when choosing between chains.
    """

    name: str
    source: Modality
    target: Modality
    fn: Callable[[Any], Any]
    cost: float = 1.0

    def __call__(self, payload: Any) -> Any:
        try:
            return self.fn(payload)
        except Exception as exc:  # noqa: BLE001 - module boundary
            raise TransformError(f"{self.name} failed: {exc}") from exc


class TransformerRegistry:
    """Extensible suite of transformers with chain planning.

    >>> reg = default_registry()
    >>> [t.name for t in reg.plan(Modality.IMAGE, Modality.SPEECH)]
    ['image-to-text', 'text-to-speech']
    """

    def __init__(self) -> None:
        self._by_edge: dict[tuple[Modality, Modality], Transformer] = {}

    def register(self, transformer: Transformer) -> None:
        """Add (or replace) the module for one (source, target) edge."""
        self._by_edge[(transformer.source, transformer.target)] = transformer

    def get(self, source: Modality, target: Modality) -> Optional[Transformer]:
        """The direct module for an edge, if any."""
        return self._by_edge.get((source, target))

    @property
    def transformers(self) -> list[Transformer]:
        """All registered modules, deterministic order."""
        return [self._by_edge[k] for k in sorted(self._by_edge, key=lambda e: (e[0].value, e[1].value))]

    def can_transform(self, source: Modality, target: Modality) -> bool:
        """Whether some chain links ``source`` to ``target``."""
        try:
            self.plan(source, target)
            return True
        except TransformError:
            return False

    def plan(self, source: Modality, target: Modality) -> list[Transformer]:
        """Cheapest transformation chain (possibly empty if same modality)."""
        if source == target:
            return []
        dist: dict[Modality, float] = {source: 0.0}
        prev: dict[Modality, Transformer] = {}
        heap: list[tuple[float, str]] = [(0.0, source.value)]
        while heap:
            d, mval = heapq.heappop(heap)
            m = Modality(mval)
            if m == target:
                break
            if d > dist.get(m, float("inf")):
                continue
            for (s, t), tr in self._by_edge.items():
                if s != m:
                    continue
                nd = d + tr.cost
                if nd < dist.get(t, float("inf")):
                    dist[t] = nd
                    prev[t] = tr
                    heapq.heappush(heap, (nd, t.value))
        if target not in prev:
            raise TransformError(f"no transformation chain {source} -> {target}")
        chain: list[Transformer] = []
        cur = target
        while cur != source:
            tr = prev[cur]
            chain.append(tr)
            cur = tr.source
        chain.reverse()
        return chain

    def apply(self, payload: Any, source: Modality, target: Modality) -> Any:
        """Run the cheapest chain end-to-end."""
        for tr in self.plan(source, target):
            payload = tr(payload)
        return payload


def default_registry() -> TransformerRegistry:
    """The suite shipped with the framework (paper's examples).

    * image→sketch (robust segmentation, ~2000× reduction)
    * image→text (verbal description)
    * sketch→text (describe the rendered sketch)
    * text→speech and speech→text (synthetic voice pair)
    """
    reg = TransformerRegistry()
    reg.register(Transformer("image-to-sketch", Modality.IMAGE, Modality.SKETCH, extract_sketch, cost=2.0))
    reg.register(
        Transformer("image-to-text", Modality.IMAGE, Modality.TEXT, lambda img: describe_image(img).text, cost=1.5)
    )
    reg.register(
        Transformer(
            "sketch-to-text",
            Modality.SKETCH,
            Modality.TEXT,
            lambda sk: describe_image(sk.to_image()).text,
            cost=1.0,
        )
    )
    reg.register(Transformer("text-to-speech", Modality.TEXT, Modality.SPEECH, text_to_speech, cost=1.0))
    reg.register(Transformer("speech-to-text", Modality.SPEECH, Modality.TEXT, speech_to_text, cost=1.0))
    return reg
