"""2-D Haar discrete wavelet transform (vectorized numpy).

The paper's image transformation module hierarchically refines a sketch
with detail, citing Shapiro's embedded zerotree wavelet coder ([23]).  We
implement the transform the EZW coder runs on: a separable, orthonormal
Haar DWT with the standard pyramid layout (approximation in the top-left
quadrant, detail subbands around it, recursively).

Layout for ``levels = 2`` on an 8×8 image::

    LL2 HL2 | HL1
    LH2 HH2 |
    --------+----
      LH1   | HH1

All operations are pure-numpy slices (views where possible, per the HPC
guide); image sides must be divisible by ``2**levels``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "haar_dwt2",
    "haar_idwt2",
    "haar_idwt2_partial",
    "max_levels",
    "subband_slices",
    "WaveletError",
]

_SQRT2 = np.sqrt(2.0)


class WaveletError(ValueError):
    """Raised for shapes incompatible with the requested decomposition."""


def max_levels(shape: tuple[int, int]) -> int:
    """The deepest decomposition both sides of ``shape`` support."""
    h, w = shape
    levels = 0
    while h % 2 == 0 and w % 2 == 0 and h >= 2 and w >= 2:
        h //= 2
        w //= 2
        levels += 1
    return levels


def _check(shape: tuple[int, int], levels: int) -> None:
    if levels < 1:
        raise WaveletError(f"levels must be >= 1, got {levels}")
    h, w = shape
    div = 1 << levels
    if h % div or w % div:
        raise WaveletError(f"shape {shape} not divisible by 2**{levels}")


def _dwt_rows(a: np.ndarray) -> np.ndarray:
    """One Haar analysis step along the last axis (orthonormal)."""
    even = a[..., 0::2]
    odd = a[..., 1::2]
    return np.concatenate(
        [(even + odd) / _SQRT2, (even - odd) / _SQRT2], axis=-1
    )


def _idwt_rows(a: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_dwt_rows`."""
    half = a.shape[-1] // 2
    s = a[..., :half]
    d = a[..., half:]
    out = np.empty_like(a)
    out[..., 0::2] = (s + d) / _SQRT2
    out[..., 1::2] = (s - d) / _SQRT2
    return out


def haar_dwt2(image: np.ndarray, levels: int) -> np.ndarray:
    """Forward 2-D Haar DWT, pyramid layout, ``levels`` deep.

    >>> x = np.arange(16.0).reshape(4, 4)
    >>> np.allclose(haar_idwt2(haar_dwt2(x, 2), 2), x)
    True
    """
    a = np.asarray(image, dtype=float)
    if a.ndim != 2:
        raise WaveletError(f"expected 2-D array, got ndim={a.ndim}")
    _check(a.shape, levels)
    out = a.copy()
    h, w = a.shape
    for _ in range(levels):
        block = out[:h, :w]
        block = _dwt_rows(block)            # rows
        block = _dwt_rows(block.swapaxes(0, 1)).swapaxes(0, 1)  # cols
        out[:h, :w] = block
        h //= 2
        w //= 2
    return out


def haar_idwt2(coeffs: np.ndarray, levels: int) -> np.ndarray:
    """Inverse 2-D Haar DWT for :func:`haar_dwt2` output."""
    a = np.asarray(coeffs, dtype=float)
    if a.ndim != 2:
        raise WaveletError(f"expected 2-D array, got ndim={a.ndim}")
    _check(a.shape, levels)
    out = a.copy()
    H, W = a.shape
    sizes = [(H >> k, W >> k) for k in range(levels)]  # coarsest applied first
    for h, w in reversed(sizes):
        block = out[:h, :w]
        block = _idwt_rows(block.swapaxes(0, 1)).swapaxes(0, 1)  # cols
        block = _idwt_rows(block)                                 # rows
        out[:h, :w] = block
    return out


def haar_idwt2_partial(coeffs: np.ndarray, levels: int, skip_finest: int) -> np.ndarray:
    """Inverse DWT stopping ``skip_finest`` levels early: a 2^-k-scale view.

    Returns the approximation image at resolution ``(h >> k, w >> k)``
    with correct intensity (the orthonormal transform scales DC by 2 per
    level, which is divided back out).  ``skip_finest = 0`` equals
    :func:`haar_idwt2`.

    >>> x = np.arange(64.0).reshape(8, 8)
    >>> thumb = haar_idwt2_partial(haar_dwt2(x, 3), 3, skip_finest=2)
    >>> thumb.shape
    (2, 2)
    >>> bool(abs(thumb.mean() - x.mean()) < 1e-9)
    True
    """
    a = np.asarray(coeffs, dtype=float)
    if a.ndim != 2:
        raise WaveletError(f"expected 2-D array, got ndim={a.ndim}")
    _check(a.shape, levels)
    if not (0 <= skip_finest <= levels):
        raise WaveletError(f"skip_finest must be in [0, {levels}]")
    if skip_finest == 0:
        return haar_idwt2(a, levels)
    out = a.copy()
    H, W = a.shape
    sizes = [(H >> k, W >> k) for k in range(levels)]
    for h, w in reversed(sizes[skip_finest:]):  # invert coarse levels only
        block = out[:h, :w]
        block = _idwt_rows(block.swapaxes(0, 1)).swapaxes(0, 1)
        block = _idwt_rows(block)
        out[:h, :w] = block
    h, w = H >> skip_finest, W >> skip_finest
    return out[:h, :w] / (2.0 ** skip_finest)


def subband_slices(shape: tuple[int, int], levels: int) -> dict[str, tuple[slice, slice]]:
    """Index map of the pyramid layout.

    Keys: ``"LL"`` (deepest approximation) and ``"HL<k>"/"LH<k>"/"HH<k>"``
    for each detail level ``k`` (1 = finest).
    """
    _check(shape, levels)
    h, w = shape
    out: dict[str, tuple[slice, slice]] = {}
    for k in range(1, levels + 1):
        h2, w2 = h // 2, w // 2
        out[f"HL{k}"] = (slice(0, h2), slice(w2, w))
        out[f"LH{k}"] = (slice(h2, h), slice(0, w2))
        out[f"HH{k}"] = (slice(h2, h), slice(w2, w))
        h, w = h2, w2
    out["LL"] = (slice(0, h), slice(0, w))
    return out
