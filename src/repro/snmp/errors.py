"""SNMP protocol error statuses and Python exception types."""

from __future__ import annotations

__all__ = [
    "ErrorStatus",
    "SnmpError",
    "SnmpTimeout",
    "SnmpCircuitOpen",
    "SnmpProtocolError",
    "SnmpErrorResponse",
]


class ErrorStatus:
    """RFC 1157 error-status codes carried in response PDUs."""

    NO_ERROR = 0
    TOO_BIG = 1
    NO_SUCH_NAME = 2
    BAD_VALUE = 3
    READ_ONLY = 4
    GEN_ERR = 5

    _NAMES = {
        0: "noError",
        1: "tooBig",
        2: "noSuchName",
        3: "badValue",
        4: "readOnly",
        5: "genErr",
    }

    @classmethod
    def name(cls, code: int) -> str:
        """Human-readable name for a status code."""
        return cls._NAMES.get(code, f"unknown({code})")


class SnmpError(RuntimeError):
    """Base class for all SNMP failures."""


class SnmpTimeout(SnmpError):
    """The manager exhausted retries without a response."""


class SnmpCircuitOpen(SnmpError):
    """The per-agent circuit breaker is open: the request failed fast
    without touching the wire.

    Attributes
    ----------
    agent:
        The (host, port) the breaker guards.
    retry_at:
        Virtual time at which the breaker will admit a half-open probe.
    """

    def __init__(self, agent: tuple[str, int], retry_at: float) -> None:
        super().__init__(
            f"circuit open for {agent}: failing fast until t={retry_at:.3f}"
        )
        self.agent = agent
        self.retry_at = retry_at


class SnmpProtocolError(SnmpError):
    """A malformed or unexpected message was received."""


class SnmpErrorResponse(SnmpError):
    """The agent answered with a non-zero error-status.

    Attributes
    ----------
    status:
        The RFC 1157 error-status code.
    index:
        1-based varbind index the error refers to (0 if unspecified).
    """

    def __init__(self, status: int, index: int = 0) -> None:
        super().__init__(f"{ErrorStatus.name(status)} (index {index})")
        self.status = status
        self.index = index
