"""Standard-agent MIB for network elements (the LAN switch / router).

"Routers and switches have standard agents to monitor the local
parameters through instrumentation routines" (paper Sec. 5.5).  This
module exports a simulated switch's interface table in MIB-II ifTable
style: per-link ``ifDescr.<i>``, ``ifSpeed.<i>``, ``ifInOctets.<i>``,
``ifOutOctets.<i>`` — live views over the simulator's link counters —
and starts the standard agent on the element's node.
"""

from __future__ import annotations

from ..network.simnet import Network
from ..network.udp import DatagramSocket
from .agent import SnmpAgent
from .ber import Counter32, Gauge32, Integer, OctetString
from .mib import MibTree
from .oids import MIB2

__all__ = ["build_switch_mib", "attach_switch_agent"]


def build_switch_mib(network: Network, element: str) -> MibTree:
    """MIB-II-style interface table over ``element``'s attached links.

    Interfaces are indexed 1..n in deterministic (sorted-peer) order.
    Octet counters are live: they read the simulator's cumulative link
    counters at GET time, exactly like a real switch ASIC's registers.
    """
    tree = MibTree()
    tree.register_scalar(MIB2.sysName, OctetString(element.encode()), "element name")
    tree.register_scalar(
        MIB2.sysDescr, OctetString(b"TASSL simulated LAN switch"), "description"
    )
    tree.register_callable(
        MIB2.sysUpTime,
        lambda: __import__("repro.snmp.ber", fromlist=["TimeTicks"]).TimeTicks(
            int(network.scheduler.clock.now * 100) % 2**32
        ),
        description="element uptime",
    )
    links = [l for l in network.links if element in (l.a, l.b)]
    links.sort(key=lambda l: l.other(element))
    tree.register_scalar(MIB2.ifNumber, Integer(len(links)), "interface count")
    for i, link in enumerate(links, start=1):
        peer = link.other(element)
        tree.register_scalar(
            MIB2.ifDescr.child(i), OctetString(f"to-{peer}".encode()), f"if {i} descr"
        )
        tree.register_callable(
            MIB2.ifSpeed.child(i),
            lambda l=link: Gauge32(
                int(min(l.bandwidth * 8, 2**32 - 1))  # bits/s per MIB-II
                if l.bandwidth != float("inf")
                else 2**32 - 1
            ),
            description=f"if {i} speed",
        )
        tree.register_callable(
            MIB2.ifInOctets.child(i),
            lambda l=link: Counter32(l.rx_octets % 2**32),
            description=f"if {i} in octets",
        )
        tree.register_callable(
            MIB2.ifOutOctets.child(i),
            lambda l=link: Counter32(l.tx_octets % 2**32),
            description=f"if {i} out octets",
        )
    return tree


def attach_switch_agent(
    network: Network,
    element: str,
    read_community: str = "public",
    write_community: str = "private",
) -> SnmpAgent:
    """Build the standard MIB and start the agent on the element."""
    tree = build_switch_mib(network, element)
    sock = DatagramSocket(network, element)
    return SnmpAgent(
        sock, tree, read_community=read_community, write_community=write_community
    )
