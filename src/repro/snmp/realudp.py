"""Real-socket SNMP: the codec over actual OS UDP (loopback).

Everything else in the repository runs on the virtual-time simulator;
this module exists to prove the BER layer is *wire-real*: a
:class:`RealSnmpAgent` serves a MIB on a 127.0.0.1 socket and a
:class:`RealSnmpManager` queries it, blocking on OS timeouts.  Used by
tests (skipped where sockets are unavailable) and usable against
third-party SNMP tools on the same host.
"""

from __future__ import annotations

import socket
from typing import Optional, Sequence as Seq

from .agent import PDU_GET, PDU_GETNEXT, PDU_RESPONSE, PDU_SET, VERSION_2C
from .ber import (
    BerError,
    Integer,
    Null,
    ObjectIdentifierValue,
    OctetString,
    Sequence,
    TaggedPdu,
    decode,
    encode,
)
from .errors import ErrorStatus, SnmpErrorResponse, SnmpProtocolError, SnmpTimeout
from .mib import MibAccessError, MibTree
from .oids import OID

__all__ = ["RealSnmpAgent", "RealSnmpManager"]


class RealSnmpAgent:
    """A synchronous agent on a real UDP socket.

    Not threaded: call :meth:`serve_once` (blocking up to ``timeout``)
    or :meth:`serve` with a request budget.  Binding port 0 lets the OS
    pick a free port (read it back from :attr:`address`).
    """

    def __init__(
        self,
        mib: MibTree,
        host: str = "127.0.0.1",
        port: int = 0,
        read_community: str = "public",
        write_community: str = "private",
    ) -> None:
        self.mib = mib
        self.read_community = read_community
        self.write_community = write_community
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        self._sock.bind((host, port))
        self._closed = False
        self.requests_served = 0

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port)."""
        return self._sock.getsockname()

    def serve_once(self, timeout: float = 1.0) -> bool:
        """Handle one request; returns False on timeout."""
        if self._closed:
            raise RuntimeError("agent socket is closed")
        self._sock.settimeout(timeout)
        try:
            data, src = self._sock.recvfrom(65535)
        except socket.timeout:
            return False
        reply = self._process(data)
        if reply is not None:
            self._sock.sendto(reply, src)
        return True

    def serve(self, n_requests: int, timeout: float = 1.0) -> int:
        """Handle up to ``n_requests``; returns how many were served."""
        served = 0
        for _ in range(n_requests):
            if not self.serve_once(timeout):
                break
            served += 1
        return served

    def _process(self, data: bytes) -> Optional[bytes]:
        try:
            msg, _ = decode(data)
            version, community, pdu = msg.items  # type: ignore[attr-defined]
            assert isinstance(pdu, TaggedPdu)
        except (BerError, ValueError, AssertionError):
            return None
        community_text = community.value.decode("latin-1")
        if pdu.tag_value == PDU_SET:
            if community_text != self.write_community:
                return None
        elif community_text not in (self.read_community, self.write_community):
            return None
        request_id, _s, _i, vb_list = pdu.items
        status = ErrorStatus.NO_ERROR
        err_index = 0
        out = []
        for i, vb in enumerate(vb_list.items, start=1):
            name, value = vb.items
            oid = OID.from_ber(name)
            try:
                if pdu.tag_value == PDU_GET:
                    out.append(Sequence((oid.to_ber(), self.mib.get(oid))))
                elif pdu.tag_value == PDU_GETNEXT:
                    nxt, result = self.mib.get_next(oid)
                    out.append(Sequence((nxt.to_ber(), result)))
                elif pdu.tag_value == PDU_SET:
                    self.mib.set(oid, value)
                    out.append(Sequence((oid.to_ber(), value)))
                else:
                    return None
            except MibAccessError as exc:
                status = exc.status
                err_index = i
                out = [Sequence((OID.from_ber(vb.items[0]).to_ber(), vb.items[1])) for vb in vb_list.items]
                break
        self.requests_served += 1
        return encode(
            Sequence(
                (
                    Integer(version.value),
                    OctetString(community.value),
                    TaggedPdu(
                        PDU_RESPONSE,
                        (
                            Integer(request_id.value),
                            Integer(status),
                            Integer(err_index),
                            Sequence(tuple(out)),
                        ),
                    ),
                )
            )
        )

    def close(self) -> None:
        """Release the socket.  Idempotent."""
        if not self._closed:
            self._closed = True
            self._sock.close()


class RealSnmpManager:
    """A blocking manager over a real UDP socket."""

    def __init__(
        self,
        community: str = "public",
        timeout: float = 1.0,
        retries: int = 1,
    ) -> None:
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        self._sock.bind(("127.0.0.1", 0))
        self._closed = False
        self.community = community
        self.timeout = timeout
        self.retries = retries
        self._request_id = 1

    def _request(
        self, agent: tuple[str, int], pdu_tag: int, varbinds: Seq[tuple[OID, object]]
    ) -> list[tuple[OID, object]]:
        if self._closed:
            raise RuntimeError("manager socket is closed")
        request_id = self._request_id
        self._request_id += 1
        wire = encode(
            Sequence(
                (
                    Integer(VERSION_2C),
                    OctetString(self.community.encode("latin-1")),
                    TaggedPdu(
                        pdu_tag,
                        (
                            Integer(request_id),
                            Integer(0),
                            Integer(0),
                            Sequence(
                                tuple(
                                    Sequence((oid.to_ber(), value))
                                    for oid, value in varbinds
                                )
                            ),
                        ),
                    ),
                )
            )
        )
        self._sock.settimeout(self.timeout)
        for _ in range(self.retries + 1):
            self._sock.sendto(wire, agent)
            try:
                data, _src = self._sock.recvfrom(65535)
            except socket.timeout:
                continue
            try:
                msg, _ = decode(data)
                pdu = msg.items[2]  # type: ignore[attr-defined]
                rid, status, index, vb_list = pdu.items
            except (BerError, ValueError, IndexError) as exc:
                raise SnmpProtocolError(f"bad response: {exc}") from exc
            if rid.value != request_id:
                continue  # stale datagram; keep waiting within this attempt
            if status.value != ErrorStatus.NO_ERROR:
                raise SnmpErrorResponse(status.value, index.value)
            return [
                (OID.from_ber(vb.items[0]), vb.items[1]) for vb in vb_list.items
            ]
        raise SnmpTimeout(f"no response from {agent}")

    def get(self, agent: tuple[str, int], oids: Seq[OID]) -> list[tuple[OID, object]]:
        """GET over the real wire."""
        return self._request(agent, PDU_GET, [(OID(o), Null()) for o in oids])

    def get_next(self, agent: tuple[str, int], oid: OID) -> tuple[OID, object]:
        """GETNEXT over the real wire."""
        return self._request(agent, PDU_GETNEXT, [(OID(oid), Null())])[0]

    def set(self, agent: tuple[str, int], varbinds: Seq[tuple[OID, object]]):
        """SET over the real wire."""
        return self._request(agent, PDU_SET, list(varbinds))

    def close(self) -> None:
        """Release the socket.  Idempotent."""
        if not self._closed:
            self._closed = True
            self._sock.close()
