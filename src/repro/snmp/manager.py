"""SNMP manager: the framework's window onto network/system state.

"The current implementation of the network state interface uses [SNMP] ...
It uses the IP address of the network element, the community string, and
the object identifier (OID) of the parameters of interest (bandwidth, CPU
load, page-faults, etc.) to directly query the SNMP MIB" (paper Sec. 5.5).

The manager issues GET / GETNEXT / SET requests through a datagram socket
and, because the whole substrate is a single-threaded discrete-event
simulation, *pumps the shared scheduler* while waiting — a synchronous
surface over an asynchronous wire, with virtual-time timeouts and retries.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence as Seq

from .._locks import make_lock
from ..network.clock import Scheduler

if TYPE_CHECKING:
    from ..messaging.transport import DatagramTransport

from .agent import (
    PDU_GET,
    PDU_GETBULK,
    PDU_GETNEXT,
    PDU_RESPONSE,
    PDU_SET,
    SNMP_PORT,
    VERSION_2C,
)
from .ber import (
    BerError,
    Integer,
    Null,
    ObjectIdentifierValue,
    OctetString,
    Sequence,
    TaggedPdu,
    decode,
    encode,
)
from .errors import (
    ErrorStatus,
    SnmpCircuitOpen,
    SnmpErrorResponse,
    SnmpProtocolError,
    SnmpTimeout,
)
from .oids import OID

__all__ = ["SnmpManager", "CircuitBreaker", "VarBind"]

#: A (oid, value) result pair.
VarBind = tuple[OID, object]


def _wake() -> None:
    """Sentinel scheduler event: exists only to advance the virtual clock."""


class CircuitBreaker:
    """Per-agent failure gate: closed → open → half-open → closed.

    ``threshold`` consecutive request-level failures open the breaker for
    ``cooldown`` virtual seconds, during which requests fail fast with
    :class:`~repro.snmp.errors.SnmpCircuitOpen` (no wire traffic, no
    timeout wait — polling a dark agent becomes cheap).  After the
    cooldown one probe request is admitted (*half-open*): success closes
    the breaker, another failure re-opens it for a doubled (capped)
    cooldown.
    """

    __slots__ = (
        "threshold", "cooldown", "max_cooldown",
        "failures", "open_until", "half_open", "opens", "_current_cooldown",
    )

    def __init__(
        self, threshold: int, cooldown: float, max_cooldown: float
    ) -> None:
        self.threshold = threshold
        self.cooldown = cooldown
        self.max_cooldown = max_cooldown
        self.failures = 0          # consecutive request-level failures
        self.open_until = 0.0      # virtual time the open window closes
        self.half_open = False     # a probe request is in flight
        self.opens = 0             # times the breaker tripped
        self._current_cooldown = cooldown

    def admit(self, now: float) -> bool:
        """Whether a request may hit the wire at virtual time ``now``."""
        if self.failures < self.threshold and not self.half_open:
            return True
        if now >= self.open_until:
            self.half_open = True  # one probe allowed through
            return True
        return False

    def record_success(self) -> None:
        self.failures = 0
        self.half_open = False
        self._current_cooldown = self.cooldown

    def record_failure(self, now: float) -> None:
        self.failures += 1
        if self.half_open:
            # the probe failed: back off harder
            self._current_cooldown = min(self.max_cooldown, self._current_cooldown * 2.0)
            self.half_open = False
            self.open_until = now + self._current_cooldown
            self.opens += 1
        elif self.failures == self.threshold:
            self.open_until = now + self._current_cooldown
            self.opens += 1

    @property
    def is_open(self) -> bool:
        return self.failures >= self.threshold


class SnmpManager:
    """Issues SNMP requests and synchronously collects replies.

    Parameters
    ----------
    socket:
        An unbound datagram endpoint on the management station's host —
        anything satisfying the
        :class:`~repro.messaging.transport.DatagramTransport` protocol
        (e.g. :class:`~repro.network.udp.DatagramSocket`).
    scheduler:
        The shared simulation scheduler; pumped while waiting for replies.
    community:
        Community string presented with every request.
    timeout / retries:
        Virtual-time seconds to wait per attempt, and attempts beyond the
        first before raising :class:`~repro.snmp.errors.SnmpTimeout`.
    backoff_base / backoff_multiplier / backoff_max:
        Exponential inter-attempt backoff: after the *k*-th failed attempt
        the manager sleeps ``min(backoff_max, backoff_base *
        backoff_multiplier**k)`` virtual seconds (plus deterministic
        jitter) before retrying.  ``backoff_base=None`` defaults to
        ``timeout / 2``; pass ``0.0`` for legacy back-to-back retries.
    jitter_frac:
        Jitter half-width as a fraction of the backoff delay.  The jitter
        is a pure function of (request id, attempt), so runs replay
        byte-identically while concurrent managers still decorrelate.
    breaker_threshold / breaker_cooldown / breaker_max_cooldown:
        Per-agent circuit breaker (see :class:`CircuitBreaker`):
        ``breaker_threshold`` consecutive request failures open the
        circuit for ``breaker_cooldown`` virtual seconds and requests
        fail fast with :class:`~repro.snmp.errors.SnmpCircuitOpen`.
        ``breaker_threshold=0`` disables the breaker.
    """

    def __init__(
        self,
        socket: "DatagramTransport",
        scheduler: Scheduler,
        community: str = "public",
        timeout: float = 1.0,
        retries: int = 2,
        version: int = VERSION_2C,
        backoff_base: Optional[float] = None,
        backoff_multiplier: float = 2.0,
        backoff_max: Optional[float] = None,
        jitter_frac: float = 0.1,
        breaker_threshold: int = 4,
        breaker_cooldown: float = 5.0,
        breaker_max_cooldown: float = 60.0,
    ) -> None:
        self._sock = socket
        if self._sock.port is None:
            self._sock.bind_ephemeral()
        self._sock.on_receive = self._on_datagram
        self.scheduler = scheduler
        self.community = community
        self.timeout = timeout
        self.retries = retries
        self.version = version
        self.backoff_base = timeout / 2.0 if backoff_base is None else backoff_base
        self.backoff_multiplier = backoff_multiplier
        self.backoff_max = 8.0 * timeout if backoff_max is None else backoff_max
        self.jitter_frac = jitter_frac
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown = breaker_cooldown
        self.breaker_max_cooldown = breaker_max_cooldown
        self._breakers: dict[tuple[str, int], CircuitBreaker] = {}
        self._next_request_id = 1
        self._responses: dict[int, TaggedPdu] = {}
        # Guards the shared maps and counters against a datagram callback
        # running on a poll/transport thread.  Held only for short
        # dict/counter critical sections — never across
        # ``scheduler.step()``, which re-enters ``_on_datagram`` on the
        # *same* thread and would self-deadlock.
        self._mu = make_lock("SnmpManager._mu")
        # observability
        self.requests_sent = 0
        self.timeouts = 0
        self.fast_failures = 0
        #: virtual-time send timestamp of each attempt of the most recent
        #: request (regression surface for retry spacing)
        self.last_attempt_times: list[float] = []

    # ------------------------------------------------------------------
    # wire handling
    # ------------------------------------------------------------------
    def _on_datagram(self, data: bytes, src: tuple[str, int]) -> None:
        try:
            msg, _ = decode(data)
        except BerError:
            return
        if not isinstance(msg, Sequence) or len(msg.items) != 3:
            return
        pdu = msg.items[2]
        if not isinstance(pdu, TaggedPdu) or pdu.tag_value != PDU_RESPONSE:
            return
        if len(pdu.items) != 4 or not isinstance(pdu.items[0], Integer):
            return
        with self._mu:
            self._responses[pdu.items[0].value] = pdu

    def _request(
        self,
        agent: tuple[str, int],
        pdu_tag: int,
        varbinds: Seq[tuple[OID, object]],
        slot1: int = 0,
        slot2: int = 0,
    ) -> list[VarBind]:
        with self._mu:
            request_id = self._next_request_id
            self._next_request_id += 1
        vb_seq = Sequence(
            tuple(Sequence((oid.to_ber(), value)) for oid, value in varbinds)
        )
        message = Sequence(
            (
                Integer(self.version),
                OctetString(self.community.encode("latin-1")),
                TaggedPdu(
                    pdu_tag,
                    (Integer(request_id), Integer(slot1), Integer(slot2), vb_seq),
                ),
            )
        )
        wire = encode(message)

        breaker = self._breaker(agent)
        now = self.scheduler.clock.now
        if breaker is not None and not breaker.admit(now):
            with self._mu:
                self.fast_failures += 1
            raise SnmpCircuitOpen(agent, breaker.open_until)

        with self._mu:
            self.last_attempt_times = []
        for attempt in range(self.retries + 1):
            with self._mu:
                self.requests_sent += 1
                self.last_attempt_times.append(self.scheduler.clock.now)
            self._sock.sendto(wire, agent)
            deadline = self.scheduler.clock.now + self.timeout
            # Pump the simulation until our response lands or time expires.
            while self.scheduler.clock.now < deadline:
                if request_id in self._responses:
                    break
                if not self.scheduler.step():
                    # Event queue drained: nothing can arrive before the
                    # deadline, but retries must still be spaced in virtual
                    # time — schedule a sentinel wake-up at the deadline so
                    # the next step() advances the clock instead of burning
                    # every attempt in the same instant.
                    self.scheduler.call_at(deadline, _wake)
                if self.scheduler.clock.now > deadline:
                    break
            # Atomic claim: check-then-pop as two steps would race with a
            # late datagram landing between them on a transport thread.
            with self._mu:
                response = self._responses.pop(request_id, None)
            if response is not None:
                if breaker is not None:
                    breaker.record_success()
                return self._parse_response(response)
            with self._mu:
                self.timeouts += 1
            if attempt < self.retries:
                self._sleep(self._backoff_delay(request_id, attempt))
        if breaker is not None:
            breaker.record_failure(self.scheduler.clock.now)
        raise SnmpTimeout(f"no response from {agent} after {self.retries + 1} attempts")

    # ------------------------------------------------------------------
    # retry/backoff machinery
    # ------------------------------------------------------------------
    def _breaker(self, agent: tuple[str, int]) -> Optional[CircuitBreaker]:
        if self.breaker_threshold <= 0:
            return None
        with self._mu:
            breaker = self._breakers.get(agent)
            if breaker is None:
                breaker = CircuitBreaker(
                    self.breaker_threshold, self.breaker_cooldown, self.breaker_max_cooldown
                )
                self._breakers[agent] = breaker
        return breaker

    def breaker_state(self, host: str, port: int = SNMP_PORT) -> str:
        """Observability: 'closed', 'open', or 'half-open' for one agent."""
        breaker = self._breakers.get((host, port))
        if breaker is None or not breaker.is_open:
            return "closed"
        return "half-open" if self.scheduler.clock.now >= breaker.open_until else "open"

    def _backoff_delay(self, request_id: int, attempt: int) -> float:
        """Exponential backoff with deterministic jitter.

        The jitter factor is a hash of (request id, attempt) mapped into
        ``1 ± jitter_frac`` — reproducible across replays of the same run
        without any shared RNG state.
        """
        if self.backoff_base <= 0.0:
            return 0.0
        delay = min(
            self.backoff_max,
            self.backoff_base * self.backoff_multiplier ** attempt,
        )
        if self.jitter_frac > 0.0:
            h = (request_id * 2654435761 + attempt * 40503) % 10_000
            delay *= 1.0 + self.jitter_frac * (h / 5_000.0 - 1.0)
        return delay

    def _sleep(self, duration: float) -> None:
        """Pump the scheduler for ``duration`` virtual seconds."""
        if duration <= 0.0:
            return
        resume = self.scheduler.clock.now + duration
        while self.scheduler.clock.now < resume:
            if not self.scheduler.step():
                self.scheduler.call_at(resume, _wake)

    @staticmethod
    def _parse_response(pdu: TaggedPdu) -> list[VarBind]:
        _rid, status, index, vb_list = pdu.items
        if not isinstance(status, Integer) or not isinstance(index, Integer):
            raise SnmpProtocolError("malformed response PDU")
        if status.value != ErrorStatus.NO_ERROR:
            raise SnmpErrorResponse(status.value, index.value)
        if not isinstance(vb_list, Sequence):
            raise SnmpProtocolError("malformed varbind list")
        out: list[VarBind] = []
        for vb in vb_list.items:
            if not isinstance(vb, Sequence) or len(vb.items) != 2:
                raise SnmpProtocolError("malformed varbind")
            name, value = vb.items
            if not isinstance(name, ObjectIdentifierValue):
                raise SnmpProtocolError("varbind name is not an OID")
            out.append((OID.from_ber(name), value))
        return out

    # ------------------------------------------------------------------
    # public operations
    # ------------------------------------------------------------------
    def get(self, host: str, oids: Seq[OID], port: int = SNMP_PORT) -> list[VarBind]:
        """GET one or more scalars from ``host``'s agent."""
        return self._request((host, port), PDU_GET, [(OID(o), Null()) for o in oids])

    def get_scalar(self, host: str, oid: OID, port: int = SNMP_PORT) -> object:
        """GET a single object; returns just its value."""
        return self.get(host, [oid], port)[0][1]

    def get_next(self, host: str, oid: OID, port: int = SNMP_PORT) -> VarBind:
        """GETNEXT a single OID."""
        return self._request((host, port), PDU_GETNEXT, [(OID(oid), Null())])[0]

    def walk(self, host: str, root: OID, port: int = SNMP_PORT) -> list[VarBind]:
        """Traverse the subtree under ``root`` via repeated GETNEXT."""
        out: list[VarBind] = []
        root = OID(root)
        current = root
        while True:
            try:
                oid, value = self.get_next(host, current, port)
            except SnmpErrorResponse as exc:
                if exc.status == ErrorStatus.NO_SUCH_NAME:
                    break  # walked off the end of the MIB
                raise
            if not root.is_prefix_of(oid):
                break
            out.append((oid, value))
            current = oid
        return out

    def set(self, host: str, varbinds: Seq[tuple[OID, object]], port: int = SNMP_PORT) -> list[VarBind]:
        """SET one or more writable objects."""
        return self._request((host, port), PDU_SET, list(varbinds))

    def get_bulk(
        self,
        host: str,
        oids: Seq[OID],
        non_repeaters: int = 0,
        max_repetitions: int = 10,
        port: int = SNMP_PORT,
    ) -> list[VarBind]:
        """GETBULK (v2c): batched GETNEXT traversal in one round trip."""
        if self.version != VERSION_2C:
            raise SnmpProtocolError("GETBULK requires SNMPv2c")
        return self._request(
            (host, port),
            PDU_GETBULK,
            [(OID(o), Null()) for o in oids],
            slot1=non_repeaters,
            slot2=max_repetitions,
        )

    def bulk_walk(
        self, host: str, root: OID, max_repetitions: int = 20, port: int = SNMP_PORT
    ) -> list[VarBind]:
        """Traverse a subtree with GETBULK — far fewer round trips than
        :meth:`walk` on large tables."""
        from .ber import EndOfMibView

        out: list[VarBind] = []
        root = OID(root)
        current = root
        while True:
            chunk = self.get_bulk(
                host, [current], max_repetitions=max_repetitions, port=port
            )
            progressed = False
            done = False
            for oid, value in chunk:
                if isinstance(value, EndOfMibView) or not root.is_prefix_of(oid):
                    done = True
                    break
                out.append((oid, value))
                current = oid
                progressed = True
            if done or not progressed:
                break
        return out

    def close(self) -> None:
        """Release the manager's socket."""
        self._sock.close()
