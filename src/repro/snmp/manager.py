"""SNMP manager: the framework's window onto network/system state.

"The current implementation of the network state interface uses [SNMP] ...
It uses the IP address of the network element, the community string, and
the object identifier (OID) of the parameters of interest (bandwidth, CPU
load, page-faults, etc.) to directly query the SNMP MIB" (paper Sec. 5.5).

The manager issues GET / GETNEXT / SET requests through a datagram socket
and, because the whole substrate is a single-threaded discrete-event
simulation, *pumps the shared scheduler* while waiting — a synchronous
surface over an asynchronous wire, with virtual-time timeouts and retries.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence as Seq

from ..network.clock import Scheduler

if TYPE_CHECKING:
    from ..messaging.transport import DatagramTransport

from .agent import (
    PDU_GET,
    PDU_GETBULK,
    PDU_GETNEXT,
    PDU_RESPONSE,
    PDU_SET,
    SNMP_PORT,
    VERSION_2C,
)
from .ber import (
    BerError,
    Integer,
    Null,
    ObjectIdentifierValue,
    OctetString,
    Sequence,
    TaggedPdu,
    decode,
    encode,
)
from .errors import ErrorStatus, SnmpErrorResponse, SnmpProtocolError, SnmpTimeout
from .oids import OID

__all__ = ["SnmpManager", "VarBind"]

#: A (oid, value) result pair.
VarBind = tuple[OID, object]


class SnmpManager:
    """Issues SNMP requests and synchronously collects replies.

    Parameters
    ----------
    socket:
        An unbound datagram endpoint on the management station's host —
        anything satisfying the
        :class:`~repro.messaging.transport.DatagramTransport` protocol
        (e.g. :class:`~repro.network.udp.DatagramSocket`).
    scheduler:
        The shared simulation scheduler; pumped while waiting for replies.
    community:
        Community string presented with every request.
    timeout / retries:
        Virtual-time seconds to wait per attempt, and attempts beyond the
        first before raising :class:`~repro.snmp.errors.SnmpTimeout`.
    """

    def __init__(
        self,
        socket: "DatagramTransport",
        scheduler: Scheduler,
        community: str = "public",
        timeout: float = 1.0,
        retries: int = 2,
        version: int = VERSION_2C,
    ) -> None:
        self._sock = socket
        if self._sock.port is None:
            self._sock.bind_ephemeral()
        self._sock.on_receive = self._on_datagram
        self.scheduler = scheduler
        self.community = community
        self.timeout = timeout
        self.retries = retries
        self.version = version
        self._next_request_id = 1
        self._responses: dict[int, TaggedPdu] = {}
        # observability
        self.requests_sent = 0
        self.timeouts = 0

    # ------------------------------------------------------------------
    # wire handling
    # ------------------------------------------------------------------
    def _on_datagram(self, data: bytes, src: tuple[str, int]) -> None:
        try:
            msg, _ = decode(data)
        except BerError:
            return
        if not isinstance(msg, Sequence) or len(msg.items) != 3:
            return
        pdu = msg.items[2]
        if not isinstance(pdu, TaggedPdu) or pdu.tag_value != PDU_RESPONSE:
            return
        if len(pdu.items) != 4 or not isinstance(pdu.items[0], Integer):
            return
        self._responses[pdu.items[0].value] = pdu

    def _request(
        self,
        agent: tuple[str, int],
        pdu_tag: int,
        varbinds: Seq[tuple[OID, object]],
        slot1: int = 0,
        slot2: int = 0,
    ) -> list[VarBind]:
        request_id = self._next_request_id
        self._next_request_id += 1
        vb_seq = Sequence(
            tuple(Sequence((oid.to_ber(), value)) for oid, value in varbinds)
        )
        message = Sequence(
            (
                Integer(self.version),
                OctetString(self.community.encode("latin-1")),
                TaggedPdu(
                    pdu_tag,
                    (Integer(request_id), Integer(slot1), Integer(slot2), vb_seq),
                ),
            )
        )
        wire = encode(message)

        for _attempt in range(self.retries + 1):
            self.requests_sent += 1
            self._sock.sendto(wire, agent)
            deadline = self.scheduler.clock.now + self.timeout
            # Pump the simulation until our response lands or time expires.
            while self.scheduler.clock.now < deadline:
                if request_id in self._responses:
                    break
                if not self.scheduler.step():
                    break  # event queue drained: nothing more can arrive
                if self.scheduler.clock.now > deadline:
                    break
            if request_id in self._responses:
                return self._parse_response(self._responses.pop(request_id))
            self.timeouts += 1
        raise SnmpTimeout(f"no response from {agent} after {self.retries + 1} attempts")

    @staticmethod
    def _parse_response(pdu: TaggedPdu) -> list[VarBind]:
        _rid, status, index, vb_list = pdu.items
        if not isinstance(status, Integer) or not isinstance(index, Integer):
            raise SnmpProtocolError("malformed response PDU")
        if status.value != ErrorStatus.NO_ERROR:
            raise SnmpErrorResponse(status.value, index.value)
        if not isinstance(vb_list, Sequence):
            raise SnmpProtocolError("malformed varbind list")
        out: list[VarBind] = []
        for vb in vb_list.items:
            if not isinstance(vb, Sequence) or len(vb.items) != 2:
                raise SnmpProtocolError("malformed varbind")
            name, value = vb.items
            if not isinstance(name, ObjectIdentifierValue):
                raise SnmpProtocolError("varbind name is not an OID")
            out.append((OID.from_ber(name), value))
        return out

    # ------------------------------------------------------------------
    # public operations
    # ------------------------------------------------------------------
    def get(self, host: str, oids: Seq[OID], port: int = SNMP_PORT) -> list[VarBind]:
        """GET one or more scalars from ``host``'s agent."""
        return self._request((host, port), PDU_GET, [(OID(o), Null()) for o in oids])

    def get_scalar(self, host: str, oid: OID, port: int = SNMP_PORT) -> object:
        """GET a single object; returns just its value."""
        return self.get(host, [oid], port)[0][1]

    def get_next(self, host: str, oid: OID, port: int = SNMP_PORT) -> VarBind:
        """GETNEXT a single OID."""
        return self._request((host, port), PDU_GETNEXT, [(OID(oid), Null())])[0]

    def walk(self, host: str, root: OID, port: int = SNMP_PORT) -> list[VarBind]:
        """Traverse the subtree under ``root`` via repeated GETNEXT."""
        out: list[VarBind] = []
        root = OID(root)
        current = root
        while True:
            try:
                oid, value = self.get_next(host, current, port)
            except SnmpErrorResponse as exc:
                if exc.status == ErrorStatus.NO_SUCH_NAME:
                    break  # walked off the end of the MIB
                raise
            if not root.is_prefix_of(oid):
                break
            out.append((oid, value))
            current = oid
        return out

    def set(self, host: str, varbinds: Seq[tuple[OID, object]], port: int = SNMP_PORT) -> list[VarBind]:
        """SET one or more writable objects."""
        return self._request((host, port), PDU_SET, list(varbinds))

    def get_bulk(
        self,
        host: str,
        oids: Seq[OID],
        non_repeaters: int = 0,
        max_repetitions: int = 10,
        port: int = SNMP_PORT,
    ) -> list[VarBind]:
        """GETBULK (v2c): batched GETNEXT traversal in one round trip."""
        if self.version != VERSION_2C:
            raise SnmpProtocolError("GETBULK requires SNMPv2c")
        return self._request(
            (host, port),
            PDU_GETBULK,
            [(OID(o), Null()) for o in oids],
            slot1=non_repeaters,
            slot2=max_repetitions,
        )

    def bulk_walk(
        self, host: str, root: OID, max_repetitions: int = 20, port: int = SNMP_PORT
    ) -> list[VarBind]:
        """Traverse a subtree with GETBULK — far fewer round trips than
        :meth:`walk` on large tables."""
        from .ber import EndOfMibView

        out: list[VarBind] = []
        root = OID(root)
        current = root
        while True:
            chunk = self.get_bulk(
                host, [current], max_repetitions=max_repetitions, port=port
            )
            progressed = False
            done = False
            for oid, value in chunk:
                if isinstance(value, EndOfMibView) or not root.is_prefix_of(oid):
                    done = True
                    break
                out.append((oid, value))
                current = oid
                progressed = True
            if done or not progressed:
                break
        return out

    def close(self) -> None:
        """Release the manager's socket."""
        self._sock.close()
