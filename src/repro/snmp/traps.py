"""SNMPv2c trap support: asynchronous agent → manager notifications.

Polling (the paper's mode) costs a round trip per cycle; traps let the
embedded extension agent *push* a notification the moment an
instrumented parameter crosses a threshold, which turns the adaptation
loop event-driven.  Implements the v2c SNMPv2-Trap PDU (tag 0xA7): a
one-way message whose varbind list leads with ``sysUpTime.0`` and
``snmpTrapOID.0`` per RFC 3416.

* :class:`TrapSender` — agent side; :meth:`send` fires one trap.
* :class:`ThresholdWatch` — periodically samples an instrumentation
  routine and traps on threshold crossings (both directions, with
  hysteresis via re-arm semantics: one trap per crossing, not per tick).
* :class:`TrapListener` — manager side; decodes traps on port 162 and
  dispatches to a callback.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from ..network.clock import Scheduler
from ..network.simnet import Network
from ..network.udp import DatagramSocket

if TYPE_CHECKING:
    from ..messaging.transport import DatagramTransport
from .agent import VERSION_2C
from .ber import (
    BerError,
    Integer,
    ObjectIdentifierValue,
    OctetString,
    Sequence,
    TaggedPdu,
    TimeTicks,
    decode,
    encode,
)
from .oids import MIB2, OID

__all__ = ["PDU_TRAP_V2", "TRAP_PORT", "snmpTrapOID", "TrapSender", "ThresholdWatch", "TrapListener", "Notification"]

PDU_TRAP_V2 = 0xA7
TRAP_PORT = 162

#: snmpTrapOID.0 — names which trap this is.
snmpTrapOID = OID("1.3.6.1.6.3.1.1.4.1.0")


@dataclass(frozen=True)
class Notification:
    """A decoded trap as handed to the listener callback."""

    source: tuple[str, int]
    uptime_ticks: int
    trap_oid: OID
    varbinds: tuple[tuple[OID, object], ...]


class TrapSender:
    """Agent-side trap emission."""

    def __init__(
        self,
        network: Network,
        host: str,
        community: str = "public",
        socket: Optional["DatagramTransport"] = None,
    ) -> None:
        self._sock: "DatagramTransport" = (
            socket if socket is not None else DatagramSocket(network, host)
        )
        if self._sock.port is None:
            self._sock.bind_ephemeral()
        self.network = network
        self.community = community
        self._request_id = 1
        self.traps_sent = 0

    def send(
        self,
        dest: tuple[str, int],
        trap_oid: OID,
        varbinds: list[tuple[OID, object]],
        uptime_ticks: Optional[int] = None,
    ) -> bool:
        """Fire one SNMPv2-Trap (unacknowledged, like the real thing)."""
        if uptime_ticks is None:
            uptime_ticks = int(self.network.scheduler.clock.now * 100) % 2**32
        vbs = [
            Sequence((MIB2.sysUpTime.to_ber(), TimeTicks(uptime_ticks))),
            Sequence((snmpTrapOID.to_ber(), trap_oid.to_ber())),
        ]
        vbs.extend(Sequence((oid.to_ber(), value)) for oid, value in varbinds)
        message = Sequence(
            (
                Integer(VERSION_2C),
                OctetString(self.community.encode("latin-1")),
                TaggedPdu(
                    PDU_TRAP_V2,
                    (
                        Integer(self._request_id),
                        Integer(0),
                        Integer(0),
                        Sequence(tuple(vbs)),
                    ),
                ),
            )
        )
        self._request_id += 1
        self.traps_sent += 1
        return self._sock.sendto(encode(message), dest)

    def close(self) -> None:
        self._sock.close()


class ThresholdWatch:
    """Samples an instrumentation routine; traps on threshold crossings.

    One trap fires when the value first crosses ``threshold`` in the
    watched direction and the watch then disarms until the value returns
    to the safe side — so a parameter parked above threshold produces one
    notification, not a flood.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        sender: TrapSender,
        dest: tuple[str, int],
        oid: OID,
        sample: Callable[[], float],
        threshold: float,
        trap_oid: OID,
        direction: str = "above",
        interval: float = 0.5,
        value_factory: Callable[[float], object] = None,
    ) -> None:
        if direction not in ("above", "below"):
            raise ValueError("direction must be 'above' or 'below'")
        from .ber import Gauge32

        self.scheduler = scheduler
        self.sender = sender
        self.dest = dest
        self.oid = oid
        self.sample = sample
        self.threshold = threshold
        self.trap_oid = trap_oid
        self.direction = direction
        self.interval = interval
        self.value_factory = value_factory or (lambda v: Gauge32(int(round(v))))
        self._armed = True
        self._running = False
        self.crossings = 0

    def _breached(self, value: float) -> bool:
        return value > self.threshold if self.direction == "above" else value < self.threshold

    def check(self) -> bool:
        """Sample once; trap if newly breached.  Returns whether fired."""
        value = float(self.sample())
        if self._breached(value):
            if self._armed:
                self._armed = False
                self.crossings += 1
                self.sender.send(
                    self.dest, self.trap_oid, [(self.oid, self.value_factory(value))]
                )
                return True
        else:
            self._armed = True
        return False

    def start(self) -> None:
        """Begin periodic checks on the scheduler."""
        if self._running:
            return
        self._running = True

        def tick() -> None:
            if not self._running:
                return
            self.check()
            self.scheduler.call_after(self.interval, tick)

        self.scheduler.call_after(self.interval, tick)

    def stop(self) -> None:
        self._running = False


class TrapListener:
    """Manager-side trap receiver (port 162 by default)."""

    def __init__(
        self,
        network: Network,
        host: str,
        on_trap: Callable[[Notification], None],
        community: str = "public",
        port: int = TRAP_PORT,
        socket: Optional["DatagramTransport"] = None,
    ) -> None:
        self._sock: "DatagramTransport" = (
            socket if socket is not None else DatagramSocket(network, host)
        )
        if self._sock.port is None:
            self._sock.bind(port)
        self._sock.on_receive = self._on_datagram
        self.on_trap = on_trap
        self.community = community
        self.traps_received = 0
        self.decode_failures = 0

    def _on_datagram(self, data: bytes, src: tuple[str, int]) -> None:
        try:
            msg, _ = decode(data)
            if not isinstance(msg, Sequence) or len(msg.items) != 3:
                raise BerError("bad frame")
            _version, community, pdu = msg.items
            if not isinstance(pdu, TaggedPdu) or pdu.tag_value != PDU_TRAP_V2:
                raise BerError("not a v2 trap")
            if community.value.decode("latin-1") != self.community:
                return  # silently drop wrong community
            vb_list = pdu.items[3]
            pairs = []
            for vb in vb_list.items:
                name, value = vb.items
                pairs.append((OID.from_ber(name), value))
            uptime = pairs[0][1].value if pairs else 0
            trap_oid = OID.from_ber(pairs[1][1]) if len(pairs) > 1 else OID("0.0")
            notification = Notification(
                source=src,
                uptime_ticks=uptime,
                trap_oid=trap_oid,
                varbinds=tuple(pairs[2:]),
            )
        except (BerError, AttributeError, IndexError):
            self.decode_failures += 1
            return
        self.traps_received += 1
        self.on_trap(notification)

    def close(self) -> None:
        self._sock.close()
