"""Object identifiers and the MIB arcs used by the framework.

Provides a hashable, totally ordered :class:`OID` type plus the well-known
arcs the network-state interface queries:

* a few MIB-II scalars (sysDescr, sysUpTime, ifInOctets/ifOutOctets
  style interface counters), and
* the **TASSL host extension arc** — the paper built "a specialized
  embedded extension agent that runs on each host"; its instrumented
  parameters (CPU load, page faults, free memory, link bandwidth,
  latency, jitter) live under a private-enterprise subtree.
"""

from __future__ import annotations

from functools import total_ordering
from typing import Iterable, Union

from .ber import BerError, ObjectIdentifierValue

__all__ = ["OID", "MIB2", "TASSL"]


@total_ordering
class OID:
    """An SNMP object identifier.

    Accepts dotted-string or iterable-of-int construction and supports the
    lexicographic ordering GETNEXT traversal requires.

    >>> OID("1.3.6.1.2.1.1.1.0") < OID("1.3.6.1.2.1.1.2.0")
    True
    >>> OID((1, 3, 6)).is_prefix_of(OID("1.3.6.1"))
    True
    """

    __slots__ = ("arcs",)

    def __init__(self, spec: Union[str, Iterable[int], "OID"]) -> None:
        if isinstance(spec, OID):
            arcs = spec.arcs
        elif isinstance(spec, str):
            text = spec.strip().lstrip(".")
            if not text:
                raise BerError("empty OID string")
            try:
                arcs = tuple(int(p) for p in text.split("."))
            except ValueError as exc:
                raise BerError(f"bad OID string {spec!r}") from exc
        else:
            arcs = tuple(int(a) for a in spec)
        if len(arcs) < 2:
            raise BerError(f"OID needs >= 2 arcs: {arcs!r}")
        if any(a < 0 for a in arcs):
            raise BerError(f"negative arc in {arcs!r}")
        self.arcs = arcs

    # -- identity ------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return isinstance(other, OID) and self.arcs == other.arcs

    def __lt__(self, other: "OID") -> bool:
        return self.arcs < other.arcs

    def __hash__(self) -> int:
        return hash(self.arcs)

    def __str__(self) -> str:
        return ".".join(str(a) for a in self.arcs)

    def __repr__(self) -> str:
        return f"OID({str(self)!r})"

    def __len__(self) -> int:
        return len(self.arcs)

    # -- tree algebra ---------------------------------------------------
    def child(self, *suffix: int) -> "OID":
        """Extend this OID with additional arcs."""
        return OID(self.arcs + tuple(suffix))

    def instance(self) -> "OID":
        """The ``.0`` scalar instance of this object type."""
        return self.child(0)

    def is_prefix_of(self, other: "OID") -> bool:
        """True when ``other`` lies in the subtree rooted at ``self``."""
        return other.arcs[: len(self.arcs)] == self.arcs

    def parent(self) -> "OID":
        """The enclosing arc (error below the 2-arc root)."""
        if len(self.arcs) <= 2:
            raise BerError("cannot take parent of a root OID")
        return OID(self.arcs[:-1])

    def to_ber(self) -> ObjectIdentifierValue:
        """Convert to the BER value type."""
        return ObjectIdentifierValue(self.arcs)

    @classmethod
    def from_ber(cls, value: ObjectIdentifierValue) -> "OID":
        return cls(value.arcs)


class MIB2:
    """Standard MIB-II arcs (RFC 1213 subset used here)."""

    root = OID("1.3.6.1.2.1")
    system = root.child(1)
    sysDescr = system.child(1).instance()
    sysObjectID = system.child(2).instance()
    sysUpTime = system.child(3).instance()
    sysContact = system.child(4).instance()
    sysName = system.child(5).instance()
    sysLocation = system.child(6).instance()
    interfaces = root.child(2)
    ifNumber = interfaces.child(1).instance()
    # ifTable entries, indexed by interface: ifInOctets.<i>, ifOutOctets.<i>
    ifEntry = interfaces.child(2, 1)
    ifDescr = ifEntry.child(2)
    ifSpeed = ifEntry.child(5)
    ifInOctets = ifEntry.child(10)
    ifOutOctets = ifEntry.child(16)


class TASSL:
    """Private-enterprise host-extension MIB (the paper's embedded agent).

    ``1.3.6.1.4.1.4392`` is used as a stand-in enterprise number for the
    Rutgers TASSL agent.  All instrumented host parameters are scalars
    (``.0`` instances):

    =================  =========================================
    object             meaning / unit
    =================  =========================================
    hostCpuLoad        CPU utilisation, percent (Gauge32)
    hostPageFaults     page faults per sampling interval (Gauge32)
    hostFreeMemory     free physical memory, KiB (Gauge32)
    hostTotalMemory    total physical memory, KiB (Gauge32)
    linkBandwidth      nominal access-link bandwidth, bytes/s (Gauge32)
    linkLatencyUs      measured path latency, microseconds (Gauge32)
    linkJitterUs       measured path jitter, microseconds (Gauge32)
    linkLossPpm        measured path loss, parts-per-million (Gauge32)
    hostProcesses      number of running processes (Gauge32)
    hostUptime         agent uptime in TimeTicks
    =================  =========================================
    """

    root = OID("1.3.6.1.4.1.4392")
    host = root.child(1)
    hostCpuLoad = host.child(1).instance()
    hostPageFaults = host.child(2).instance()
    hostFreeMemory = host.child(3).instance()
    hostTotalMemory = host.child(4).instance()
    hostProcesses = host.child(5).instance()
    hostUptime = host.child(6).instance()
    link = root.child(2)
    linkBandwidth = link.child(1).instance()
    linkLatencyUs = link.child(2).instance()
    linkJitterUs = link.child(3).instance()
    linkLossPpm = link.child(4).instance()
    # notification (trap) identities
    traps = root.child(0)
    cpuHighTrap = traps.child(1)
    pageFaultHighTrap = traps.child(2)
    memoryLowTrap = traps.child(3)
    bandwidthLowTrap = traps.child(4)
