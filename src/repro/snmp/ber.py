"""BER (Basic Encoding Rules) codec for the SNMP subset.

The paper's network-state interface "uses the IP address of the network
element, the community string, and the object identifier (OID) of the
parameters of interest ... to directly query the SNMP MIB".  pysnmp is not
available offline, so this module implements the ASN.1 BER subset that
SNMPv1/v2c actually needs, bit-compatible with RFC 1157 / RFC 3416
encodings for the types used:

==============================  =====  =============================
type                            tag    Python surface
==============================  =====  =============================
INTEGER                         0x02   :class:`Integer`
OCTET STRING                    0x04   :class:`OctetString`
NULL                            0x05   :class:`Null`
OBJECT IDENTIFIER               0x06   :class:`ObjectIdentifierValue`
SEQUENCE                        0x30   :class:`Sequence`
IpAddress                       0x40   :class:`IpAddress`
Counter32                       0x41   :class:`Counter32`
Gauge32                         0x42   :class:`Gauge32`
TimeTicks                       0x43   :class:`TimeTicks`
Counter64                       0x46   :class:`Counter64`
noSuchObject / noSuchInstance   0x80 / 0x81   (v2c varbind exceptions)
endOfMibView                    0x82
GetRequest..SNMPv2-Trap PDUs    0xA0.. constructed, context class
==============================  =====  =============================

Encoding uses definite-length form only (SNMP never uses indefinite).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Union

__all__ = [
    "BerError",
    "Integer",
    "OctetString",
    "Null",
    "ObjectIdentifierValue",
    "IpAddress",
    "Counter32",
    "Gauge32",
    "TimeTicks",
    "Counter64",
    "NoSuchObject",
    "NoSuchInstance",
    "EndOfMibView",
    "Sequence",
    "TaggedPdu",
    "encode",
    "decode",
    "encode_length",
    "decode_length",
    "encode_oid_body",
    "decode_oid_body",
]

# Tag constants ---------------------------------------------------------
TAG_INTEGER = 0x02
TAG_OCTET_STRING = 0x04
TAG_NULL = 0x05
TAG_OID = 0x06
TAG_SEQUENCE = 0x30
TAG_IPADDRESS = 0x40
TAG_COUNTER32 = 0x41
TAG_GAUGE32 = 0x42
TAG_TIMETICKS = 0x43
TAG_COUNTER64 = 0x46
TAG_NO_SUCH_OBJECT = 0x80
TAG_NO_SUCH_INSTANCE = 0x81
TAG_END_OF_MIB_VIEW = 0x82
# PDU tags are 0xA0 | pdu-kind; handled by TaggedPdu.


class BerError(ValueError):
    """Raised on malformed BER input or unencodable values."""


# ----------------------------------------------------------------------
# length octets
# ----------------------------------------------------------------------
def encode_length(n: int) -> bytes:
    """Encode a definite length (short or long form)."""
    if n < 0:
        raise BerError(f"negative length {n}")
    if n < 0x80:
        return bytes([n])
    body = n.to_bytes((n.bit_length() + 7) // 8, "big")
    if len(body) > 126:
        raise BerError("length too large")
    return bytes([0x80 | len(body)]) + body

def decode_length(data: bytes, offset: int) -> tuple[int, int]:
    """Decode a length at ``offset``; returns ``(length, next_offset)``."""
    if offset >= len(data):
        raise BerError("truncated length")
    first = data[offset]
    offset += 1
    if first < 0x80:
        return first, offset
    nbytes = first & 0x7F
    if nbytes == 0:
        raise BerError("indefinite length not allowed in SNMP")
    if offset + nbytes > len(data):
        raise BerError("truncated long-form length")
    return int.from_bytes(data[offset : offset + nbytes], "big"), offset + nbytes


# ----------------------------------------------------------------------
# value classes
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Integer:
    """ASN.1 INTEGER (signed, arbitrary width in SNMP's 32-bit envelope)."""

    value: int
    tag = TAG_INTEGER

    def encode_body(self) -> bytes:
        return _encode_signed(self.value)


def _encode_signed(v: int) -> bytes:
    if v == 0:
        return b"\x00"
    length = (v.bit_length() + 8) // 8  # +1 sign bit, rounded up
    body = v.to_bytes(length, "big", signed=True)
    # strip redundant leading octets (0x00 before <0x80, 0xFF before >=0x80)
    while len(body) > 1 and (
        (body[0] == 0x00 and body[1] < 0x80) or (body[0] == 0xFF and body[1] >= 0x80)
    ):
        body = body[1:]
    return body


def _decode_signed(body: bytes) -> int:
    if not body:
        raise BerError("empty INTEGER body")
    return int.from_bytes(body, "big", signed=True)


@dataclass(frozen=True)
class _Unsigned32:
    """Base for Counter32 / Gauge32 / TimeTicks (unsigned 32-bit)."""

    value: int
    tag = -1  # overridden

    def __post_init__(self) -> None:
        if not (0 <= self.value < 2**32):
            raise BerError(f"{type(self).__name__} out of range: {self.value}")

    def encode_body(self) -> bytes:
        # encoded like a non-negative INTEGER (may need a 0x00 pad octet)
        return _encode_signed(self.value)


@dataclass(frozen=True)
class Counter32(_Unsigned32):
    """SNMP Counter32: monotone wrap-around counter."""

    tag = TAG_COUNTER32


@dataclass(frozen=True)
class Gauge32(_Unsigned32):
    """SNMP Gauge32: non-wrapping instantaneous value (loads, rates)."""

    tag = TAG_GAUGE32


@dataclass(frozen=True)
class TimeTicks(_Unsigned32):
    """SNMP TimeTicks: hundredths of a second since agent start."""

    tag = TAG_TIMETICKS


@dataclass(frozen=True)
class Counter64:
    """SNMPv2 Counter64."""

    value: int
    tag = TAG_COUNTER64

    def __post_init__(self) -> None:
        if not (0 <= self.value < 2**64):
            raise BerError(f"Counter64 out of range: {self.value}")

    def encode_body(self) -> bytes:
        return _encode_signed(self.value)


@dataclass(frozen=True)
class OctetString:
    """ASN.1 OCTET STRING; community strings and textual MIB values."""

    value: bytes
    tag = TAG_OCTET_STRING

    def encode_body(self) -> bytes:
        return bytes(self.value)

    def text(self, encoding: str = "utf-8") -> str:
        """Decode the octets as text (DisplayString convention)."""
        return self.value.decode(encoding)


@dataclass(frozen=True)
class Null:
    """ASN.1 NULL: the value slot of varbinds in GET requests."""

    tag = TAG_NULL

    def encode_body(self) -> bytes:
        return b""


@dataclass(frozen=True)
class IpAddress:
    """SNMP IpAddress (4 octets)."""

    value: bytes
    tag = TAG_IPADDRESS

    def __post_init__(self) -> None:
        if len(self.value) != 4:
            raise BerError("IpAddress must be exactly 4 octets")

    def encode_body(self) -> bytes:
        return bytes(self.value)

    @classmethod
    def from_string(cls, dotted: str) -> "IpAddress":
        parts = [int(p) for p in dotted.split(".")]
        if len(parts) != 4 or any(not (0 <= p <= 255) for p in parts):
            raise BerError(f"bad IPv4 address {dotted!r}")
        return cls(bytes(parts))

    def __str__(self) -> str:
        return ".".join(str(b) for b in self.value)


@dataclass(frozen=True)
class _VarBindException:
    """v2c varbind exception markers (encoded like NULL with context tag)."""

    tag = -1

    def encode_body(self) -> bytes:
        return b""


@dataclass(frozen=True)
class NoSuchObject(_VarBindException):
    tag = TAG_NO_SUCH_OBJECT


@dataclass(frozen=True)
class NoSuchInstance(_VarBindException):
    tag = TAG_NO_SUCH_INSTANCE


@dataclass(frozen=True)
class EndOfMibView(_VarBindException):
    tag = TAG_END_OF_MIB_VIEW


# ----------------------------------------------------------------------
# OID body encoding (shared with oids.py)
# ----------------------------------------------------------------------
def encode_oid_body(arcs: tuple[int, ...]) -> bytes:
    """Encode OID arcs per X.690 §8.19 (first two arcs packed)."""
    if len(arcs) < 2:
        raise BerError(f"OID needs >= 2 arcs, got {arcs!r}")
    if arcs[0] > 2 or (arcs[0] < 2 and arcs[1] > 39):
        raise BerError(f"invalid leading OID arcs {arcs[:2]!r}")
    out = bytearray([arcs[0] * 40 + arcs[1]])
    for arc in arcs[2:]:
        if arc < 0:
            raise BerError(f"negative OID arc {arc}")
        chunk = bytearray([arc & 0x7F])
        arc >>= 7
        while arc:
            chunk.append(0x80 | (arc & 0x7F))
            arc >>= 7
        out.extend(reversed(chunk))
    return bytes(out)


def decode_oid_body(body: bytes) -> tuple[int, ...]:
    """Inverse of :func:`encode_oid_body`."""
    if not body:
        raise BerError("empty OID body")
    first = body[0]
    arcs = [min(first // 40, 2), first - 40 * min(first // 40, 2)]
    acc = 0
    in_multibyte = False
    for octet in body[1:]:
        acc = (acc << 7) | (octet & 0x7F)
        if octet & 0x80:
            in_multibyte = True
            continue
        arcs.append(acc)
        acc = 0
        in_multibyte = False
    if in_multibyte:
        raise BerError("truncated multi-byte OID arc")
    return tuple(arcs)


@dataclass(frozen=True)
class ObjectIdentifierValue:
    """ASN.1 OBJECT IDENTIFIER as a tuple of arcs."""

    arcs: tuple[int, ...]
    tag = TAG_OID

    def encode_body(self) -> bytes:
        return encode_oid_body(self.arcs)

    def __str__(self) -> str:
        return ".".join(str(a) for a in self.arcs)


# ----------------------------------------------------------------------
# constructed types
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Sequence:
    """ASN.1 SEQUENCE of BER values (universal constructed)."""

    items: tuple
    tag = TAG_SEQUENCE

    def encode_body(self) -> bytes:
        return b"".join(encode(i) for i in self.items)


@dataclass(frozen=True)
class TaggedPdu:
    """A context-class constructed value: SNMP PDUs (tag = 0xA0 | kind)."""

    tag_value: int
    items: tuple

    @property
    def tag(self) -> int:
        return self.tag_value

    @property
    def pdu_kind(self) -> int:
        """The low nibble of the tag: 0=GetRequest .. 3=SetRequest etc."""
        return self.tag_value & 0x1F

    def encode_body(self) -> bytes:
        return b"".join(encode(i) for i in self.items)


BerValue = Union[
    Integer,
    OctetString,
    Null,
    ObjectIdentifierValue,
    IpAddress,
    Counter32,
    Gauge32,
    TimeTicks,
    Counter64,
    NoSuchObject,
    NoSuchInstance,
    EndOfMibView,
    Sequence,
    TaggedPdu,
]


# ----------------------------------------------------------------------
# top-level encode / decode
# ----------------------------------------------------------------------
def encode(value: BerValue) -> bytes:
    """Serialize one BER value (TLV)."""
    body = value.encode_body()
    return bytes([value.tag]) + encode_length(len(body)) + body


_PRIMITIVE_DECODERS = {
    TAG_INTEGER: lambda b: Integer(_decode_signed(b)),
    TAG_OCTET_STRING: lambda b: OctetString(bytes(b)),
    TAG_NULL: lambda b: Null(),
    TAG_OID: lambda b: ObjectIdentifierValue(decode_oid_body(b)),
    TAG_IPADDRESS: lambda b: IpAddress(bytes(b)),
    TAG_COUNTER32: lambda b: Counter32(_decode_unsigned(b, 32)),
    TAG_GAUGE32: lambda b: Gauge32(_decode_unsigned(b, 32)),
    TAG_TIMETICKS: lambda b: TimeTicks(_decode_unsigned(b, 32)),
    TAG_COUNTER64: lambda b: Counter64(_decode_unsigned(b, 64)),
    TAG_NO_SUCH_OBJECT: lambda b: NoSuchObject(),
    TAG_NO_SUCH_INSTANCE: lambda b: NoSuchInstance(),
    TAG_END_OF_MIB_VIEW: lambda b: EndOfMibView(),
}


def _decode_unsigned(body: bytes, bits: int) -> int:
    v = _decode_signed(body)
    if v < 0:
        # RFC-violating encoders sometimes emit negative; normalize mod 2^bits
        v += 1 << bits
    if v >= 1 << bits:
        raise BerError(f"unsigned{bits} out of range: {v}")
    return v


#: SNMP PDUs nest a handful of levels; a kilobyte of 0xA0 tag bytes would
#: otherwise recurse thousands of frames deep and die with RecursionError.
_MAX_NESTING = 32


def decode(data: bytes, offset: int = 0, *, _depth: int = 0) -> tuple[BerValue, int]:
    """Decode one TLV at ``offset``; returns ``(value, next_offset)``."""
    if _depth > _MAX_NESTING:
        raise BerError(f"constructed TLVs nested deeper than {_MAX_NESTING}")
    if offset >= len(data):
        raise BerError("truncated TLV: no tag")
    tag = data[offset]
    length, body_start = decode_length(data, offset + 1)
    body_end = body_start + length
    if body_end > len(data):
        raise BerError(f"truncated TLV body: need {body_end}, have {len(data)}")
    body = data[body_start:body_end]
    if tag == TAG_SEQUENCE:
        return Sequence(tuple(_decode_all(body, _depth + 1))), body_end
    if (tag & 0xE0) == 0xA0:  # context-class constructed: a PDU
        return TaggedPdu(tag, tuple(_decode_all(body, _depth + 1))), body_end
    decoder = _PRIMITIVE_DECODERS.get(tag)
    if decoder is None:
        raise BerError(f"unsupported BER tag 0x{tag:02X}")
    return decoder(body), body_end


def _decode_all(body: bytes, _depth: int = 0) -> Iterable[BerValue]:
    out = []
    offset = 0
    while offset < len(body):
        value, offset = decode(body, offset, _depth=_depth)
        out.append(value)
    return out
