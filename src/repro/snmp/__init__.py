"""From-scratch SNMP substrate (BER codec, MIB, agent, manager).

Implements the SNMPv1/v2c subset the paper's network-state interface
needs: GET / GETNEXT / SET of scalar MIB objects over datagrams.
"""

from .ber import (
    BerError,
    Counter32,
    Counter64,
    EndOfMibView,
    Gauge32,
    Integer,
    IpAddress,
    NoSuchInstance,
    NoSuchObject,
    Null,
    ObjectIdentifierValue,
    OctetString,
    Sequence,
    TaggedPdu,
    TimeTicks,
    decode,
    encode,
)
from .oids import MIB2, OID, TASSL
from .mib import MibAccessError, MibBinding, MibTree
from .agent import SNMP_PORT, SnmpAgent
from .manager import SnmpManager
from .switch_binding import attach_switch_agent, build_switch_mib
from .traps import (
    Notification,
    ThresholdWatch,
    TrapListener,
    TrapSender,
    TRAP_PORT,
)
from .errors import (
    ErrorStatus,
    SnmpError,
    SnmpErrorResponse,
    SnmpProtocolError,
    SnmpTimeout,
)

__all__ = [
    "BerError",
    "Counter32",
    "Counter64",
    "EndOfMibView",
    "Gauge32",
    "Integer",
    "IpAddress",
    "NoSuchInstance",
    "NoSuchObject",
    "Null",
    "ObjectIdentifierValue",
    "OctetString",
    "Sequence",
    "TaggedPdu",
    "TimeTicks",
    "decode",
    "encode",
    "MIB2",
    "OID",
    "TASSL",
    "MibAccessError",
    "MibBinding",
    "MibTree",
    "SNMP_PORT",
    "SnmpAgent",
    "SnmpManager",
    "attach_switch_agent",
    "Notification",
    "ThresholdWatch",
    "TrapListener",
    "TrapSender",
    "TRAP_PORT",
    "build_switch_mib",
    "ErrorStatus",
    "SnmpError",
    "SnmpErrorResponse",
    "SnmpProtocolError",
    "SnmpTimeout",
]
