"""SNMP agent: services GET / GETNEXT / SET over a datagram socket.

This is the "embedded extension agent that runs on each host and is
serviced by instrumentation routines" (paper Sec. 5.5).  It decodes
RFC 1157-framed messages, checks the community string, dispatches to its
:class:`~repro.snmp.mib.MibTree` and replies with a GetResponse PDU.

Message framing (SNMPv1/v2c)::

    SEQUENCE {
        INTEGER version          -- 0 = v1, 1 = v2c
        OCTET STRING community
        PDU {                     -- context tag 0xA0..0xA3
            INTEGER request-id
            INTEGER error-status
            INTEGER error-index
            SEQUENCE OF SEQUENCE { OID, value }   -- varbind list
        }
    }
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:
    from ..messaging.transport import DatagramTransport

from .ber import (
    BerError,
    Integer,
    Null,
    ObjectIdentifierValue,
    OctetString,
    Sequence,
    TaggedPdu,
    decode,
    encode,
)
from .errors import ErrorStatus, SnmpProtocolError
from .mib import MibAccessError, MibTree
from .oids import OID

__all__ = ["SnmpAgent", "PDU_GET", "PDU_GETNEXT", "PDU_RESPONSE", "PDU_SET", "SNMP_PORT"]

PDU_GET = 0xA0
PDU_GETNEXT = 0xA1
PDU_RESPONSE = 0xA2
PDU_SET = 0xA3
PDU_GETBULK = 0xA5

#: Standard agent port.
SNMP_PORT = 161

VERSION_1 = 0
VERSION_2C = 1


class SnmpAgent:
    """An SNMP agent bound to a host's port 161.

    Parameters
    ----------
    socket:
        A bound-or-bindable datagram endpoint — anything satisfying the
        :class:`~repro.messaging.transport.DatagramTransport` protocol
        (e.g. :class:`~repro.network.udp.DatagramSocket`).
    mib:
        The tree of managed objects to serve.
    read_community / write_community:
        Community strings for read and write access.  SET requests must
        present the write community; GET/GETNEXT accept either.
    """

    def __init__(
        self,
        socket: "DatagramTransport",
        mib: MibTree,
        read_community: str = "public",
        write_community: str = "private",
        port: int = SNMP_PORT,
    ) -> None:
        self.mib = mib
        self.read_community = read_community
        self.write_community = write_community
        self._sock = socket
        if self._sock.port is None:
            self._sock.bind(port)
        self._sock.on_receive = self._handle_datagram
        #: lifecycle flag: a crashed agent keeps its port but answers
        #: nothing (managers see pure timeouts, as with a hung daemon)
        self.alive = True
        # observability counters (themselves exportable via the MIB)
        self.requests_served = 0
        self.auth_failures = 0
        self.decode_failures = 0
        self.dropped_while_down = 0

    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Simulate an agent crash: stop servicing requests.  Idempotent."""
        self.alive = False

    def restart(self) -> None:
        """Bring a crashed agent back up.  Idempotent."""
        self.alive = True

    # ------------------------------------------------------------------
    def _handle_datagram(self, data: bytes, src: tuple[str, int]) -> None:
        if not self.alive:
            self.dropped_while_down += 1
            return
        try:
            reply = self._process(data)
        except (BerError, SnmpProtocolError):
            self.decode_failures += 1
            return  # RFC 1157: drop undecodable messages silently
        if reply is not None:
            self._sock.sendto(reply, src)

    def _process(self, data: bytes) -> Optional[bytes]:
        msg, _ = decode(data)
        if not isinstance(msg, Sequence) or len(msg.items) != 3:
            raise SnmpProtocolError("message is not a 3-element SEQUENCE")
        version, community, pdu = msg.items
        if not isinstance(version, Integer) or version.value not in (VERSION_1, VERSION_2C):
            raise SnmpProtocolError(f"unsupported version {version!r}")
        if not isinstance(community, OctetString) or not isinstance(pdu, TaggedPdu):
            raise SnmpProtocolError("malformed community or PDU")
        if pdu.tag_value not in (PDU_GET, PDU_GETNEXT, PDU_SET, PDU_GETBULK):
            raise SnmpProtocolError(f"unexpected PDU tag 0x{pdu.tag_value:02X}")
        if pdu.tag_value == PDU_GETBULK and version.value != VERSION_2C:
            raise SnmpProtocolError("GETBULK requires SNMPv2c")

        community_text = community.value.decode("latin-1")
        allowed = {self.read_community}
        if pdu.tag_value == PDU_SET:
            allowed = {self.write_community}
        else:
            allowed.add(self.write_community)
        if community_text not in allowed:
            self.auth_failures += 1
            return None  # v1 behaviour: silent drop (+ authenticationFailure trap)

        if len(pdu.items) != 4:
            raise SnmpProtocolError("PDU must have 4 elements")
        request_id, _estatus, _eindex, varbind_list = pdu.items
        if not isinstance(request_id, Integer) or not isinstance(varbind_list, Sequence):
            raise SnmpProtocolError("malformed PDU fields")

        varbinds = []
        for vb in varbind_list.items:
            if not isinstance(vb, Sequence) or len(vb.items) != 2:
                raise SnmpProtocolError("malformed varbind")
            name, value = vb.items
            if not isinstance(name, ObjectIdentifierValue):
                raise SnmpProtocolError("varbind name is not an OID")
            varbinds.append((OID.from_ber(name), value))

        self.requests_served += 1
        if pdu.tag_value == PDU_GETBULK:
            # error-status/-index slots carry non-repeaters / max-repetitions
            non_repeaters = max(0, _estatus.value if isinstance(_estatus, Integer) else 0)
            max_reps = max(0, _eindex.value if isinstance(_eindex, Integer) else 0)
            out_varbinds = self._serve_bulk(varbinds, non_repeaters, max_reps)
            response = Sequence(
                (
                    Integer(version.value),
                    OctetString(community.value),
                    TaggedPdu(
                        PDU_RESPONSE,
                        (
                            Integer(request_id.value),
                            Integer(ErrorStatus.NO_ERROR),
                            Integer(0),
                            Sequence(tuple(out_varbinds)),
                        ),
                    ),
                )
            )
            return encode(response)
        status = ErrorStatus.NO_ERROR
        err_index = 0
        out_varbinds: list[Sequence] = []
        for i, (oid, value) in enumerate(varbinds, start=1):
            try:
                if pdu.tag_value == PDU_GET:
                    result = self.mib.get(oid)
                    out_varbinds.append(Sequence((oid.to_ber(), result)))
                elif pdu.tag_value == PDU_GETNEXT:
                    next_oid, result = self.mib.get_next(oid)
                    out_varbinds.append(Sequence((next_oid.to_ber(), result)))
                else:  # SET
                    self.mib.set(oid, value)
                    out_varbinds.append(Sequence((oid.to_ber(), value)))
            except MibAccessError as exc:
                status = exc.status
                err_index = i
                break
        if status != ErrorStatus.NO_ERROR:
            # v1 error semantics: echo the request varbinds unchanged
            out_varbinds = [
                Sequence((oid.to_ber(), value)) for oid, value in varbinds
            ]

        response = Sequence(
            (
                Integer(version.value),
                OctetString(community.value),
                TaggedPdu(
                    PDU_RESPONSE,
                    (
                        Integer(request_id.value),
                        Integer(status),
                        Integer(err_index),
                        Sequence(tuple(out_varbinds)),
                    ),
                ),
            )
        )
        return encode(response)

    def _serve_bulk(
        self, varbinds: list, non_repeaters: int, max_reps: int
    ) -> list[Sequence]:
        """RFC 3416 GETBULK semantics.

        The first ``non_repeaters`` varbinds get one GETNEXT each; the
        remainder each produce up to ``max_reps`` successive GETNEXTs.
        Walking off the MIB yields ``endOfMibView`` values, never an
        error (v2c exception semantics).
        """
        from .ber import EndOfMibView

        out: list[Sequence] = []

        def one_next(oid: OID) -> tuple[OID, object]:
            try:
                return self.mib.get_next(oid)
            except MibAccessError:
                return oid, EndOfMibView()

        for oid, _value in varbinds[:non_repeaters]:
            next_oid, result = one_next(oid)
            out.append(Sequence((next_oid.to_ber(), result)))
        for oid, _value in varbinds[non_repeaters:]:
            current = oid
            for _ in range(max_reps):
                next_oid, result = one_next(current)
                out.append(Sequence((next_oid.to_ber(), result)))
                if isinstance(result, EndOfMibView):
                    break
                current = next_oid
        return out

    def close(self) -> None:
        """Release the agent's socket."""
        self._sock.close()
