"""MIB tree: the agent-side store of managed objects.

A :class:`MibTree` maps :class:`~repro.snmp.oids.OID` instances to
*bindings*.  A binding is either a static BER value or a zero-argument
callable producing one — the paper's "instrumentation routines" that the
embedded extension agent services.  Writable objects additionally accept a
setter callable.

The tree keeps its keys sorted to serve GETNEXT / walk traversal in OID
lexicographic order, which is what the protocol requires.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Callable, Optional, Union

from .errors import ErrorStatus, SnmpError
from .oids import OID

__all__ = ["MibBinding", "MibTree", "MibAccessError"]

Getter = Callable[[], object]
Setter = Callable[[object], None]


class MibAccessError(SnmpError):
    """Raised by bindings on bad access; carries an RFC 1157 status."""

    def __init__(self, status: int, message: str = "") -> None:
        super().__init__(message or ErrorStatus.name(status))
        self.status = status


@dataclass
class MibBinding:
    """One managed object: a value source and an optional setter."""

    oid: OID
    getter: Getter
    setter: Optional[Setter] = None
    description: str = ""

    @property
    def writable(self) -> bool:
        return self.setter is not None

    def read(self) -> object:
        """Invoke the instrumentation routine; returns a BER value."""
        return self.getter()

    def write(self, value: object) -> None:
        if self.setter is None:
            raise MibAccessError(ErrorStatus.READ_ONLY, f"{self.oid} is read-only")
        self.setter(value)


class MibTree:
    """Sorted collection of :class:`MibBinding` objects.

    Example
    -------
    >>> from repro.snmp.ber import OctetString
    >>> from repro.snmp.oids import OID
    >>> tree = MibTree()
    >>> tree.register_scalar(OID("1.3.6.1.2.1.1.5.0"), OctetString(b"host-a"))
    >>> tree.get(OID("1.3.6.1.2.1.1.5.0")).value
    b'host-a'
    """

    def __init__(self) -> None:
        self._bindings: dict[OID, MibBinding] = {}
        self._sorted_oids: list[OID] = []

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register(self, binding: MibBinding) -> None:
        """Add a binding; re-registering an OID replaces it."""
        if binding.oid not in self._bindings:
            bisect.insort(self._sorted_oids, binding.oid)
        self._bindings[binding.oid] = binding

    def register_scalar(self, oid: OID, value: object, description: str = "") -> None:
        """Register a constant value object."""
        self.register(MibBinding(oid, lambda v=value: v, description=description))

    def register_callable(
        self,
        oid: OID,
        getter: Getter,
        setter: Optional[Setter] = None,
        description: str = "",
    ) -> None:
        """Register an instrumentation routine (and optional setter)."""
        self.register(MibBinding(oid, getter, setter, description))

    def unregister(self, oid: OID) -> None:
        """Remove a binding; unknown OIDs are ignored."""
        if oid in self._bindings:
            del self._bindings[oid]
            idx = bisect.bisect_left(self._sorted_oids, oid)
            if idx < len(self._sorted_oids) and self._sorted_oids[idx] == oid:
                del self._sorted_oids[idx]

    def __contains__(self, oid: OID) -> bool:
        return oid in self._bindings

    def __len__(self) -> int:
        return len(self._bindings)

    # ------------------------------------------------------------------
    # protocol operations
    # ------------------------------------------------------------------
    def get(self, oid: OID) -> object:
        """GET: exact-match read.  Raises noSuchName when absent."""
        binding = self._bindings.get(oid)
        if binding is None:
            raise MibAccessError(ErrorStatus.NO_SUCH_NAME, f"no object {oid}")
        return binding.read()

    def get_next(self, oid: OID) -> tuple[OID, object]:
        """GETNEXT: first binding strictly after ``oid`` in OID order."""
        idx = bisect.bisect_right(self._sorted_oids, oid)
        if idx >= len(self._sorted_oids):
            raise MibAccessError(ErrorStatus.NO_SUCH_NAME, f"end of MIB after {oid}")
        next_oid = self._sorted_oids[idx]
        return next_oid, self._bindings[next_oid].read()

    def set(self, oid: OID, value: object) -> None:
        """SET: write through the binding's setter."""
        binding = self._bindings.get(oid)
        if binding is None:
            raise MibAccessError(ErrorStatus.NO_SUCH_NAME, f"no object {oid}")
        binding.write(value)

    def walk(self, root: OID) -> list[tuple[OID, object]]:
        """Read every binding in the subtree under ``root`` (agent-local)."""
        out: list[tuple[OID, object]] = []
        idx = bisect.bisect_left(self._sorted_oids, root)
        while idx < len(self._sorted_oids):
            oid = self._sorted_oids[idx]
            if not root.is_prefix_of(oid):
                break
            out.append((oid, self._bindings[oid].read()))
            idx += 1
        return out

    @property
    def oids(self) -> list[OID]:
        """All registered OIDs in traversal order."""
        return list(self._sorted_oids)
