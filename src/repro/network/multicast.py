"""IP-multicast-style group delivery over the simulated network.

The collaboration session rides on "the omnipresence of IP [multicast] on
different physical media" (paper Sec. 5.1).  A multicast group is a
membership registry keyed by a group address (``"239.x.y.z"`` style
string) plus a pluggable *delivery strategy*:

* :class:`FlatMulticast` — the historical model: a group send fans out
  as one unicast per member through the simulator.  Observable
  semantics match (independent per-path delay/loss, no sender loopback
  unless requested) but every shared link is billed once per member —
  O(members × path) physical packets per send.
* :class:`TreeMulticast` — rides a
  :class:`~repro.network.routing.MulticastFabric` distribution tree:
  the packet traverses each tree edge once and replicates only at
  branch points, O(tree edges) per send, which is what lets a group
  scale across a shared backbone.

Both strategies produce the identical delivery set, per-receiver order,
and packet-disposition accounting on a loss-free fabric (a hypothesis
property pins this), so the flat registry remains a drop-in fallback
for topologies with no router fabric.

The registry lives outside any single node because real multicast
membership is a network-layer concern (IGMP), not an end-host table.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional, Protocol

from .simnet import Address, Network, NetworkError, Packet
from .udp import DatagramSocket

if TYPE_CHECKING:
    from .routing import MulticastFabric

__all__ = ["FlatMulticast", "MulticastGroup", "MulticastSocket", "TreeMulticast"]


class DeliveryStrategy(Protocol):
    """How a group send reaches the members (flat unicast vs. tree)."""

    def fan_out(
        self,
        group: "MulticastGroup",
        data: bytes,
        sender: "MulticastSocket",
        loopback: bool,
    ) -> int: ...


class FlatMulticast:
    """Per-member unicast fan-out (the fallback, no fabric required).

    Sends go through the sender's own :class:`DatagramSocket` — not
    straight into :meth:`Network.send` — so the per-socket
    ``sent_datagrams`` counter that host instrumentation exports sees
    every multicast datagram, exactly as it sees unicast ones.
    """

    def fan_out(
        self,
        group: "MulticastGroup",
        data: bytes,
        sender: "MulticastSocket",
        loopback: bool,
    ) -> int:
        n = 0
        me = (sender.host, sender.local_port)
        for key in group.members:
            if not loopback and key == me:
                continue
            if sender._sock.sendto(data, key):
                n += 1
        return n


class TreeMulticast:
    """Single-copy replication over a multicast fabric's group tree.

    One datagram leaves the sender's NIC per group send (counted on the
    sender's socket); the fabric's routers replicate it along the
    distribution tree.  Requires every member host to be attached to
    the fabric (see :meth:`MulticastFabric.attach_host`).
    """

    def __init__(self, fabric: "MulticastFabric") -> None:
        self.fabric = fabric

    def fan_out(
        self,
        group: "MulticastGroup",
        data: bytes,
        sender: "MulticastSocket",
        loopback: bool,
    ) -> int:
        me = (sender.host, sender.local_port)
        targets = [key for key in group.members if loopback or key != me]
        packet = Packet(
            sender.host, sender.local_port, group.group, group.port, bytes(data)
        )
        # one physical datagram leaves the host regardless of group size
        sender._sock.sent_datagrams += 1
        return self.fabric.cast(group.group, packet, targets)


class MulticastGroup:
    """Membership registry for one group address + port.

    With a ``fabric``, membership changes graft/prune the fabric's
    distribution tree and sends ride it; without one, delivery falls
    back to :class:`FlatMulticast` unicast fan-out.
    """

    def __init__(
        self,
        network: Network,
        group: str,
        port: int,
        fabric: Optional["MulticastFabric"] = None,
    ) -> None:
        self.network = network
        self.group = group
        self.port = port
        self.fabric = fabric
        self._members: dict[tuple[Address, int], "MulticastSocket"] = {}
        self._delivery: DeliveryStrategy = (
            TreeMulticast(fabric) if fabric is not None else FlatMulticast()
        )
        if fabric is not None:
            fabric.create_group(group)

    def join(self, sock: "MulticastSocket") -> None:
        key = (sock.host, sock.local_port)
        if key in self._members:
            raise NetworkError(f"{key} already joined {self.group}")
        self._members[key] = sock
        if self.fabric is not None:
            self.fabric.join(self.group, sock.host)

    def leave(self, sock: "MulticastSocket") -> None:
        key = (sock.host, sock.local_port)
        if self._members.pop(key, None) is not None and self.fabric is not None:
            self.fabric.leave(self.group, sock.host)

    @property
    def members(self) -> list[tuple[Address, int]]:
        """Current members as (host, port) pairs, sorted for determinism."""
        return sorted(self._members)

    def fan_out(self, data: bytes, sender: "MulticastSocket", loopback: bool) -> int:
        """Deliver ``data`` to every member; returns datagrams scheduled."""
        return self._delivery.fan_out(self, data, sender, loopback)


class MulticastSocket:
    """A socket joined to a multicast group.

    Built on :class:`~repro.network.udp.DatagramSocket`; each member binds
    a distinct local port (the simulator has no SO_REUSEADDR port sharing)
    and the group registry handles fan-out.  Receive is callback-style:
    ``on_receive(data, (src_host, src_port))``.

    Example
    -------
    >>> from repro.network.clock import Scheduler
    >>> sched = Scheduler(); net = Network(sched)
    >>> for n in ("a", "b", "c"): _ = net.add_node(n)
    >>> _ = net.add_link("a", "b"); _ = net.add_link("b", "c")
    >>> grp = MulticastGroup(net, "239.1.1.1", 5000)
    >>> seen = []
    >>> socks = [MulticastSocket(net, h, grp,
    ...          on_receive=lambda d, s, h=h: seen.append((h, d)))
    ...          for h in ("a", "b", "c")]
    >>> _ = socks[0].send(b"ev")
    >>> _ = sched.run()
    >>> sorted(seen)
    [('b', b'ev'), ('c', b'ev')]
    """

    def __init__(
        self,
        network: Network,
        host: Address,
        group: MulticastGroup,
        on_receive: Optional[Callable[[bytes, tuple[Address, int]], None]] = None,
        loopback: bool = False,
    ) -> None:
        self.network = network
        self.host = host
        self.group = group
        self.loopback = loopback
        self._sock = DatagramSocket(network, host)
        self._sock.bind_ephemeral()
        self._sock.on_receive = self._dispatch
        self.on_receive = on_receive
        self._closed = False
        group.join(self)

    @property
    def local_port(self) -> int:
        return self._sock.port  # type: ignore[return-value]

    @property
    def sent_datagrams(self) -> int:
        """Datagrams this socket pushed onto the wire (multicast included)."""
        return self._sock.sent_datagrams

    @property
    def received_datagrams(self) -> int:
        """Datagrams delivered to this socket."""
        return self._sock.received_datagrams

    def _dispatch(self, data: bytes, src: tuple[Address, int]) -> None:
        if self.on_receive is not None:
            self.on_receive(data, src)

    @property
    def closed(self) -> bool:
        """True once :meth:`leave`/:meth:`close` has run."""
        return self._closed

    def send(self, data: bytes) -> int:
        """Multicast ``data`` to the group; returns datagrams scheduled."""
        if self._closed:
            raise NetworkError("multicast socket is closed")
        return self.group.fan_out(data, self, self.loopback)

    def unicast(self, data: bytes, dest: tuple[Address, int]) -> bool:
        """Point-to-point send from the same local port (BS→wireless path)."""
        if self._closed:
            raise NetworkError("multicast socket is closed")
        return self._sock.sendto(data, dest)

    def leave(self) -> None:
        """Leave the group and release the underlying socket.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        self.group.leave(self)
        self._sock.close()

    def close(self) -> None:
        """Alias for :meth:`leave`, matching the transport surface."""
        self.leave()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"MulticastSocket({self.host}:{self.local_port} in {self.group.group})"
