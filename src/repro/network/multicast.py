"""IP-multicast-style group delivery over the simulated network.

The collaboration session rides on "the omnipresence of IP [multicast] on
different physical media" (paper Sec. 5.1).  We model a multicast group as
a membership registry keyed by a group address (``"239.x.y.z"`` style
string); a send to the group fans out as per-member unicast through the
simulator, which matches the observable semantics (independent per-path
delay/loss, sender does not receive its own datagram unless loopback is
requested).

The registry lives outside any single node because real multicast
membership is a network-layer concern (IGMP), not an end-host table.
"""

from __future__ import annotations

from typing import Callable, Optional

from .simnet import Address, Network, NetworkError, Packet
from .udp import DatagramSocket

__all__ = ["MulticastGroup", "MulticastSocket"]


class MulticastGroup:
    """Membership registry for one group address + port."""

    def __init__(self, network: Network, group: str, port: int) -> None:
        self.network = network
        self.group = group
        self.port = port
        self._members: dict[tuple[Address, int], "MulticastSocket"] = {}

    def join(self, sock: "MulticastSocket") -> None:
        key = (sock.host, sock.local_port)
        if key in self._members:
            raise NetworkError(f"{key} already joined {self.group}")
        self._members[key] = sock

    def leave(self, sock: "MulticastSocket") -> None:
        self._members.pop((sock.host, sock.local_port), None)

    @property
    def members(self) -> list[tuple[Address, int]]:
        """Current members as (host, port) pairs, sorted for determinism."""
        return sorted(self._members)

    def fan_out(self, data: bytes, sender: "MulticastSocket", loopback: bool) -> int:
        """Unicast ``data`` to every member; returns datagrams scheduled."""
        n = 0
        for key in self.members:
            if not loopback and key == (sender.host, sender.local_port):
                continue
            member = self._members[key]
            pkt = Packet(sender.host, sender.local_port, member.host, member.local_port, bytes(data))
            if self.network.send(pkt):
                n += 1
        return n


class MulticastSocket:
    """A socket joined to a multicast group.

    Built on :class:`~repro.network.udp.DatagramSocket`; each member binds
    a distinct local port (the simulator has no SO_REUSEADDR port sharing)
    and the group registry handles fan-out.  Receive is callback-style:
    ``on_receive(data, (src_host, src_port))``.

    Example
    -------
    >>> from repro.network.clock import Scheduler
    >>> sched = Scheduler(); net = Network(sched)
    >>> for n in ("a", "b", "c"): _ = net.add_node(n)
    >>> _ = net.add_link("a", "b"); _ = net.add_link("b", "c")
    >>> grp = MulticastGroup(net, "239.1.1.1", 5000)
    >>> seen = []
    >>> socks = [MulticastSocket(net, h, grp,
    ...          on_receive=lambda d, s, h=h: seen.append((h, d)))
    ...          for h in ("a", "b", "c")]
    >>> _ = socks[0].send(b"ev")
    >>> _ = sched.run()
    >>> sorted(seen)
    [('b', b'ev'), ('c', b'ev')]
    """

    def __init__(
        self,
        network: Network,
        host: Address,
        group: MulticastGroup,
        on_receive: Optional[Callable[[bytes, tuple[Address, int]], None]] = None,
        loopback: bool = False,
    ) -> None:
        self.network = network
        self.host = host
        self.group = group
        self.loopback = loopback
        self._sock = DatagramSocket(network, host)
        self._sock.bind_ephemeral()
        self._sock.on_receive = self._dispatch
        self.on_receive = on_receive
        self._closed = False
        group.join(self)

    @property
    def local_port(self) -> int:
        return self._sock.port  # type: ignore[return-value]

    def _dispatch(self, data: bytes, src: tuple[Address, int]) -> None:
        if self.on_receive is not None:
            self.on_receive(data, src)

    @property
    def closed(self) -> bool:
        """True once :meth:`leave`/:meth:`close` has run."""
        return self._closed

    def send(self, data: bytes) -> int:
        """Multicast ``data`` to the group; returns datagrams scheduled."""
        if self._closed:
            raise NetworkError("multicast socket is closed")
        return self.group.fan_out(data, self, self.loopback)

    def unicast(self, data: bytes, dest: tuple[Address, int]) -> bool:
        """Point-to-point send from the same local port (BS→wireless path)."""
        if self._closed:
            raise NetworkError("multicast socket is closed")
        return self._sock.sendto(data, dest)

    def leave(self) -> None:
        """Leave the group and release the underlying socket.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        self.group.leave(self)
        self._sock.close()

    def close(self) -> None:
        """Alias for :meth:`leave`, matching the transport surface."""
        self.leave()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"MulticastSocket({self.host}:{self.local_port} in {self.group.group})"
