"""Hierarchical multicast routing fabric: routers, trust domains, trees.

The paper's session layer assumes "the omnipresence of IP [multicast]"
(Sec. 5.1); the flat per-member unicast model bills every shared link
once per member and gives the fault injector no tree structure to break.
This module supplies the missing network layer, modeled on per-group
distribution-tree maintenance in GDP-style multicast simulators:

* :class:`Router` — a fabric node (backed by an ordinary
  :class:`~repro.network.simnet.Node`) holding a bounded next-hop RIB:
  :meth:`Router.rib_lookup` answers "which neighbors continue this
  group's tree from here" from an :class:`~repro.network.simnet.LruCache`
  validated against the tree epoch.
* :class:`TrustDomain` — an administrative grouping of routers with a
  designated root; domains nest through their roots' parents, giving the
  fabric the hierarchy that anchors (LCA) are computed over.
* :class:`MulticastFabric` — group state: create / join / graft /
  prune, anchor election as the lowest common ancestor of the member
  access routers (ownership *transfers* when membership change moves the
  LCA), and per-group distribution trees as shortest live paths from
  each member's access router to the anchor.

**Data plane.**  A group send builds (or reuses — plans are LRU-cached
per ``(group, sender)`` and invalidated by tree epoch) a
:class:`~repro.network.simnet.CastPlan` by walking the RIB outward from
the sender, then hands it to :meth:`Network.cast`: the packet traverses
each tree edge exactly once and replicates only at branch points —
O(tree edges) physical packets per send instead of O(members × path).

**Repair.**  The fabric listens for topology changes on the network
(installed via :meth:`Network.add_topology_listener`, which the
:class:`~repro.network.faults.ChaosController` drives through
``set_link_up``).  A flap that severs a tree edge triggers a graft/prune
rebuild: members still connected to the anchor re-path around the cut,
and members partitioned away regroup under a per-partition sub-anchor so
intra-partition delivery continues — link flaps become local tree
repairs, not global drops.  Heals re-merge the partitions under the
canonical anchor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

import heapq

from .simnet import Address, CastPlan, LruCache, Network, NetworkError, Packet

__all__ = ["MulticastFabric", "Router", "RoutingError", "TrustDomain"]


class RoutingError(NetworkError):
    """Raised for malformed fabric topology or group operations."""


@dataclass
class TrustDomain:
    """An administrative grouping of routers under one root router."""

    name: str
    parent: Optional[str] = None
    root: Optional[str] = None
    routers: set[str] = field(default_factory=set)


class Router:
    """A replicating fabric node with a bounded per-group next-hop RIB."""

    def __init__(
        self, name: Address, domain: str, parent: Optional[str], fabric: "MulticastFabric"
    ) -> None:
        self.name = name
        self.domain = domain
        self.parent = parent
        self.fabric = fabric
        #: hierarchy depth (roots of top-level domains are 0)
        self.depth: int = 0
        #: ``group -> (epoch, next_hops)``; bounded so a router touched by
        #: thousands of groups holds only its working set
        self._rib: LruCache = LruCache(fabric.rib_cache_size)

    def rib_lookup(self, group: str) -> tuple[Address, ...]:
        """Next hops continuing ``group``'s tree from this router.

        Answers come from the router's bounded RIB cache; entries are
        validated against the group's tree epoch, so a graft, prune, or
        repair invalidates every stale answer at once without touching
        each router.
        """
        state = self.fabric._group(group)
        entry = self._rib.get(group)
        if entry is not None and entry[0] == state.epoch:
            return entry[1]
        hops = state.adjacency.get(self.name, ())
        self._rib.put(group, (state.epoch, hops))
        return hops

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Router({self.name!r}, domain={self.domain!r}, parent={self.parent!r})"


class _GroupState:
    """Per-group tree state: membership refcounts, anchor, edges, epoch."""

    __slots__ = ("addr", "refs", "anchor", "edges", "adjacency", "epoch", "degraded")

    def __init__(self, addr: str) -> None:
        self.addr = addr
        #: member host -> join refcount (several sockets may share a host)
        self.refs: dict[Address, int] = {}
        self.anchor: Optional[Address] = None
        #: undirected tree edges as frozensets (router-router, router-host)
        self.edges: frozenset = frozenset()
        #: node -> sorted tuple of tree neighbors (the RIB's ground truth)
        self.adjacency: dict[Address, tuple[Address, ...]] = {}
        #: bumped on every rebuild; validates RIB entries and cast plans
        self.epoch: int = 0
        #: True when some member is off-tree (partition / access link
        #: down) — such groups rebuild again on the next link heal
        self.degraded: bool = False


class MulticastFabric:
    """Routers + trust domains + per-group distribution trees.

    Parameters
    ----------
    network:
        The simulated network the fabric's routers and links live in.
        The fabric registers a topology listener so link flaps repair
        affected trees immediately.
    rib_cache_size:
        Capacity of each router's next-hop RIB cache.
    plan_cache_size:
        Capacity of the fabric-wide ``(group, sender) -> CastPlan``
        cache.
    """

    def __init__(
        self,
        network: Network,
        rib_cache_size: int = 128,
        plan_cache_size: int = 1024,
    ) -> None:
        self.network = network
        self.rib_cache_size = rib_cache_size
        self.domains: dict[str, TrustDomain] = {}
        self.routers: dict[Address, Router] = {}
        #: host -> its access router
        self._access: dict[Address, Address] = {}
        self._groups: dict[str, _GroupState] = {}
        self._plan_cache: LruCache = LruCache(plan_cache_size)
        # telemetry (deterministic)
        self.grafts = 0
        self.prunes = 0
        self.lca_transfers = 0
        self.repairs = 0
        self.rebuilds = 0
        self.plan_builds = 0
        self.casts = 0
        network.add_topology_listener(self._on_topology)

    # ------------------------------------------------------------------
    # fabric topology
    # ------------------------------------------------------------------
    def add_domain(self, name: str, parent: Optional[str] = None) -> TrustDomain:
        """Declare a trust domain, optionally nested under ``parent``."""
        if name in self.domains:
            raise RoutingError(f"duplicate domain {name!r}")
        if parent is not None and parent not in self.domains:
            raise RoutingError(f"unknown parent domain {parent!r}")
        domain = TrustDomain(name, parent=parent)
        self.domains[name] = domain
        return domain

    def add_router(
        self,
        name: Address,
        domain: str,
        parent: Optional[Address] = None,
        **link_kwargs,
    ) -> Router:
        """Create a router node in ``domain`` under hierarchy ``parent``.

        The first router of a domain becomes its root; a root's parent
        (when given) must belong to another domain, stitching the domain
        hierarchy together.  A physical link to the parent is created
        with ``link_kwargs``.
        """
        if domain not in self.domains:
            raise RoutingError(f"unknown domain {domain!r}")
        if name in self.routers:
            raise RoutingError(f"duplicate router {name!r}")
        if parent is not None and parent not in self.routers:
            raise RoutingError(f"unknown parent router {parent!r}")
        dom = self.domains[domain]
        router = Router(name, domain, parent, self)
        if parent is not None:
            router.depth = self.routers[parent].depth + 1
        self.network.add_node(name)
        if parent is not None:
            self.network.add_link(name, parent, **link_kwargs)
        if dom.root is None:
            dom.root = name
        dom.routers.add(name)
        self.routers[name] = router
        return router

    def connect(self, a: Address, b: Address, **link_kwargs):
        """Extra physical link between two routers (repair capacity)."""
        if a not in self.routers or b not in self.routers:
            raise RoutingError(f"both endpoints must be routers: {a!r}, {b!r}")
        return self.network.add_link(a, b, **link_kwargs)

    def attach_host(self, host: Address, router: Address, **link_kwargs) -> None:
        """Attach ``host`` to the fabric through access router ``router``."""
        if router not in self.routers:
            raise RoutingError(f"unknown access router {router!r}")
        if host in self.routers:
            raise RoutingError(f"{host!r} is a router, not a host")
        if host in self._access:
            raise RoutingError(f"host {host!r} already attached")
        if host not in self.network._nodes:
            self.network.add_node(host)
        self.network.add_link(host, router, **link_kwargs)
        self._access[host] = router

    def access_router(self, host: Address) -> Address:
        """The access router ``host`` is attached through."""
        try:
            return self._access[host]
        except KeyError:
            raise RoutingError(f"host {host!r} is not attached to the fabric") from None

    # ------------------------------------------------------------------
    # group membership (create / join / graft / prune)
    # ------------------------------------------------------------------
    def create_group(self, addr: str) -> None:
        """Register a group address.  Idempotent."""
        if addr not in self._groups:
            self._groups[addr] = _GroupState(addr)

    def join(self, addr: str, host: Address) -> None:
        """Graft ``host`` onto the group's tree (refcounted per host)."""
        self.access_router(host)  # validates attachment
        self.create_group(addr)
        state = self._groups[addr]
        state.refs[host] = state.refs.get(host, 0) + 1
        if state.refs[host] == 1:
            self._rebuild(state)

    def leave(self, addr: str, host: Address) -> None:
        """Prune ``host`` from the group's tree once its last socket leaves."""
        state = self._groups.get(addr)
        if state is None or host not in state.refs:
            return
        state.refs[host] -= 1
        if state.refs[host] <= 0:
            del state.refs[host]
            self._rebuild(state)

    def members(self, addr: str) -> list[Address]:
        """Member hosts of ``addr``, sorted."""
        state = self._groups.get(addr)
        return sorted(state.refs) if state is not None else []

    def group_edges(self, addr: str) -> frozenset:
        """The group's current tree edges (frozensets of endpoints)."""
        return self._group(addr).edges

    def anchor(self, addr: str) -> Optional[Address]:
        """The group's anchor (LCA) router, or None with no members."""
        return self._group(addr).anchor

    def _group(self, addr: str) -> _GroupState:
        try:
            return self._groups[addr]
        except KeyError:
            raise RoutingError(f"unknown group {addr!r}") from None

    # ------------------------------------------------------------------
    # anchor election (LCA over the domain/router hierarchy)
    # ------------------------------------------------------------------
    def _ancestry(self, router: Address) -> list[Address]:
        """Hierarchy chain from ``router`` up to its top-level root."""
        chain = [router]
        seen = {router}
        cur = self.routers[router].parent
        while cur is not None:
            if cur in seen:  # defensive: malformed hierarchy
                raise RoutingError(f"hierarchy cycle through {cur!r}")
            chain.append(cur)
            seen.add(cur)
            cur = self.routers[cur].parent
        return chain

    def _lca(self, routers: Iterable[Address]) -> Optional[Address]:
        """Lowest common ancestor of ``routers`` in the hierarchy forest."""
        names = sorted(set(routers))
        if not names:
            return None
        common: Optional[list[Address]] = None
        for name in names:
            chain = list(reversed(self._ancestry(name)))  # root .. router
            if common is None:
                common = chain
                continue
            keep = 0
            for x, y in zip(common, chain):
                if x != y:
                    break
                keep += 1
            common = common[:keep]
            if not common:
                return None  # disjoint hierarchies
        assert common is not None
        return common[-1] if common else None

    # ------------------------------------------------------------------
    # tree construction + repair
    # ------------------------------------------------------------------
    def _live_router_neighbors(self, router: Address) -> list[Address]:
        """Adjacent routers over administratively-up links, sorted."""
        out = []
        for peer in sorted(self.network._adj.get(router, ())):
            if peer in self.routers and self.network.link(router, peer).up:
                out.append(peer)
        return out

    def _component(self, start: Address) -> set[Address]:
        """Routers reachable from ``start`` over live links."""
        seen = {start}
        frontier = [start]
        while frontier:
            nxt = []
            for node in frontier:
                for peer in self._live_router_neighbors(node):
                    if peer not in seen:
                        seen.add(peer)
                        nxt.append(peer)
            frontier = nxt
        return seen

    def _shortest_router_path(
        self, src: Address, dst: Address
    ) -> Optional[list[Address]]:
        """Lowest-latency live path ``src -> dst`` restricted to routers."""
        if src == dst:
            return [src]
        dist: dict[Address, float] = {src: 0.0}
        prev: dict[Address, Address] = {}
        heap: list[tuple[float, Address]] = [(0.0, src)]
        visited: set[Address] = set()
        while heap:
            d, u = heapq.heappop(heap)
            if u in visited:
                continue
            visited.add(u)
            if u == dst:
                break
            for v in self._live_router_neighbors(u):
                nd = d + self.network.link(u, v).latency
                if nd < dist.get(v, float("inf")):
                    dist[v] = nd
                    prev[v] = u
                    heapq.heappush(heap, (nd, v))
        if dst not in dist:
            return None
        path = [dst]
        while path[-1] != src:
            path.append(prev[path[-1]])
        path.reverse()
        return path

    def _access_link_up(self, host: Address) -> bool:
        router = self._access[host]
        try:
            return self.network.link(host, router).up
        except NetworkError:
            return False

    def _rebuild(self, state: _GroupState) -> None:
        """Recompute the group tree: anchor, edges, adjacency, epoch.

        Members whose access router can reach the anchor over live links
        are grafted along shortest live router paths; members partitioned
        away regroup per connected component under a deterministic
        sub-anchor (the component-local LCA when it lies inside, else
        the shallowest member access router), so intra-partition traffic
        still flows.  The group is marked ``degraded`` whenever any
        member is off the anchor's component, which re-triggers a rebuild
        on the next link heal.
        """
        self.rebuilds += 1
        hosts = sorted(state.refs)
        old_edges = state.edges
        # --- anchor election (LCA transfer on membership change) -------
        access = {h: self._access[h] for h in hosts}
        acc_routers = sorted(set(access.values()))
        anchor = self._lca(acc_routers)
        if anchor is None and acc_routers:
            anchor = min(acc_routers, key=lambda r: (self.routers[r].depth, r))
        if anchor != state.anchor and hosts:
            if state.anchor is not None and anchor is not None:
                self.lca_transfers += 1
            state.anchor = anchor
        elif not hosts:
            state.anchor = None
        # --- per-component tree edges -----------------------------------
        edges: set[frozenset] = set()
        degraded = False
        unassigned = [r for r in acc_routers]
        components: list[set[Address]] = []
        while unassigned:
            comp = self._component(unassigned[0])
            components.append(comp)
            unassigned = [r for r in unassigned if r not in comp]
        if len(components) > 1:
            degraded = True
        for comp in components:
            comp_members = [r for r in acc_routers if r in comp]
            if state.anchor is not None and state.anchor in comp:
                sub_anchor = state.anchor
            else:
                degraded = True  # anchor unreachable: partition sub-tree
                candidate = self._lca(comp_members)
                if candidate is None or candidate not in comp:
                    candidate = min(
                        comp_members, key=lambda r: (self.routers[r].depth, r)
                    )
                sub_anchor = candidate
            for router in comp_members:
                path = self._shortest_router_path(router, sub_anchor)
                if path is None:  # pragma: no cover - same component, has path
                    degraded = True
                    continue
                for u, v in zip(path, path[1:]):
                    edges.add(frozenset((u, v)))
        # --- access edges ------------------------------------------------
        for host in hosts:
            if self._access_link_up(host):
                edges.add(frozenset((host, access[host])))
            else:
                degraded = True
        # --- commit ------------------------------------------------------
        new_edges = frozenset(edges)
        added = len(new_edges - old_edges)
        removed = len(old_edges - new_edges)
        self.grafts += added
        self.prunes += removed
        state.edges = new_edges
        adjacency: dict[Address, list[Address]] = {}
        for edge in new_edges:
            u, v = sorted(edge)
            adjacency.setdefault(u, []).append(v)
            adjacency.setdefault(v, []).append(u)
        state.adjacency = {
            node: tuple(sorted(peers)) for node, peers in sorted(adjacency.items())
        }
        state.degraded = degraded
        state.epoch += 1

    def _on_topology(self, a: Address, b: Address, up: bool) -> None:
        """Network topology-change hook: repair affected group trees."""
        key = frozenset((a, b))
        for addr in sorted(self._groups):
            state = self._groups[addr]
            if not state.refs:
                continue
            if up:
                # a heal can only improve connectivity; only degraded
                # trees (somebody off-tree) need re-merging
                if state.degraded:
                    self.repairs += 1
                    self._rebuild(state)
            elif key in state.edges:
                self.repairs += 1
                self._rebuild(state)

    # ------------------------------------------------------------------
    # data plane
    # ------------------------------------------------------------------
    def plan(self, addr: str, root: Address) -> CastPlan:
        """The cast plan for a send by ``root`` — cached per tree epoch.

        Built by walking the per-router RIB (:meth:`Router.rib_lookup`)
        outward from the sender's host, emitting edges parent-before-
        child; the walk only ever touches the sender's side of a
        partitioned tree, exactly like a real replication would.
        """
        state = self._group(addr)
        entry = self._plan_cache.get((addr, root))
        if entry is not None and entry[0] == state.epoch:
            return entry[1]
        self.plan_builds += 1
        edges: list[tuple[Address, Address]] = []
        visited = {root}
        frontier = [root]
        while frontier:
            nxt = []
            for node in frontier:
                router = self.routers.get(node)
                if router is not None:
                    hops = router.rib_lookup(addr)
                else:
                    hops = state.adjacency.get(node, ())
                for hop in hops:
                    if hop in visited:
                        continue
                    visited.add(hop)
                    edges.append((node, hop))
                    nxt.append(hop)
            frontier = nxt
        built = CastPlan(root, tuple(edges))
        self._plan_cache.put((addr, root), (state.epoch, built))
        return built

    def cast(
        self, addr: str, packet: Packet, targets: list[tuple[Address, int]]
    ) -> int:
        """Send ``packet`` down the group tree to ``targets``.

        Returns the number of targets scheduled for delivery (the rest
        were dropped: lossy edge, severed subtree, or down access link).
        """
        self.casts += 1
        return self.network.cast(packet, self.plan(addr, packet.src), targets)

    # ------------------------------------------------------------------
    def stats(self) -> dict[str, int]:
        """Deterministic counter snapshot (sorted keys, ints only)."""
        return {
            "casts": self.casts,
            "domains": len(self.domains),
            "grafts": self.grafts,
            "groups": len(self._groups),
            "hosts": len(self._access),
            "lca_transfers": self.lca_transfers,
            "plan_builds": self.plan_builds,
            "prunes": self.prunes,
            "rebuilds": self.rebuilds,
            "repairs": self.repairs,
            "routers": len(self.routers),
        }
