"""Simulated network substrate: discrete-event clock, links, UDP, multicast.

Replaces the paper's physical LAN testbed with a reproducible packet-level
simulator (see DESIGN.md §3 for the substitution argument).
"""

from .clock import Event, Scheduler, SimClock, SimulationError
from .simnet import (
    Address,
    CastPlan,
    Link,
    LruCache,
    Network,
    NetworkError,
    Node,
    Packet,
    PortInUseError,
)
from .udp import DatagramSocket
from .multicast import FlatMulticast, MulticastGroup, MulticastSocket, TreeMulticast
from .routing import MulticastFabric, Router, RoutingError, TrustDomain
from .faults import (
    AgentCrash,
    BurstLoss,
    ChaosController,
    Corruption,
    Duplication,
    FaultPlan,
    FaultPlanError,
    LatencySpike,
    LinkFlap,
    Partition,
    Reordering,
)

__all__ = [
    "Event",
    "Scheduler",
    "SimClock",
    "SimulationError",
    "Address",
    "CastPlan",
    "Link",
    "LruCache",
    "Network",
    "NetworkError",
    "Node",
    "Packet",
    "PortInUseError",
    "DatagramSocket",
    "FlatMulticast",
    "MulticastGroup",
    "MulticastSocket",
    "TreeMulticast",
    "MulticastFabric",
    "Router",
    "RoutingError",
    "TrustDomain",
    "AgentCrash",
    "BurstLoss",
    "ChaosController",
    "Corruption",
    "Duplication",
    "FaultPlan",
    "FaultPlanError",
    "LatencySpike",
    "LinkFlap",
    "Partition",
    "Reordering",
]
