"""Simulated network substrate: discrete-event clock, links, UDP, multicast.

Replaces the paper's physical LAN testbed with a reproducible packet-level
simulator (see DESIGN.md §3 for the substitution argument).
"""

from .clock import Event, Scheduler, SimClock, SimulationError
from .simnet import Address, Link, Network, NetworkError, Node, Packet
from .udp import DatagramSocket
from .multicast import MulticastGroup, MulticastSocket
from .faults import (
    AgentCrash,
    BurstLoss,
    ChaosController,
    Corruption,
    Duplication,
    FaultPlan,
    FaultPlanError,
    LatencySpike,
    LinkFlap,
    Partition,
    Reordering,
)

__all__ = [
    "Event",
    "Scheduler",
    "SimClock",
    "SimulationError",
    "Address",
    "Link",
    "Network",
    "NetworkError",
    "Node",
    "Packet",
    "DatagramSocket",
    "MulticastGroup",
    "MulticastSocket",
    "AgentCrash",
    "BurstLoss",
    "ChaosController",
    "Corruption",
    "Duplication",
    "FaultPlan",
    "FaultPlanError",
    "LatencySpike",
    "LinkFlap",
    "Partition",
    "Reordering",
]
