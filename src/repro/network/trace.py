"""Packet tracing: pcap-style observability for the simulated network.

A :class:`PacketTracer` hooks :meth:`Network.send` and records every
datagram injected into the fabric — timestamp, endpoints, ports, size,
and whether the simulator dropped it.  Per-flow summaries support the
kind of "who talked to whom, how much" analysis an operator (or a test)
wants after a run, without touching any component's internals.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Optional

from .simnet import Network, Packet

__all__ = ["TraceRecord", "FlowStats", "PacketTracer"]


@dataclass(frozen=True)
class TraceRecord:
    """One observed datagram."""

    time: float
    src: str
    src_port: int
    dst: str
    dst_port: int
    size: int
    delivered: bool


@dataclass
class FlowStats:
    """Aggregate over one (src, dst, dst_port) flow."""

    packets: int = 0
    octets: int = 0
    dropped: int = 0
    first_time: float = 0.0
    last_time: float = 0.0

    @property
    def loss_rate(self) -> float:
        return self.dropped / self.packets if self.packets else 0.0


class PacketTracer:
    """Records traffic on a :class:`~repro.network.simnet.Network`.

    Attach with :meth:`attach`; detach restores the original ``send``.
    ``capacity`` bounds the per-record buffer (the flow table is always
    complete).

    Example
    -------
    >>> from repro.network.clock import Scheduler
    >>> sched = Scheduler(); net = Network(sched)
    >>> _ = net.add_node("a"); _ = net.add_node("b")
    >>> _ = net.add_link("a", "b")
    >>> tracer = PacketTracer(net); tracer.attach()
    >>> _ = net.send(Packet("a", 1, "b", 9, b"xyz"))
    >>> tracer.records[0].size
    31
    """

    def __init__(self, network: Network, capacity: int = 100_000) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.network = network
        self.capacity = capacity
        self.records: list[TraceRecord] = []
        self.flows: dict[tuple[str, str, int], FlowStats] = defaultdict(FlowStats)
        self._original_send = None
        self.total_packets = 0
        self.total_octets = 0

    # ------------------------------------------------------------------
    def attach(self) -> None:
        """Begin tracing (idempotent)."""
        if self._original_send is not None:
            return
        self._original_send = self.network.send

        def traced_send(packet: Packet) -> bool:
            delivered = self._original_send(packet)
            self._record(packet, delivered)
            return delivered

        self.network.send = traced_send  # type: ignore[method-assign]

    def detach(self) -> None:
        """Stop tracing and restore the network (idempotent)."""
        if self._original_send is not None:
            self.network.send = self._original_send  # type: ignore[method-assign]
            self._original_send = None

    def _record(self, packet: Packet, delivered: bool) -> None:
        now = self.network.scheduler.clock.now
        self.total_packets += 1
        self.total_octets += packet.size
        if len(self.records) < self.capacity:
            self.records.append(
                TraceRecord(
                    time=now,
                    src=packet.src,
                    src_port=packet.src_port,
                    dst=packet.dst,
                    dst_port=packet.dst_port,
                    size=packet.size,
                    delivered=delivered,
                )
            )
        flow = self.flows[(packet.src, packet.dst, packet.dst_port)]
        if flow.packets == 0:
            flow.first_time = now
        flow.packets += 1
        flow.octets += packet.size
        flow.last_time = now
        if not delivered:
            flow.dropped += 1

    # ------------------------------------------------------------------
    def flows_from(self, src: str) -> dict[tuple[str, str, int], FlowStats]:
        """All flows originated by one host."""
        return {k: v for k, v in self.flows.items() if k[0] == src}

    def top_talkers(self, n: int = 5) -> list[tuple[str, int]]:
        """Hosts ranked by octets sent."""
        per_host: dict[str, int] = defaultdict(int)
        for (src, _dst, _port), stats in self.flows.items():
            per_host[src] += stats.octets
        return sorted(per_host.items(), key=lambda kv: (-kv[1], kv[0]))[:n]

    def summary(self) -> str:
        """One-paragraph human rendering."""
        lines = [
            f"trace: {self.total_packets} packets, {self.total_octets} octets,"
            f" {len(self.flows)} flows"
        ]
        for (src, dst, port), st in sorted(self.flows.items()):
            lines.append(
                f"  {src} -> {dst}:{port}  {st.packets} pkts  {st.octets} B"
                f"  loss {100 * st.loss_rate:.1f}%"
            )
        return "\n".join(lines)
