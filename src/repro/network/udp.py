"""Datagram sockets over the simulated network.

:class:`DatagramSocket` gives higher layers (SNMP agent/manager, the
RTP-thin messaging transport) a familiar ``bind / sendto / recv`` surface
while everything underneath runs on the discrete-event simulator.

Two receive styles are supported:

* **callback** — ``sock.on_receive = fn`` invokes ``fn(data, (host, port))``
  the moment a packet is delivered (virtual time), which is how the agents
  and the messaging substrate operate; and
* **queue** — without a callback, packets accumulate and ``recvfrom()``
  pops them, which is convenient in tests.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from .simnet import Address, Network, NetworkError, Packet, PortInUseError

__all__ = ["DatagramSocket", "EPHEMERAL_BASE", "EPHEMERAL_MAX"]

#: First port handed out by :meth:`DatagramSocket.bind_ephemeral`.
EPHEMERAL_BASE = 49152
#: Last port in the ephemeral range (inclusive).
EPHEMERAL_MAX = 65535


class DatagramSocket:
    """An unreliable datagram endpoint bound to a (host, port) pair.

    Example
    -------
    >>> from repro.network.clock import Scheduler
    >>> sched = Scheduler(); net = Network(sched)
    >>> _ = net.add_node("a"); _ = net.add_node("b")
    >>> _ = net.add_link("a", "b")
    >>> rx = DatagramSocket(net, "b"); rx.bind(7)
    >>> tx = DatagramSocket(net, "a"); tx.bind_ephemeral()
    49152
    >>> tx.sendto(b"ping", ("b", 7))
    True
    >>> _ = sched.run()
    >>> rx.recvfrom()
    (b'ping', ('a', 49152))
    """

    def __init__(self, network: Network, host: Address) -> None:
        self.network = network
        self.host = host
        self.port: Optional[int] = None
        self.on_receive: Optional[Callable[[bytes, tuple[Address, int]], None]] = None
        self._queue: deque[tuple[bytes, tuple[Address, int]]] = deque()
        self._closed = False
        # per-socket counters (exported via host instrumentation)
        self.sent_datagrams = 0
        self.received_datagrams = 0

    # ------------------------------------------------------------------
    def bind(self, port: int) -> None:
        """Bind to an explicit port on this socket's host."""
        if self._closed:
            raise NetworkError("socket is closed")
        if self.port is not None:
            raise NetworkError(f"socket already bound to port {self.port}")
        self.network.node(self.host).bind(port, self._deliver)
        self.port = port

    def bind_ephemeral(self) -> int:
        """Bind to a free ephemeral port; returns the port.

        Allocation starts at the host's next-port hint — shared across
        every socket on the node, so N socket creations cost O(N) probes
        total instead of rescanning from :data:`EPHEMERAL_BASE` each
        time — and wraps around the ephemeral range, which lets ports
        freed by :meth:`close` be reused once the hint comes back
        around.  Only genuine :class:`PortInUseError` conflicts are
        retried; any other :class:`NetworkError` propagates.
        """
        if self._closed:
            raise NetworkError("socket is closed")
        node = self.network.node(self.host)
        port = node.ephemeral_hint
        if not (EPHEMERAL_BASE <= port <= EPHEMERAL_MAX):
            port = EPHEMERAL_BASE
        first = port
        while True:
            try:
                node.bind(port, self._deliver)
            except PortInUseError:
                port = port + 1 if port < EPHEMERAL_MAX else EPHEMERAL_BASE
                if port == first:
                    raise NetworkError("ephemeral port space exhausted") from None
                continue
            node.ephemeral_hint = port + 1 if port < EPHEMERAL_MAX else EPHEMERAL_BASE
            self.port = port
            return port

    def close(self) -> None:
        """Release the port binding.  Idempotent."""
        if self.port is not None:
            self.network.node(self.host).unbind(self.port)
            self.port = None
        self._closed = True

    # ------------------------------------------------------------------
    def sendto(self, data: bytes, dest: tuple[Address, int]) -> bool:
        """Send ``data`` to ``(host, port)``.

        A bound source port is required so that replies can find their way
        back (the SNMP manager depends on this).  Returns ``False`` when
        the simulator dropped the datagram.
        """
        if self._closed:
            raise NetworkError("socket is closed")
        if self.port is None:
            self.bind_ephemeral()
        host, port = dest
        pkt = Packet(self.host, self.port, host, port, bytes(data))
        self.sent_datagrams += 1
        return self.network.send(pkt)

    def _deliver(self, packet: Packet) -> None:
        self.received_datagrams += 1
        item = (packet.payload, (packet.src, packet.src_port))
        if self.on_receive is not None:
            self.on_receive(*item)
        else:
            self._queue.append(item)

    # ------------------------------------------------------------------
    def recvfrom(self) -> Optional[tuple[bytes, tuple[Address, int]]]:
        """Pop the oldest queued datagram, or ``None`` when empty.

        Only meaningful when no ``on_receive`` callback is installed.
        """
        if self._queue:
            return self._queue.popleft()
        return None

    @property
    def pending(self) -> int:
        """Number of queued, unread datagrams."""
        return len(self._queue)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"DatagramSocket({self.host}:{self.port})"
