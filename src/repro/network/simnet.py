"""Simulated packet network: nodes, links, routing, datagram delivery.

The paper's testbed was "several Windows NT workstations on the local
network".  We replace the physical LAN with a controllable packet-level
simulator: a graph of :class:`Node` objects joined by :class:`Link` objects
carrying bandwidth, propagation latency, jitter and loss.  Datagram
delivery computes the shortest (lowest-latency) path, samples per-link loss
and jitter, sums serialization + propagation delay, and schedules delivery
on the shared :class:`~repro.network.clock.Scheduler`.

This deliberately models only what the framework above it observes —
datagram semantics (delay, reorder, loss) and per-interface counters that
the SNMP agent exports (``ifInOctets``-style octet counts).
"""

from __future__ import annotations

import heapq
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Optional, Sequence, Union

import numpy as np

from .clock import Scheduler, SimulationError

__all__ = [
    "Address",
    "CastPlan",
    "Link",
    "LruCache",
    "Node",
    "Network",
    "NetworkError",
    "Packet",
    "PortInUseError",
]

#: A network address is just a string host name; ports live in udp.py.
Address = str

#: route-cache sentinel distinguishing "not cached" from "cached None
#: (unroutable)"
_ROUTE_MISS = object()


class NetworkError(RuntimeError):
    """Raised for malformed topology operations or unroutable sends."""


class PortInUseError(NetworkError):
    """Raised by :meth:`Node.bind` when the requested port is taken.

    Distinct from the base class so that ephemeral-port allocation can
    retry on genuine conflicts without swallowing unrelated network
    errors (closed sockets, unknown hosts) as "port occupied".
    """


class LruCache:
    """A bounded mapping with least-recently-used eviction.

    Backs the route cache and the per-router multicast RIBs so that
    city-scale topologies (thousands of routers, long-running sessions)
    cannot grow lookup state without bound.  ``get`` refreshes recency;
    ``put`` evicts the stalest entry once ``capacity`` is exceeded.
    """

    __slots__ = ("capacity", "_data", "hits", "misses", "evictions")

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("LruCache capacity must be positive")
        self.capacity = capacity
        self._data: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key, default=None):
        try:
            value = self._data[key]
        except KeyError:
            self.misses += 1
            return default
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key, value) -> None:
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        if len(self._data) > self.capacity:
            self._data.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        self._data.clear()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key) -> bool:
        return key in self._data


@dataclass
class Packet:
    """A datagram in flight.

    ``payload`` is opaque ``bytes``; ``src``/``dst`` are host names and the
    port pair is carried for the socket layer to demultiplex.
    """

    src: Address
    src_port: int
    dst: Address
    dst_port: int
    payload: bytes

    @property
    def size(self) -> int:
        """Size in bytes used for serialization-delay computation.

        Includes a 28-byte IP+UDP header allowance so that tiny payloads
        still cost non-zero wire time, as on a real network.
        """
        return len(self.payload) + 28


@dataclass(frozen=True)
class CastPlan:
    """A single-copy replication schedule for one multicast transmission.

    ``root`` is the sending host; ``edges`` are ``(parent, child)``
    node pairs ordered parent-before-child outward from the root over
    the group's distribution tree (built by
    :class:`repro.network.routing.MulticastFabric`).  The plan is pure
    data, so it can be cached per ``(group, root)`` and replayed for
    every send until the tree changes.
    """

    root: Address
    edges: tuple[tuple[Address, Address], ...]


@dataclass
class Link:
    """A bidirectional link between two nodes.

    Parameters
    ----------
    bandwidth:
        Capacity in bytes/second.  ``float("inf")`` means no serialization
        delay.
    latency:
        One-way propagation delay in seconds.
    jitter:
        Standard deviation of a truncated-Gaussian perturbation added to
        the propagation delay (never allowed to make delay negative).
    loss:
        Independent per-packet drop probability in ``[0, 1)``.
    """

    a: Address
    b: Address
    bandwidth: float = float("inf")
    latency: float = 0.0005
    jitter: float = 0.0
    loss: float = 0.0

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise NetworkError("bandwidth must be positive")
        if self.latency < 0 or self.jitter < 0:
            raise NetworkError("latency and jitter must be non-negative")
        if not (0.0 <= self.loss < 1.0):
            raise NetworkError("loss must be in [0, 1)")
        #: administrative state; a down link carries nothing and is
        #: invisible to routing (see :meth:`Network.set_link_up`)
        self.up: bool = True
        # Cumulative counters, exported through the SNMP host agent.
        self.tx_octets: int = 0
        self.rx_octets: int = 0
        self.dropped_packets: int = 0
        self.delivered_packets: int = 0
        # FIFO transmission queue state per direction (keyed by src node):
        # the virtual time the transmitter becomes free again.
        self._busy_until: dict[Address, float] = {}
        # Last arrival time per direction: enqueue clamps to this so an
        # independently-sampled jitter draw can never land a later packet
        # before an earlier one on the same direction (per-link FIFO).
        self._last_arrival: dict[Address, float] = {}
        #: optional size-dependent loss model: ``loss_fn(size_bytes) -> p``.
        #: When set it overrides the scalar ``loss`` (used by the coupled
        #: wireless channel, where small frames ride a robust base rate).
        self.loss_fn = None

    def other(self, node: Address) -> Address:
        """The peer endpoint of ``node`` on this link."""
        if node == self.a:
            return self.b
        if node == self.b:
            return self.a
        raise NetworkError(f"{node!r} is not an endpoint of {self!r}")

    def transit_delay(self, size: int, rng: np.random.Generator) -> float:
        """Serialization + propagation (+ jitter) delay for ``size`` bytes."""
        ser = 0.0 if self.bandwidth == float("inf") else size / self.bandwidth
        delay = ser + self.latency
        if self.jitter > 0.0:
            delay += abs(float(rng.normal(0.0, self.jitter)))
        return delay

    def enqueue(self, src: Address, now: float, size: int, rng: np.random.Generator) -> float:
        """FIFO transmission: departure-complete time for ``size`` bytes.

        Packets entering the same link direction back-to-back serialize
        one after another (models congestion delay and preserves per-link
        FIFO order, which the RTP layer and reassembly depend on).
        Because jitter is sampled independently per packet, the raw
        arrival time of a later packet could precede an earlier one; the
        per-direction arrival clock is therefore clamped non-decreasing,
        making the FIFO promise hold even with ``jitter > 0``.
        Returns the absolute time the packet finishes the link (including
        propagation + jitter).
        """
        ser = 0.0 if self.bandwidth == float("inf") else size / self.bandwidth
        start = max(now, self._busy_until.get(src, 0.0))
        self._busy_until[src] = start + ser
        delay = self.latency
        if self.jitter > 0.0:
            delay += abs(float(rng.normal(0.0, self.jitter)))
        arrival = start + ser + delay
        prev = self._last_arrival.get(src)
        if prev is not None and arrival < prev:
            arrival = prev
        self._last_arrival[src] = arrival
        return arrival


class Node:
    """A host attached to the network.

    Sockets register receive callbacks keyed by port through
    :mod:`repro.network.udp`; the node only demultiplexes.
    """

    def __init__(self, name: Address, network: "Network") -> None:
        self.name = name
        self.network = network
        self._port_handlers: dict[int, Callable[[Packet], None]] = {}
        #: next-port hint for ephemeral binds (see
        #: :meth:`repro.network.udp.DatagramSocket.bind_ephemeral`):
        #: shared across every socket on this host so N socket creations
        #: cost O(N) probes total instead of O(N^2)
        self.ephemeral_hint: int = 0

    def bind(self, port: int, handler: Callable[[Packet], None]) -> None:
        """Attach ``handler`` to ``port``.  One handler per port."""
        if port in self._port_handlers:
            raise PortInUseError(f"port {port} already bound on {self.name}")
        self._port_handlers[port] = handler

    def unbind(self, port: int) -> None:
        """Release ``port``.  Unknown ports are ignored."""
        self._port_handlers.pop(port, None)

    def deliver(self, packet: Packet) -> None:
        """Hand an arriving packet to the bound socket, if any.

        Packets to unbound ports are silently discarded (as UDP does).
        """
        handler = self._port_handlers.get(packet.dst_port)
        if handler is not None:
            handler(packet)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Node({self.name!r}, ports={sorted(self._port_handlers)})"


class Network:
    """A routable graph of nodes and links with datagram delivery.

    Example
    -------
    >>> sched = Scheduler()
    >>> net = Network(sched, seed=7)
    >>> _ = net.add_node("alice"); _ = net.add_node("bob")
    >>> _ = net.add_link("alice", "bob", latency=0.001)
    >>> got = []
    >>> net.node("bob").bind(9, lambda p: got.append(p.payload))
    >>> net.send(Packet("alice", 1, "bob", 9, b"hi"))
    True
    >>> _ = sched.run(); got
    [b'hi']
    """

    #: default bound on cached routes; city-scale topologies have O(N^2)
    #: host pairs, so the cache must be LRU-bounded, not grow-forever
    DEFAULT_ROUTE_CACHE = 4096

    def __init__(
        self,
        scheduler: Scheduler,
        seed: int = 0,
        route_cache_size: int = DEFAULT_ROUTE_CACHE,
    ) -> None:
        self.scheduler = scheduler
        self.rng = np.random.default_rng(seed)
        self._nodes: dict[Address, Node] = {}
        self._links: dict[frozenset, Link] = {}
        self._adj: dict[Address, set[Address]] = {}
        self._route_cache: LruCache = LruCache(route_cache_size)
        #: observers of administrative topology change, called as
        #: ``listener(a, b, up)`` after a link is added (up), removed
        #: (down), or flapped; the multicast fabric uses this to repair
        #: distribution trees instead of suffering global drops
        self._topology_listeners: list[Callable[[Address, Address, bool], None]] = []
        #: optional fault hook (see :mod:`repro.network.faults`): called as
        #: ``interceptor(packet, path, t)`` for every packet that survived
        #: routing and loss, returning the list of deliveries — ``[t]``
        #: to deliver normally, ``[]`` to drop, two entries to duplicate.
        #: An entry may also be ``(t, substitute_packet)`` to deliver a
        #: modified copy (payload corruption) at that time instead.
        self.delivery_interceptor: Optional[
            Callable[
                [Packet, list[Link], float],
                list[Union[float, tuple[float, Packet]]],
            ]
        ] = None
        # Per-packet disposition counters: every send() ends in exactly
        # one of delivered / dropped / duplicated (delivered-more-than-once),
        # so sent == delivered + dropped + duplicated always holds.
        self.packets_sent: int = 0
        self.packets_delivered: int = 0
        self.packets_dropped: int = 0
        self.packets_duplicated: int = 0
        #: total delivery copies scheduled (>= packets_delivered)
        self.copies_delivered: int = 0
        #: physical link transmissions (one per link hop actually carried,
        #: lost hops excluded).  A unicast costs path-length transmissions;
        #: a tree cast costs one per live tree edge — the counter the
        #: multicast-scale benchmark gates on.
        self.packets_transmitted: int = 0

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------
    def add_node(self, name: Address) -> Node:
        """Create and register a node.  Names must be unique."""
        if name in self._nodes:
            raise NetworkError(f"duplicate node {name!r}")
        node = Node(name, self)
        self._nodes[name] = node
        self._adj[name] = set()
        self._route_cache.clear()
        return node

    def add_link(self, a: Address, b: Address, **kwargs) -> Link:
        """Join two existing nodes with a link (kwargs → :class:`Link`)."""
        if a not in self._nodes or b not in self._nodes:
            raise NetworkError(f"both endpoints must exist: {a!r}, {b!r}")
        if a == b:
            raise NetworkError("self-links are not allowed")
        key = frozenset((a, b))
        if key in self._links:
            raise NetworkError(f"link {a!r}-{b!r} already exists")
        link = Link(a, b, **kwargs)
        self._links[key] = link
        self._adj[a].add(b)
        self._adj[b].add(a)
        self._route_cache.clear()
        self._notify_topology(a, b, True)
        return link

    def remove_link(self, a: Address, b: Address) -> None:
        """Tear down a link (models partition / roaming disconnect)."""
        key = frozenset((a, b))
        if key not in self._links:
            raise NetworkError(f"no link {a!r}-{b!r}")
        del self._links[key]
        self._adj[a].discard(b)
        self._adj[b].discard(a)
        self._route_cache.clear()
        self._notify_topology(a, b, False)

    def set_link_up(self, a: Address, b: Address, up: bool) -> Link:
        """Administratively flap a link without losing its counters.

        A down link is skipped by routing (traffic reroutes if the graph
        allows, otherwise sends become unroutable drops).  Used by the
        fault-injection layer for flaps and partitions; idempotent.
        """
        link = self.link(a, b)
        if link.up != up:
            link.up = up
            self._route_cache.clear()
            self._notify_topology(a, b, up)
        return link

    def add_topology_listener(
        self, listener: Callable[[Address, Address, bool], None]
    ) -> None:
        """Register ``listener(a, b, up)`` for link add/remove/flap events."""
        self._topology_listeners.append(listener)

    def _notify_topology(self, a: Address, b: Address, up: bool) -> None:
        for listener in self._topology_listeners:
            listener(a, b, up)

    def node(self, name: Address) -> Node:
        """Look up a node by name."""
        try:
            return self._nodes[name]
        except KeyError:
            raise NetworkError(f"unknown node {name!r}") from None

    def link(self, a: Address, b: Address) -> Link:
        """Look up the link between two adjacent nodes."""
        try:
            return self._links[frozenset((a, b))]
        except KeyError:
            raise NetworkError(f"no link {a!r}-{b!r}") from None

    @property
    def nodes(self) -> list[Address]:
        """All node names, sorted for determinism."""
        return sorted(self._nodes)

    @property
    def links(self) -> list[Link]:
        """All links (order deterministic by endpoint names)."""
        return [self._links[k] for k in sorted(self._links, key=sorted)]

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def route(self, src: Address, dst: Address) -> Optional[list[Link]]:
        """Lowest-latency path from ``src`` to ``dst`` (Dijkstra), or None.

        Routes live in a bounded :class:`LruCache` (so arbitrarily many
        host pairs cannot grow memory without bound) and the cache is
        invalidated on any topology change.
        """
        if src not in self._nodes or dst not in self._nodes:
            raise NetworkError(f"unknown endpoint: {src!r} or {dst!r}")
        if src == dst:
            return []
        cached = self._route_cache.get((src, dst), _ROUTE_MISS)
        if cached is not _ROUTE_MISS:
            return cached
        dist: dict[Address, float] = {src: 0.0}
        prev: dict[Address, Address] = {}
        heap: list[tuple[float, Address]] = [(0.0, src)]
        visited: set[Address] = set()
        while heap:
            d, u = heapq.heappop(heap)
            if u in visited:
                continue
            visited.add(u)
            if u == dst:
                break
            for v in sorted(self._adj[u]):
                edge = self._links[frozenset((u, v))]
                if not edge.up:
                    continue
                w = edge.latency
                nd = d + w
                if nd < dist.get(v, float("inf")):
                    dist[v] = nd
                    prev[v] = u
                    heapq.heappush(heap, (nd, v))
        if dst not in dist:
            self._route_cache.put((src, dst), None)
            return None
        path: list[Link] = []
        cur = dst
        while cur != src:
            p = prev[cur]
            path.append(self._links[frozenset((p, cur))])
            cur = p
        path.reverse()
        self._route_cache.put((src, dst), path)
        return path

    # ------------------------------------------------------------------
    # delivery
    # ------------------------------------------------------------------
    def send(self, packet: Packet) -> bool:
        """Inject a datagram.

        Returns ``True`` if the packet was scheduled for delivery and
        ``False`` if it was dropped en route (per-link loss), dropped by
        the fault layer, or unroutable.  Loss is decided at send time for
        simplicity; the delay of a dropped packet is irrelevant to any
        observer.
        """
        self.packets_sent += 1
        path = self.route(packet.src, packet.dst)
        if path is None:
            self.packets_dropped += 1
            return False
        if not path:  # self-delivery, still asynchronous
            self.packets_delivered += 1
            self.copies_delivered += 1
            self.scheduler.call_after(
                0.0, self._nodes[packet.dst].deliver, packet
            )
            return True
        t = self.scheduler.clock.now
        hop_src = packet.src
        for link in path:
            link.tx_octets += packet.size
            p_loss = link.loss_fn(packet.size) if link.loss_fn is not None else link.loss
            if p_loss > 0.0 and self.rng.random() < p_loss:
                link.dropped_packets += 1
                self.packets_dropped += 1
                return False
            t = link.enqueue(hop_src, t, packet.size, self.rng)
            link.rx_octets += packet.size
            self.packets_transmitted += 1
            hop_src = link.other(hop_src)
        if self.delivery_interceptor is not None:
            times = self.delivery_interceptor(packet, path, t)
            if not times:
                self.packets_dropped += 1
                return False
        else:
            times = [t]
        if len(times) == 1:
            self.packets_delivered += 1
        else:
            self.packets_duplicated += 1
        self.copies_delivered += len(times)
        path[-1].delivered_packets += len(times)
        deliver = self._nodes[packet.dst].deliver
        for entry in times:
            # (time, substitute) entries deliver a corrupted copy; the
            # disposition counters above are untouched — corruption is
            # neither a drop nor a duplicate
            if isinstance(entry, tuple):
                td, copy = entry
                self.scheduler.call_at(td, deliver, copy)
            else:
                self.scheduler.call_at(entry, deliver, packet)
        return True

    def cast(
        self,
        packet: Packet,
        plan: "CastPlan",
        targets: Sequence[tuple[Address, int]],
    ) -> int:
        """Single-copy tree delivery of one multicast transmission.

        The packet traverses each edge of ``plan`` exactly once — edges
        are ``(parent, child)`` pairs ordered parent-before-child from
        ``plan.root`` — and fans out only at branch points, so physical
        work is O(tree edges) rather than O(targets × path length).  A
        per-edge loss draw (or a down link) severs the whole subtree
        below it, exactly like a real replicating router.

        Disposition accounting stays per logical datagram: every entry
        in ``targets`` counts one ``packets_sent`` and ends in exactly
        one of delivered / dropped / duplicated, preserving the same
        conservation invariant as unicast :meth:`send`.  Targets the
        tree never reaches (severed subtree, down access link, sender's
        own host when absent from the plan) are drops.  Returns the
        number of targets scheduled for delivery.
        """
        now = self.scheduler.clock.now
        size = packet.size
        arrival: dict[Address, float] = {plan.root: now}
        hop_paths: dict[Address, list[Link]] = {plan.root: []}
        for parent, child in plan.edges:
            t0 = arrival.get(parent)
            if t0 is None:
                continue  # upstream edge lost or down: subtree severed
            link = self._links.get(frozenset((parent, child)))
            if link is None or not link.up:
                continue
            link.tx_octets += size
            p_loss = link.loss_fn(size) if link.loss_fn is not None else link.loss
            if p_loss > 0.0 and self.rng.random() < p_loss:
                link.dropped_packets += 1
                continue
            t = link.enqueue(parent, t0, size, self.rng)
            link.rx_octets += size
            self.packets_transmitted += 1
            arrival[child] = t
            hop_paths[child] = hop_paths[parent] + [link]
        scheduled = 0
        for host, port in targets:
            self.packets_sent += 1
            t = arrival.get(host)
            if t is None:
                self.packets_dropped += 1
                continue
            copy = replace(packet, dst=host, dst_port=port)
            path = hop_paths[host]
            if self.delivery_interceptor is not None:
                times = self.delivery_interceptor(copy, path, t)
                if not times:
                    self.packets_dropped += 1
                    continue
            else:
                times = [t]
            if len(times) == 1:
                self.packets_delivered += 1
            else:
                self.packets_duplicated += 1
            self.copies_delivered += len(times)
            if path:
                path[-1].delivered_packets += len(times)
            deliver = self._nodes[host].deliver
            for entry in times:
                if isinstance(entry, tuple):
                    td, sub = entry
                    self.scheduler.call_at(td, deliver, sub)
                else:
                    self.scheduler.call_at(entry, deliver, copy)
            scheduled += 1
        return scheduled

    def path_latency(self, src: Address, dst: Address) -> float:
        """Sum of nominal link latencies along the routed path (no jitter)."""
        path = self.route(src, dst)
        if path is None:
            raise NetworkError(f"no route {src!r} -> {dst!r}")
        return sum(l.latency for l in path)

    def path_bandwidth(self, src: Address, dst: Address) -> float:
        """Bottleneck bandwidth along the routed path in bytes/second."""
        path = self.route(src, dst)
        if path is None:
            raise NetworkError(f"no route {src!r} -> {dst!r}")
        if not path:
            return float("inf")
        return min(l.bandwidth for l in path)
