"""Deterministic fault injection: scheduled failures for the simulated net.

The paper's whole premise is adaptation under *degraded* conditions, but a
static per-link ``loss``/``jitter`` cannot exercise the dynamic failure
modes the QoS contracts exist for.  This module supplies them as data: a
:class:`FaultPlan` is an ordered set of scheduled fault events, and a
:class:`ChaosController` interprets the plan against a
:class:`~repro.network.simnet.Network` on its virtual-time scheduler.

Supported fault events
----------------------
* :class:`LinkFlap` — a link goes administratively down for a window
  (traffic reroutes if the graph allows, otherwise drops).
* :class:`Partition` — the node set is bisected: every link crossing the
  cut goes down for the window.
* :class:`BurstLoss` — a Gilbert–Elliott two-state loss process replaces
  a link's static loss for the window (correlated burst drops).
* :class:`Duplication` — delivered packets are duplicated with a given
  probability during the window.
* :class:`Reordering` — delivered packets receive random extra delay with
  a given probability, causing reordering against FIFO peers.
* :class:`LatencySpike` — constant extra delay on every delivered packet
  (optionally only traffic crossing chosen links).
* :class:`Corruption` — delivered packets have 1..``max_flips`` payload
  bits flipped with a given probability during the window (the receiving
  decoder, not the network, must survive the damage).
* :class:`AgentCrash` — an SNMP agent stops answering for the window
  (managers see timeouts; the management plane itself degrades).

Everything is seed-driven and scheduled in virtual time, so a plan
replays byte-identically: same seed + same plan + same workload ⇒ same
drops, same duplicates, same telemetry.

Example
-------
>>> from repro.network.clock import Scheduler
>>> from repro.network.simnet import Network, Packet
>>> sched = Scheduler(); net = Network(sched, seed=1)
>>> for n in ("a", "b"): _ = net.add_node(n)
>>> _ = net.add_link("a", "b")
>>> plan = FaultPlan((LinkFlap("a", "b", start=1.0, duration=2.0),))
>>> chaos = ChaosController(net, plan, seed=7)
>>> _ = chaos.install()
>>> _ = sched.run_until(1.5)
>>> net.send(Packet("a", 1, "b", 2, b"lost"))  # mid-flap: unroutable
False
>>> _ = sched.run_until(3.5)
>>> net.send(Packet("a", 1, "b", 2, b"ok"))    # healed
True
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Iterable, Optional, Union

import numpy as np

from .simnet import Address, Link, Network, NetworkError, Packet

if TYPE_CHECKING:
    from ..snmp.agent import SnmpAgent

__all__ = [
    "FaultPlanError",
    "LinkFlap",
    "Partition",
    "BurstLoss",
    "Duplication",
    "Reordering",
    "LatencySpike",
    "Corruption",
    "AgentCrash",
    "FaultEvent",
    "FaultPlan",
    "ChaosController",
]


class FaultPlanError(ValueError):
    """Raised for malformed fault plans or controller misuse."""


def _check_window(name: str, start: float, duration: float) -> None:
    if start < 0.0:
        raise FaultPlanError(f"{name}: start must be non-negative, got {start}")
    if duration <= 0.0:
        raise FaultPlanError(f"{name}: duration must be positive, got {duration}")


def _check_probability(name: str, p: float) -> None:
    if not (0.0 <= p <= 1.0):
        raise FaultPlanError(f"{name}: probability must be in [0, 1], got {p}")


@dataclass(frozen=True)
class LinkFlap:
    """Link ``a``–``b`` goes down at ``start`` for ``duration`` seconds."""

    a: Address
    b: Address
    start: float
    duration: float

    def __post_init__(self) -> None:
        _check_window("LinkFlap", self.start, self.duration)
        if self.a == self.b:
            raise FaultPlanError("LinkFlap: endpoints must differ")


@dataclass(frozen=True)
class Partition:
    """Bisect the network: ``group`` on one side, everything else on the
    other; all crossing links are down for the window."""

    group: frozenset[Address]
    start: float
    duration: float

    def __init__(self, group: Iterable[Address], start: float, duration: float) -> None:
        object.__setattr__(self, "group", frozenset(group))
        object.__setattr__(self, "start", float(start))
        object.__setattr__(self, "duration", float(duration))
        _check_window("Partition", self.start, self.duration)
        if not self.group:
            raise FaultPlanError("Partition: group must be non-empty")


@dataclass(frozen=True)
class BurstLoss:
    """Gilbert–Elliott burst loss on link ``a``–``b`` for the window.

    The chain advances one step per packet offered to the link: in the
    *good* state packets drop with ``loss_good``, in the *bad* state with
    ``loss_bad``; ``p_good_to_bad``/``p_bad_to_good`` are the per-packet
    transition probabilities (their inverses set mean burst spacing and
    length).
    """

    a: Address
    b: Address
    start: float
    duration: float
    p_good_to_bad: float = 0.05
    p_bad_to_good: float = 0.25
    loss_good: float = 0.0
    loss_bad: float = 0.9

    def __post_init__(self) -> None:
        _check_window("BurstLoss", self.start, self.duration)
        for field_name in ("p_good_to_bad", "p_bad_to_good", "loss_good", "loss_bad"):
            _check_probability(f"BurstLoss.{field_name}", getattr(self, field_name))


@dataclass(frozen=True)
class Duplication:
    """Deliver an extra copy of each packet with ``probability`` during
    the window; the copy lands ``spread`` seconds (uniform) later."""

    start: float
    duration: float
    probability: float = 0.1
    spread: float = 0.005

    def __post_init__(self) -> None:
        _check_window("Duplication", self.start, self.duration)
        _check_probability("Duplication.probability", self.probability)
        if self.spread < 0.0:
            raise FaultPlanError("Duplication: spread must be non-negative")


@dataclass(frozen=True)
class Reordering:
    """Add uniform(0, ``max_extra_delay``) to packets with ``probability``
    during the window, reordering them against their FIFO peers."""

    start: float
    duration: float
    probability: float = 0.2
    max_extra_delay: float = 0.02

    def __post_init__(self) -> None:
        _check_window("Reordering", self.start, self.duration)
        _check_probability("Reordering.probability", self.probability)
        if self.max_extra_delay <= 0.0:
            raise FaultPlanError("Reordering: max_extra_delay must be positive")


@dataclass(frozen=True)
class LatencySpike:
    """Constant ``extra`` delay on every delivered packet in the window.

    With ``links`` set, only traffic whose routed path crosses one of the
    named ``(a, b)`` pairs is delayed (a congested segment); otherwise the
    spike is network-wide.
    """

    start: float
    duration: float
    extra: float
    links: Optional[tuple[tuple[Address, Address], ...]] = None

    def __post_init__(self) -> None:
        _check_window("LatencySpike", self.start, self.duration)
        if self.extra <= 0.0:
            raise FaultPlanError("LatencySpike: extra must be positive")


@dataclass(frozen=True)
class Corruption:
    """Flip 1..``max_flips`` payload bits of a delivered packet with
    ``probability`` during the window.

    Corruption happens *after* routing and loss: the packet still arrives
    on time, but its payload is damaged, so the receiving codec's decode
    path — not the transport — is what the fault exercises.  Empty
    payloads pass through untouched.
    """

    start: float
    duration: float
    probability: float = 0.05
    max_flips: int = 3

    def __post_init__(self) -> None:
        _check_window("Corruption", self.start, self.duration)
        _check_probability("Corruption.probability", self.probability)
        if self.max_flips < 1:
            raise FaultPlanError("Corruption: max_flips must be at least 1")


@dataclass(frozen=True)
class AgentCrash:
    """The SNMP agent on ``host`` crashes at ``start`` and restarts after
    ``duration`` seconds (managers see timeouts in between)."""

    host: Address
    start: float
    duration: float

    def __post_init__(self) -> None:
        _check_window("AgentCrash", self.start, self.duration)


FaultEvent = Union[
    LinkFlap,
    Partition,
    BurstLoss,
    Duplication,
    Reordering,
    LatencySpike,
    Corruption,
    AgentCrash,
]

#: deterministic ordering key so identical plans install identically even
#: when callers build them in different orders
def _event_key(ev: FaultEvent) -> tuple:
    return (ev.start, ev.duration, type(ev).__name__, repr(ev))


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, validated schedule of fault events."""

    events: tuple[FaultEvent, ...] = ()

    def __init__(self, events: Iterable[FaultEvent] = ()) -> None:
        object.__setattr__(self, "events", tuple(sorted(events, key=_event_key)))
        for ev in self.events:
            if not isinstance(
                ev,
                (LinkFlap, Partition, BurstLoss, Duplication, Reordering,
                 LatencySpike, Corruption, AgentCrash),
            ):
                raise FaultPlanError(f"not a fault event: {ev!r}")

    def __len__(self) -> int:
        return len(self.events)

    @property
    def horizon(self) -> float:
        """Virtual time at which the last event window closes."""
        return max((ev.start + ev.duration for ev in self.events), default=0.0)

    def needs_interceptor(self) -> bool:
        """Whether any event requires the per-packet delivery hook."""
        return any(
            isinstance(ev, (Duplication, Reordering, LatencySpike, Corruption))
            for ev in self.events
        )

    def describe(self) -> list[str]:
        """One human-readable line per event, in schedule order."""
        return [
            f"t={ev.start:g}s +{ev.duration:g}s {type(ev).__name__}" for ev in self.events
        ]


class _GilbertElliott:
    """Stateful two-state loss process installed as a link ``loss_fn``."""

    __slots__ = ("spec", "rng", "bad", "transitions")

    def __init__(self, spec: BurstLoss, rng: np.random.Generator) -> None:
        self.spec = spec
        self.rng = rng
        self.bad = False
        self.transitions = 0

    def __call__(self, size: int) -> float:
        # advance the chain once per offered packet, then report the
        # current state's loss probability
        if self.bad:
            if self.rng.random() < self.spec.p_bad_to_good:
                self.bad = False
                self.transitions += 1
        else:
            if self.rng.random() < self.spec.p_good_to_bad:
                self.bad = True
                self.transitions += 1
        return self.spec.loss_bad if self.bad else self.spec.loss_good


class ChaosController:
    """Interprets a :class:`FaultPlan` against one network.

    Parameters
    ----------
    network:
        The simulated network (its scheduler drives the plan).
    plan:
        The validated schedule of fault events.
    seed:
        Seeds the controller's private RNG (burst-loss chains, duplicate
        and reorder draws) — independent from the network's own RNG so a
        plan perturbs traffic only where it says it does.
    agents:
        ``host -> SnmpAgent`` registry, required iff the plan contains
        :class:`AgentCrash` events.

    Call :meth:`install` once before running the simulation;
    :meth:`report` afterwards returns deterministic counters suitable for
    byte-identical comparison across replays.
    """

    def __init__(
        self,
        network: Network,
        plan: FaultPlan,
        seed: int = 0,
        agents: Optional[dict[Address, "SnmpAgent"]] = None,
    ) -> None:
        self.network = network
        self.plan = plan
        self.rng = np.random.default_rng(seed)
        self.agents = dict(agents or {})
        self._installed = False
        # refcounted down-state so overlapping flap/partition windows nest
        self._down_refs: dict[frozenset, int] = {}
        # saved (loss, loss_fn) per link under burst episodes
        self._burst_saved: dict[frozenset, tuple[float, object]] = {}
        # the exact cut set recorded when each partition began (topology
        # may change during the window, so it cannot be recomputed at end)
        self._partition_cuts: dict[Partition, list[list[Link]]] = {}
        # active windows for the per-packet interceptor
        self._dups: list[Duplication] = []
        self._reorders: list[Reordering] = []
        self._spikes: list[LatencySpike] = []
        self._corruptions: list[Corruption] = []
        # telemetry (all deterministic under a fixed seed)
        self.flaps = 0
        self.partitions = 0
        self.bursts = 0
        self.crashes = 0
        self.restarts = 0
        self.duplicated = 0
        self.reordered = 0
        self.delayed = 0
        self.corrupted = 0
        self.links_cut = 0
        self.events_started = 0
        self.events_ended = 0

    # ------------------------------------------------------------------
    # installation
    # ------------------------------------------------------------------
    def install(self) -> "ChaosController":
        """Schedule every plan event on the network's scheduler."""
        if self._installed:
            raise FaultPlanError("controller already installed")
        self._installed = True
        for ev in self.plan.events:
            if isinstance(ev, AgentCrash) and ev.host not in self.agents:
                raise FaultPlanError(
                    f"AgentCrash({ev.host!r}) but no agent registered; "
                    f"pass agents={{host: SnmpAgent}}"
                )
        if self.plan.needs_interceptor():
            if self.network.delivery_interceptor is not None:
                raise FaultPlanError("network already has a delivery interceptor")
            self.network.delivery_interceptor = self._intercept
        sched = self.network.scheduler
        now = sched.clock.now
        for ev in self.plan.events:
            sched.call_at(max(now, ev.start), self._begin, ev)
            sched.call_at(max(now, ev.start + ev.duration), self._end, ev)
        return self

    def uninstall(self) -> None:
        """Detach the per-packet hook (plan events already fired stay fired)."""
        # == not `is`: each `self._intercept` access builds a fresh bound
        # method, so identity would never match the installed hook
        if self.network.delivery_interceptor == self._intercept:
            self.network.delivery_interceptor = None

    # ------------------------------------------------------------------
    # event begin/end dispatch
    # ------------------------------------------------------------------
    def _begin(self, ev: FaultEvent) -> None:
        self.events_started += 1
        if isinstance(ev, LinkFlap):
            self.flaps += 1
            self._cut(ev.a, ev.b)
        elif isinstance(ev, Partition):
            self.partitions += 1
            cut = self._crossing_links(ev.group)
            self._partition_cuts.setdefault(ev, []).append(cut)
            for link in cut:
                self._cut(link.a, link.b)
        elif isinstance(ev, BurstLoss):
            self.bursts += 1
            key = frozenset((ev.a, ev.b))
            link = self.network.link(ev.a, ev.b)
            if key not in self._burst_saved:
                self._burst_saved[key] = (link.loss, link.loss_fn)
            link.loss_fn = _GilbertElliott(ev, self.rng)
        elif isinstance(ev, Duplication):
            self._dups.append(ev)
        elif isinstance(ev, Reordering):
            self._reorders.append(ev)
        elif isinstance(ev, LatencySpike):
            self._spikes.append(ev)
        elif isinstance(ev, Corruption):
            self._corruptions.append(ev)
        elif isinstance(ev, AgentCrash):
            self.crashes += 1
            self.agents[ev.host].crash()

    def _end(self, ev: FaultEvent) -> None:
        self.events_ended += 1
        if isinstance(ev, LinkFlap):
            self._heal(ev.a, ev.b)
        elif isinstance(ev, Partition):
            cuts = self._partition_cuts.get(ev)
            cut = cuts.pop() if cuts else []
            for link in cut:
                self._heal(link.a, link.b)
        elif isinstance(ev, BurstLoss):
            key = frozenset((ev.a, ev.b))
            saved = self._burst_saved.pop(key, None)
            if saved is not None:
                link = self.network.link(ev.a, ev.b)
                link.loss, link.loss_fn = saved[0], saved[1]
        elif isinstance(ev, Duplication):
            self._dups.remove(ev)
        elif isinstance(ev, Reordering):
            self._reorders.remove(ev)
        elif isinstance(ev, LatencySpike):
            self._spikes.remove(ev)
        elif isinstance(ev, Corruption):
            self._corruptions.remove(ev)
        elif isinstance(ev, AgentCrash):
            self.restarts += 1
            self.agents[ev.host].restart()

    # ------------------------------------------------------------------
    # topology helpers
    # ------------------------------------------------------------------
    def _crossing_links(self, group: frozenset[Address]) -> list[Link]:
        """Links with exactly one endpoint inside ``group`` (the cut set)."""
        return [
            link
            for link in self.network.links
            if (link.a in group) != (link.b in group)
        ]

    def _cut(self, a: Address, b: Address) -> None:
        key = frozenset((a, b))
        refs = self._down_refs.get(key, 0)
        self._down_refs[key] = refs + 1
        if refs == 0:
            try:
                self.network.set_link_up(a, b, False)
                self.links_cut += 1
            except NetworkError:
                # the link was removed behind our back (e.g. a handoff);
                # nothing to cut, and _heal will no-op symmetrically
                pass

    def _heal(self, a: Address, b: Address) -> None:
        key = frozenset((a, b))
        refs = self._down_refs.get(key, 0)
        if refs <= 1:
            self._down_refs.pop(key, None)
            try:
                self.network.set_link_up(a, b, True)
            except NetworkError:
                pass
        else:
            self._down_refs[key] = refs - 1

    # ------------------------------------------------------------------
    # per-packet hook (only installed when the plan needs it)
    # ------------------------------------------------------------------
    def _intercept(
        self, packet: Packet, path: list[Link], t: float
    ) -> list[Union[float, tuple[float, Packet]]]:
        extra = 0.0
        for spike in self._spikes:
            if spike.links is None or self._path_crosses(path, spike.links):
                extra += spike.extra
                self.delayed += 1
        for re_ev in self._reorders:
            if self.rng.random() < re_ev.probability:
                extra += float(self.rng.uniform(0.0, re_ev.max_extra_delay))
                self.reordered += 1
        times = [t + extra]
        for dup in self._dups:
            if self.rng.random() < dup.probability:
                times.append(t + extra + float(self.rng.uniform(0.0, dup.spread)))
                self.duplicated += 1
        # each delivery copy rolls corruption independently; a corrupted
        # copy becomes a (time, substitute) entry carrying damaged bytes
        entries: list[Union[float, tuple[float, Packet]]] = []
        for td in times:
            damaged = self._corrupt_payload(packet.payload)
            if damaged is None:
                entries.append(td)
            else:
                entries.append((td, replace(packet, payload=damaged)))
        return entries

    def _corrupt_payload(self, payload: bytes) -> Optional[bytes]:
        """Damaged copy of ``payload``, or ``None`` if it passes unscathed."""
        if not payload:
            return None
        damaged = None
        for corr in self._corruptions:
            if self.rng.random() < corr.probability:
                buf = bytearray(damaged if damaged is not None else payload)
                flips = int(self.rng.integers(1, corr.max_flips + 1))
                for bit in self.rng.integers(0, len(buf) * 8, size=flips):
                    buf[int(bit) // 8] ^= 1 << (int(bit) % 8)
                damaged = bytes(buf)
                self.corrupted += 1
        return damaged

    @staticmethod
    def _path_crosses(
        path: list[Link], watched: tuple[tuple[Address, Address], ...]
    ) -> bool:
        keys = {frozenset(pair) for pair in watched}
        return any(frozenset((link.a, link.b)) in keys for link in path)

    # ------------------------------------------------------------------
    def report(self) -> dict[str, int]:
        """Deterministic counter snapshot (sorted keys, ints only)."""
        return {
            "bursts": self.bursts,
            "corrupted": self.corrupted,
            "crashes": self.crashes,
            "delayed": self.delayed,
            "duplicated": self.duplicated,
            "events_ended": self.events_ended,
            "events_started": self.events_started,
            "flaps": self.flaps,
            "links_cut": self.links_cut,
            "partitions": self.partitions,
            "reordered": self.reordered,
            "restarts": self.restarts,
        }
