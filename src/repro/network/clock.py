"""Discrete-event simulation core: virtual clock and event scheduler.

All time in the simulated substrate is virtual.  The :class:`Scheduler`
maintains a priority queue of timestamped callbacks and advances the
:class:`SimClock` monotonically as events are dispatched.  Every other
simulated component (links, sockets, SNMP agents, hosts, base stations)
schedules work through a single shared ``Scheduler`` so that an entire
collaboration session is reproducible and single-threaded.

The design follows the usual discrete-event pattern: a heap of
``(time, sequence, Event)`` entries where ``sequence`` breaks ties in
insertion order, making runs deterministic even when many events share a
timestamp.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

__all__ = ["SimClock", "Event", "Scheduler", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised on scheduler misuse (e.g. scheduling in the past)."""


class SimClock:
    """A monotonically advancing virtual clock.

    The clock only moves when the owning :class:`Scheduler` dispatches an
    event; user code never sets it directly.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def _advance_to(self, t: float) -> None:
        if t < self._now:
            raise SimulationError(f"clock cannot move backwards: {t} < {self._now}")
        self._now = t

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SimClock(now={self._now:.6f})"


@dataclass(order=False)
class Event:
    """A scheduled callback.

    Events are returned by :meth:`Scheduler.call_at` /
    :meth:`Scheduler.call_after` and may be cancelled before they fire.
    """

    time: float
    seq: int
    callback: Callable[..., Any]
    args: tuple = ()
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Prevent this event from firing.  Idempotent."""
        self.cancelled = True


class Scheduler:
    """Priority-queue discrete-event scheduler.

    Example
    -------
    >>> sched = Scheduler()
    >>> fired = []
    >>> _ = sched.call_after(1.5, fired.append, "a")
    >>> _ = sched.call_after(0.5, fired.append, "b")
    >>> _ = sched.run()
    >>> fired
    ['b', 'a']
    >>> sched.clock.now
    1.5
    """

    def __init__(self, start: float = 0.0) -> None:
        self.clock = SimClock(start)
        self._heap: list[tuple[float, int, Event]] = []
        self._counter = itertools.count()
        self._running = False

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def call_at(self, t: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute virtual time ``t``."""
        if not math.isfinite(t):
            raise SimulationError(f"event time must be finite, got {t}")
        if t < self.clock.now:
            raise SimulationError(
                f"cannot schedule in the past: {t} < now={self.clock.now}"
            )
        ev = Event(time=t, seq=next(self._counter), callback=callback, args=args)
        heapq.heappush(self._heap, (ev.time, ev.seq, ev))
        return ev

    def call_after(self, delay: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        return self.call_at(self.clock.now + delay, callback, *args)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return sum(1 for _, _, ev in self._heap if not ev.cancelled)

    def step(self) -> bool:
        """Dispatch the single earliest pending event.

        Returns ``True`` if an event fired, ``False`` if the queue was empty.
        """
        while self._heap:
            _, _, ev = heapq.heappop(self._heap)
            if ev.cancelled:
                continue
            self.clock._advance_to(ev.time)
            ev.callback(*ev.args)
            return True
        return False

    def run(self, max_events: int = 10_000_000) -> int:
        """Run until the event queue drains.  Returns events dispatched."""
        n = 0
        while self.step():
            n += 1
            if n >= max_events:
                raise SimulationError(f"exceeded max_events={max_events}; runaway simulation?")
        return n

    def run_until(self, t: float, max_events: int = 10_000_000) -> int:
        """Run all events with timestamp <= ``t``; leave the clock at ``t``.

        Events scheduled beyond ``t`` stay queued.
        """
        n = 0
        while self._heap:
            time_next, _, ev = self._heap[0]
            if ev.cancelled:
                heapq.heappop(self._heap)
                continue
            if time_next > t:
                break
            self.step()
            n += 1
            if n >= max_events:
                raise SimulationError(f"exceeded max_events={max_events}")
        self.clock._advance_to(max(self.clock.now, t))
        return n

    def run_for(self, duration: float, max_events: int = 10_000_000) -> int:
        """Run for ``duration`` simulated seconds from the current time."""
        return self.run_until(self.clock.now + duration, max_events=max_events)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Scheduler(now={self.clock.now:.6f}, pending={self.pending})"
