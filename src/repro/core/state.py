"""Client state repository.

"[The application interface] monitors all local objects that may be of
interest to the client and encodes their state as entries in the client's
state repository.  Similarly, when a remote instance of the object
changes state, the change is received by the communication module and
forwarded to the application interface, which in turn updates the
client's session" (paper Sec. 4.1).

Entries are versioned and timestamped so the concurrency-control layer
can arbitrate concurrent remote updates deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Iterator, Optional

__all__ = ["StateEntry", "StateRepository"]


@dataclass(frozen=True)
class StateEntry:
    """One versioned object state."""

    key: str
    value: Any
    version: int
    timestamp: float
    author: str


Listener = Callable[[StateEntry, Optional[StateEntry]], None]


class StateRepository:
    """Versioned key→state store with change listeners.

    >>> repo = StateRepository()
    >>> _ = repo.put("wb/stroke-1", [1.0, 2.0], timestamp=0.1, author="a")
    >>> repo.get("wb/stroke-1").version
    1
    """

    def __init__(self) -> None:
        self._entries: dict[str, StateEntry] = {}
        self._listeners: list[Listener] = []
        self.updates_applied = 0
        self.updates_rejected = 0

    # ------------------------------------------------------------------
    def put(self, key: str, value: Any, timestamp: float, author: str) -> StateEntry:
        """Local update: bumps the version unconditionally."""
        old = self._entries.get(key)
        entry = StateEntry(
            key=key,
            value=value,
            version=(old.version + 1) if old else 1,
            timestamp=timestamp,
            author=author,
        )
        self._entries[key] = entry
        self.updates_applied += 1
        self._notify(entry, old)
        return entry

    def apply_remote(self, entry: StateEntry) -> bool:
        """Merge a remote entry; returns whether it won arbitration.

        Arbitration is deterministic last-writer-wins: higher version,
        then later timestamp, then lexicographically larger author id.
        The losing update is *not* discarded silently — callers receive
        ``False`` and can archive it (the paper's "no information is
        lost" requirement is handled by the concurrency layer's history).
        """
        old = self._entries.get(key := entry.key)
        if old is not None:
            winner = max(
                (old, entry),
                key=lambda e: (e.version, e.timestamp, e.author),
            )
            if winner is old:
                self.updates_rejected += 1
                return False
        self._entries[key] = entry
        self.updates_applied += 1
        self._notify(entry, old)
        return True

    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[StateEntry]:
        return self._entries.get(key)

    def keys(self) -> list[str]:
        return sorted(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[StateEntry]:
        for k in self.keys():
            yield self._entries[k]

    # ------------------------------------------------------------------
    def subscribe(self, listener: Listener) -> None:
        """Register a change listener ``(new, old) -> None``."""
        self._listeners.append(listener)

    def _notify(self, new: StateEntry, old: Optional[StateEntry]) -> None:
        for listener in self._listeners:
            listener(new, old)
