"""The paper's primary contribution: the adaptive QoS collaboration framework.

Semantic profiles and selectors, receiver-side interpretation, QoS
contracts, the policy-driven inference engine, wired clients, the base
station / wireless extension, and the deployment facade.
"""

from .attributes import MISSING, coerce_value, values_equal
from .selectors import Predicate, Selector, SelectorError, TRUE_SELECTOR, decompose, parse
from .profiles import ClientProfile, ProfileError, TransformRule
from .matching import Decision, MatchResult, interpret, match_selector
from .matching_engine import (
    MatchingEngine,
    ProfileIndex,
    SelectorCache,
    Shortlist,
    compile_selector,
    selector_cache_info,
)
from .contracts import Constraint, ContractError, ContractViolation, QoSContract
from .policies import (
    ModalityTier,
    PolicyDatabase,
    PolicyError,
    SirTierPolicy,
    StepPolicy,
    default_bandwidth_policy,
    default_cpu_load_policy,
    default_page_fault_policy,
    default_policy_database,
    default_sir_tier_policy,
)
from .inference import AdaptationDecision, InferenceEngine
from .netstate import NetworkStateInterface, Probe
from .events import (
    ChatEvent,
    HistoryRequest,
    ImageRepairRequest,
    LockGrantEvent,
    LockReleaseEvent,
    LockRequestEvent,
    Event,
    EventError,
    ImagePacketEvent,
    ImageShareAnnounce,
    JoinEvent,
    LeaveEvent,
    PowerControlRequest,
    ProfileUpdateEvent,
    SketchShareEvent,
    SpeechShareEvent,
    TextShareEvent,
    WhiteboardEvent,
    decode_event,
)
from .state import StateEntry, StateRepository
from .concurrency import Arbiter, Conflict, LockError, LockManager
from .session import Membership, SessionArchive, SessionDescriptor
from .discovery import DiscoveryError, SearchHit, SessionDirectory
from .client import WiredClient
from .wireless_client import UnicastSemanticLink, WirelessClient
from .basestation import Attachment, BaseStation, QosSnapshot
from .handoff import HandoffEvent, HandoffManager, Position
from .framework import CollaborationFramework
from .telemetry import deployment_report, format_report

__all__ = [
    "MISSING",
    "coerce_value",
    "values_equal",
    "Predicate",
    "Selector",
    "SelectorError",
    "TRUE_SELECTOR",
    "decompose",
    "parse",
    "ClientProfile",
    "ProfileError",
    "TransformRule",
    "Decision",
    "MatchResult",
    "interpret",
    "match_selector",
    "MatchingEngine",
    "ProfileIndex",
    "SelectorCache",
    "Shortlist",
    "compile_selector",
    "selector_cache_info",
    "Constraint",
    "ContractError",
    "ContractViolation",
    "QoSContract",
    "ModalityTier",
    "PolicyDatabase",
    "PolicyError",
    "SirTierPolicy",
    "StepPolicy",
    "default_bandwidth_policy",
    "default_cpu_load_policy",
    "default_page_fault_policy",
    "default_policy_database",
    "default_sir_tier_policy",
    "AdaptationDecision",
    "InferenceEngine",
    "NetworkStateInterface",
    "Probe",
    "ChatEvent",
    "HistoryRequest",
    "ImageRepairRequest",
    "LockGrantEvent",
    "LockReleaseEvent",
    "LockRequestEvent",
    "Event",
    "EventError",
    "ImagePacketEvent",
    "ImageShareAnnounce",
    "JoinEvent",
    "LeaveEvent",
    "PowerControlRequest",
    "ProfileUpdateEvent",
    "SketchShareEvent",
    "SpeechShareEvent",
    "TextShareEvent",
    "WhiteboardEvent",
    "decode_event",
    "StateEntry",
    "StateRepository",
    "Arbiter",
    "Conflict",
    "LockError",
    "LockManager",
    "Membership",
    "SessionArchive",
    "SessionDescriptor",
    "DiscoveryError",
    "SearchHit",
    "SessionDirectory",
    "WiredClient",
    "UnicastSemanticLink",
    "WirelessClient",
    "Attachment",
    "BaseStation",
    "QosSnapshot",
    "HandoffEvent",
    "HandoffManager",
    "Position",
    "CollaborationFramework",
    "deployment_report",
    "format_report",
]
