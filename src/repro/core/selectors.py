"""The semantic-selector expression language.

"The semantic-selector is a prepositional expression over all possible
attributes and specifies the profile(s) of clients that are to receive
the message" (paper Sec. 3).  Selectors *descriptively name dynamic sets
of clients of arbitrary cardinality* — this module is that naming
language.

Grammar (recursive descent, no ``eval``)::

    expr        := or_expr
    or_expr     := and_expr ( 'or' and_expr )*
    and_expr    := not_expr ( 'and' not_expr )*
    not_expr    := 'not' not_expr | primary
    primary     := 'exists' '(' IDENT ')'
                 | '(' expr ')'
                 | comparison
    comparison  := operand  ( ('=='|'!='|'<='|'>='|'<'|'>') operand
                            | 'in' list_lit
                            | 'contains' operand )?
    operand     := IDENT | literal
    literal     := NUMBER | STRING | 'true' | 'false'
    list_lit    := '[' literal ( ',' literal )* ']'

Semantics: identifiers read attributes from the environment (a profile or
a header map); any comparison touching a missing attribute is *false*
(``exists`` is the explicit presence test); a bare identifier used as a
boolean must be a bool attribute.  ``contains`` tests list membership
(``capabilities contains 'jpeg'``); ``in`` tests the reverse
(``encoding in ['mpeg2', 'jpeg']``).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from functools import lru_cache
from typing import Any, Optional, Union

from .attributes import MISSING, AttributeMap, values_equal

__all__ = [
    "Selector",
    "SelectorError",
    "parse",
    "TRUE_SELECTOR",
    "Predicate",
    "decompose",
    "required_attributes",
]


class SelectorError(ValueError):
    """Raised on lexical, syntactic, or (runtime) type errors.

    When the error can be tied to a token, :attr:`pos` is the 0-based
    character offset into the selector source and :attr:`line` /
    :attr:`column` are the 1-based coordinates of that offset, so
    diagnostics can point at the offending span.
    """

    def __init__(
        self,
        message: str,
        *,
        source: Optional[str] = None,
        pos: Optional[int] = None,
    ) -> None:
        self.source = source
        self.pos = pos
        self.line: Optional[int] = None
        self.column: Optional[int] = None
        if source is not None and pos is not None:
            clamped = min(pos, len(source))
            self.line = source.count("\n", 0, clamped) + 1
            self.column = clamped - (source.rfind("\n", 0, clamped) + 1) + 1
            message = f"{message} (line {self.line}, column {self.column})"
        super().__init__(message)


# ----------------------------------------------------------------------
# lexer
# ----------------------------------------------------------------------
_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>-?\d+\.\d+|-?\d+)
  | (?P<string>'[^']*'|"[^"]*")
  | (?P<op>==|!=|<=|>=|<|>)
  | (?P<punct>[()\[\],])
  | (?P<ident>[A-Za-z_][A-Za-z0-9_.\-]*)
    """,
    re.VERBOSE,
)

_KEYWORDS = {"and", "or", "not", "in", "contains", "exists", "true", "false"}


@dataclass(frozen=True)
class _Token:
    kind: str  # 'number' | 'string' | 'op' | 'punct' | 'ident' | keyword itself
    value: Any
    pos: int


def _lex(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            raise SelectorError(
                f"bad character {text[pos]!r} at position {pos}", source=text, pos=pos
            )
        pos = m.end()
        kind = m.lastgroup
        if kind == "ws":
            continue
        raw = m.group()
        if kind == "number":
            tokens.append(_Token("number", float(raw) if "." in raw else int(raw), m.start()))
        elif kind == "string":
            tokens.append(_Token("string", raw[1:-1], m.start()))
        elif kind == "ident":
            low = raw.lower()
            if low in _KEYWORDS:
                tokens.append(_Token(low, low, m.start()))
            else:
                tokens.append(_Token("ident", raw, m.start()))
        else:
            tokens.append(_Token(kind, raw, m.start()))
    return tokens


# ----------------------------------------------------------------------
# AST
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _Literal:
    value: Any

    def eval_value(self, env: AttributeMap) -> Any:
        return self.value

    def attributes(self) -> set[str]:
        return set()


@dataclass(frozen=True)
class _Attr:
    name: str

    def eval_value(self, env: AttributeMap) -> Any:
        return env.get(self.name, MISSING)

    def attributes(self) -> set[str]:
        return {self.name}


@dataclass(frozen=True)
class _Compare:
    op: str
    left: Union[_Literal, _Attr]
    right: Any  # _Literal | _Attr | list of _Literal (for 'in')

    def evaluate(self, env: AttributeMap) -> bool:
        lv = self.left.eval_value(env)
        if self.op == "in":
            if lv is MISSING:
                return False
            return any(values_equal(lv, lit.value) for lit in self.right)
        rv = self.right.eval_value(env)
        if lv is MISSING or rv is MISSING:
            return False
        if self.op == "==":
            return values_equal(lv, rv)
        if self.op == "!=":
            return not values_equal(lv, rv)
        if self.op == "contains":
            if not isinstance(lv, (list, tuple)):
                return False
            return any(values_equal(item, rv) for item in lv)
        # ordered comparisons require numbers (or two strings)
        both_num = all(
            isinstance(v, (int, float)) and not isinstance(v, bool) for v in (lv, rv)
        )
        both_str = isinstance(lv, str) and isinstance(rv, str)
        if not (both_num or both_str):
            return False
        if self.op == "<":
            return lv < rv
        if self.op == "<=":
            return lv <= rv
        if self.op == ">":
            return lv > rv
        if self.op == ">=":
            return lv >= rv
        raise SelectorError(f"unknown operator {self.op!r}")  # pragma: no cover

    def attributes(self) -> set[str]:
        out = self.left.attributes()
        if self.op == "in":
            return out
        return out | self.right.attributes()


@dataclass(frozen=True)
class _Exists:
    name: str

    def evaluate(self, env: AttributeMap) -> bool:
        return env.get(self.name, MISSING) is not MISSING

    def attributes(self) -> set[str]:
        return {self.name}


@dataclass(frozen=True)
class _BoolAttr:
    """A bare identifier in boolean position: true iff attr is True."""

    name: str

    def evaluate(self, env: AttributeMap) -> bool:
        return env.get(self.name, MISSING) is True

    def attributes(self) -> set[str]:
        return {self.name}


@dataclass(frozen=True)
class _BoolLiteral:
    value: bool

    def evaluate(self, env: AttributeMap) -> bool:
        return self.value

    def attributes(self) -> set[str]:
        return set()


@dataclass(frozen=True)
class _Not:
    operand: Any

    def evaluate(self, env: AttributeMap) -> bool:
        return not self.operand.evaluate(env)

    def attributes(self) -> set[str]:
        return self.operand.attributes()


@dataclass(frozen=True)
class _And:
    operands: tuple

    def evaluate(self, env: AttributeMap) -> bool:
        return all(o.evaluate(env) for o in self.operands)

    def attributes(self) -> set[str]:
        return set().union(*(o.attributes() for o in self.operands))


@dataclass(frozen=True)
class _Or:
    operands: tuple

    def evaluate(self, env: AttributeMap) -> bool:
        return any(o.evaluate(env) for o in self.operands)

    def attributes(self) -> set[str]:
        return set().union(*(o.attributes() for o in self.operands))


#: any boolean-expression AST node the parser can produce
_Node = Union[_Compare, _Exists, _BoolAttr, _BoolLiteral, _Not, _And, _Or]


# ----------------------------------------------------------------------
# parser
# ----------------------------------------------------------------------
class _Parser:
    def __init__(self, tokens: list[_Token], source: str) -> None:
        self.tokens = tokens
        self.pos = 0
        self.source = source

    def peek(self) -> _Token | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> _Token:
        tok = self.peek()
        if tok is None:
            raise SelectorError(
                f"unexpected end of selector: {self.source!r}",
                source=self.source,
                pos=len(self.source),
            )
        self.pos += 1
        return tok

    def expect(self, kind: str, value: Any = None) -> _Token:
        tok = self.next()
        if tok.kind != kind or (value is not None and tok.value != value):
            raise SelectorError(
                f"expected {value or kind} at position {tok.pos} in {self.source!r},"
                f" got {tok.value!r}",
                source=self.source,
                pos=tok.pos,
            )
        return tok

    # -- grammar ---------------------------------------------------------
    def parse_expr(self) -> _Node:
        node = self.parse_and()
        parts = [node]
        while (tok := self.peek()) is not None and tok.kind == "or":
            self.next()
            parts.append(self.parse_and())
        return parts[0] if len(parts) == 1 else _Or(tuple(parts))

    def parse_and(self) -> _Node:
        node = self.parse_not()
        parts = [node]
        while (tok := self.peek()) is not None and tok.kind == "and":
            self.next()
            parts.append(self.parse_not())
        return parts[0] if len(parts) == 1 else _And(tuple(parts))

    def parse_not(self) -> _Node:
        tok = self.peek()
        if tok is not None and tok.kind == "not":
            self.next()
            return _Not(self.parse_not())
        return self.parse_primary()

    def parse_primary(self) -> _Node:
        tok = self.peek()
        if tok is None:
            raise SelectorError(
                f"unexpected end of selector: {self.source!r}",
                source=self.source,
                pos=len(self.source),
            )
        if tok.kind == "exists":
            self.next()
            self.expect("punct", "(")
            name = self.expect("ident").value
            self.expect("punct", ")")
            return _Exists(name)
        if tok.kind == "punct" and tok.value == "(":
            self.next()
            inner = self.parse_expr()
            self.expect("punct", ")")
            return inner
        if tok.kind in ("true", "false"):
            self.next()
            return _BoolLiteral(tok.kind == "true")
        return self.parse_comparison()

    def parse_operand(self) -> Union[_Attr, _Literal]:
        tok = self.next()
        if tok.kind == "ident":
            return _Attr(tok.value)
        if tok.kind == "number":
            return _Literal(tok.value)
        if tok.kind == "string":
            return _Literal(tok.value)
        if tok.kind in ("true", "false"):
            return _Literal(tok.kind == "true")
        raise SelectorError(
            f"expected operand at position {tok.pos} in {self.source!r}",
            source=self.source,
            pos=tok.pos,
        )

    def parse_list(self) -> list[_Literal]:
        self.expect("punct", "[")
        items: list[_Literal] = []
        while True:
            tok = self.next()
            if tok.kind == "number" or tok.kind == "string":
                items.append(_Literal(tok.value))
            elif tok.kind in ("true", "false"):
                items.append(_Literal(tok.kind == "true"))
            else:
                raise SelectorError(
                    f"expected literal in list at {tok.pos}",
                    source=self.source,
                    pos=tok.pos,
                )
            tok = self.next()
            if tok.kind == "punct" and tok.value == "]":
                break
            if not (tok.kind == "punct" and tok.value == ","):
                raise SelectorError(
                    f"expected ',' or ']' at position {tok.pos}",
                    source=self.source,
                    pos=tok.pos,
                )
        if not items:
            raise SelectorError("empty list literal", source=self.source, pos=0)
        return items

    def parse_comparison(self) -> _Node:
        start = self.peek()
        start_pos = start.pos if start is not None else len(self.source)
        left = self.parse_operand()
        tok = self.peek()
        if tok is not None and tok.kind == "op":
            self.next()
            right = self.parse_operand()
            return _Compare(tok.value, left, right)
        if tok is not None and tok.kind == "in":
            self.next()
            return _Compare("in", left, self.parse_list())
        if tok is not None and tok.kind == "contains":
            self.next()
            right = self.parse_operand()
            return _Compare("contains", left, right)
        # bare identifier in boolean position
        if isinstance(left, _Attr):
            return _BoolAttr(left.name)
        if isinstance(left, _Literal) and isinstance(left.value, bool):
            return _BoolLiteral(left.value)
        raise SelectorError(
            f"bare literal {left!r} is not a boolean expression in {self.source!r}",
            source=self.source,
            pos=start_pos,
        )


# ----------------------------------------------------------------------
# conjunctive decomposition (feeds the predicate index)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Predicate:
    """One indexable (attribute, op, value) constraint of a conjunction.

    ``op`` is one of ``'=='``, ``'<'``, ``'<='``, ``'>'``, ``'>='``,
    ``'in'``, ``'contains'``, ``'exists'``, or ``'never'`` (a conjunct
    that is constant-false, so the whole selector matches nothing).  For
    ``'in'`` the value is a tuple of literals; for ``'exists'`` and
    ``'never'`` it is ``None``.
    """

    op: str
    attribute: str = ""
    value: Any = None


_NEVER = Predicate("never")

_ORDERED_OPS = {"<", "<=", ">", ">="}
_FLIPPED = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}


def _const_eval(node: Any) -> bool:
    """Evaluate a conjunct that references no attributes."""
    return bool(node.evaluate({}))


def _decompose_conjunct(node: Any, out: list[Predicate]) -> None:
    """Extract index-usable predicates from one AND-conjunct.

    Conjuncts we cannot index (``!=``, attribute-vs-attribute
    comparisons, nested ``or``/``not``) are simply *dropped*: the
    shortlist they produce is then a superset of the true matches, and
    the full interpreter re-checks every candidate, so decisions stay
    identical to a linear scan.
    """
    if isinstance(node, _And):
        for sub in node.operands:
            _decompose_conjunct(sub, out)
        return
    if isinstance(node, _BoolLiteral):
        if not node.value:
            out.append(_NEVER)
        return
    if isinstance(node, _BoolAttr):
        out.append(Predicate("==", node.name, True))
        return
    if isinstance(node, _Exists):
        out.append(Predicate("exists", node.name))
        return
    if isinstance(node, _Compare):
        left, right = node.left, node.right
        if node.op == "in":
            if isinstance(left, _Attr):
                out.append(Predicate("in", left.name, tuple(lit.value for lit in right)))
            elif not _const_eval(node):
                out.append(_NEVER)
            return
        if not node.attributes():  # constant comparison
            if not _const_eval(node):
                out.append(_NEVER)
            return
        if isinstance(left, _Attr) and isinstance(right, _Attr):
            return  # two-attribute comparison: not indexable, drop
        # normalise to  attr <op> literal
        if isinstance(left, _Literal):
            if node.op == "contains":
                # literal contains X: literals are never lists -> false
                out.append(_NEVER)
                return
            left, right = right, left
            op = node.op if node.op == "==" else _FLIPPED.get(node.op)
        else:
            op = node.op
        lit = right.value
        if op == "==":
            out.append(Predicate("==", left.name, lit))
        elif op == "contains":
            out.append(Predicate("contains", left.name, lit))
        elif op in _ORDERED_OPS:
            # ordered comparisons only ever match numbers against a
            # numeric literal or strings against a string literal; a
            # boolean literal can match nothing
            if isinstance(lit, bool):
                out.append(_NEVER)
            else:
                out.append(Predicate(op, left.name, lit))
        # '!=' falls through: not indexable, drop the conjunct
        return
    # anything else (_Or, _Not) inside the conjunction: drop (superset)


def decompose(selector: "Selector") -> Optional[tuple[Predicate, ...]]:
    """Split a selector into indexable conjunctive predicates.

    Returns ``None`` when the selector's top level is not a conjunction
    the index can shortlist for (a disjunction or negation), in which
    case the caller must fall back to a linear scan.  An empty tuple
    means "no indexable constraint" (e.g. ``true``): every subscriber is
    a candidate.  The returned predicates are a *sound over-approximation*:
    any profile matching the selector satisfies all of them.
    """
    ast = selector._ast
    if isinstance(ast, (_Or, _Not)):
        return None
    out: list[Predicate] = []
    _decompose_conjunct(ast, out)
    return tuple(out)


# ----------------------------------------------------------------------
# required attributes (feeds shard routing)
# ----------------------------------------------------------------------
def _required_attrs(node: Any) -> frozenset[str]:
    """Attributes that must *exist* for ``node`` to possibly be true.

    Sound under the language's missing-attribute semantics: every
    comparison (including ``!=``), bare boolean attribute, and
    ``exists`` is false when the attribute is absent, so any attribute
    such a node references is required.  ``and`` unions its conjuncts'
    requirements; ``or`` can only require what *every* branch requires
    (intersection); ``not`` requires nothing (``not`` of a
    missing-attribute clause is true).
    """
    if isinstance(node, _And):
        out: frozenset[str] = frozenset()
        for sub in node.operands:
            out |= _required_attrs(sub)
        return out
    if isinstance(node, _Or):
        branches = [_required_attrs(sub) for sub in node.operands]
        common = branches[0]
        for b in branches[1:]:
            common &= b
        return common
    if isinstance(node, (_Not, _BoolLiteral, _Literal)):
        return frozenset()
    if isinstance(node, (_Exists, _BoolAttr)):
        return frozenset((node.name,))
    if isinstance(node, _Compare):
        return frozenset(node.attributes())
    return frozenset()  # pragma: no cover - exhaustive over _Node


def required_attributes(selector: "Selector") -> frozenset[str]:
    """Sound lower bound on the attributes a matching profile must have.

    A profile lacking any returned attribute can never satisfy
    ``selector`` — which is what lets the sharded broker skip whole
    shards whose populations do not carry a required attribute at all.
    Computed for *any* selector shape (disjunctions and negations
    included), unlike :func:`decompose`.
    """
    return _required_attrs(selector._ast)


# ----------------------------------------------------------------------
# public surface
# ----------------------------------------------------------------------
class Selector:
    """A compiled selector expression.

    >>> s = Selector("media == 'video' and size_kb <= 1024")
    >>> s.matches({"media": "video", "size_kb": 800})
    True
    >>> s.matches({"media": "audio", "size_kb": 800})
    False
    >>> s.matches({"media": "video"})   # missing attribute -> clause false
    False
    """

    __slots__ = ("text", "_ast", "_plan", "_required")

    def __init__(self, text: str) -> None:
        self.text = text
        tokens = _lex(text)
        if not tokens:
            raise SelectorError("empty selector")
        parser = _Parser(tokens, text)
        self._ast = parser.parse_expr()
        if parser.peek() is not None:
            tok = parser.peek()
            assert tok is not None
            raise SelectorError(
                f"trailing input at position {tok.pos} in {text!r}",
                source=text,
                pos=tok.pos,
            )
        #: lazily memoised result of :func:`decompose`
        self._plan: Optional[tuple[Predicate, ...]] | str = "unset"
        #: lazily memoised result of :func:`required_attributes`
        self._required: Optional[frozenset[str]] = None

    def matches(self, env: AttributeMap) -> bool:
        """Evaluate against an attribute map (profile or message headers)."""
        return bool(self._ast.evaluate(env))

    def attributes(self) -> set[str]:
        """All attribute names the expression references."""
        return self._ast.attributes()

    def conjunctive_plan(self) -> Optional[tuple[Predicate, ...]]:
        """Memoised :func:`decompose` of this selector (see there)."""
        if isinstance(self._plan, str):
            self._plan = decompose(self)
        return self._plan

    def required_attributes(self) -> frozenset[str]:
        """Memoised :func:`required_attributes` of this selector."""
        if self._required is None:
            self._required = required_attributes(self)
        return self._required

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Selector) and self._ast == other._ast

    def __hash__(self) -> int:
        return hash(self.text)

    def __repr__(self) -> str:
        return f"Selector({self.text!r})"


@lru_cache(maxsize=1024)
def parse(text: str) -> Selector:
    """Compile a selector, LRU-cached by its source text.

    Selectors are immutable once built (the lazily memoised
    :meth:`~Selector.conjunctive_plan` / :meth:`~Selector.required_attributes`
    are pure functions of the text), so every caller holding the same
    text can share one instance — and with it the memoised plan and
    required-attribute set.  Attach-path callers
    (:class:`~repro.core.profiles.ClientProfile`) route through here so
    repeated interests parse once per process instead of once per
    client.  Parse errors are not cached; a bad string raises
    :class:`SelectorError` on every call.
    """
    return Selector(text)


#: Matches every profile — broadcast to the whole session.  The vacuity
#: (tautology) warning is intentional here: this selector *is* broadcast.
TRUE_SELECTOR = Selector("true")  # repro: ignore[SEL002]
