"""Session discovery: publish and find collaboration objectives.

"Peer-to-peer applications used for file sharing and instant messaging
utilize their underlying peer discovery mechanisms to dynamically
create, publish and discover new objectives or topics of interests"
(paper Sec. 2).  A :class:`SessionDirectory` is that mechanism: sessions
register their descriptors; prospective members search by objective
keywords and required result space, ranked by relevance; and when a
match is too coarse ("a person interested in purchasing modems would
find [a] computer peripherals group to be of coarse granularity") the
directory can *refine* — spawn a narrower session descriptor linked to
its parent.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Optional

from .session import SessionDescriptor

__all__ = ["SessionDirectory", "SearchHit", "DiscoveryError"]


class DiscoveryError(ValueError):
    """Raised on invalid directory operations."""


_TOKEN_RE = re.compile(r"[a-z0-9]+")


def _tokens(text: str) -> set[str]:
    return set(_TOKEN_RE.findall(text.lower()))


@dataclass(frozen=True)
class SearchHit:
    """One ranked directory match."""

    descriptor: SessionDescriptor
    score: float
    matched_tokens: tuple[str, ...]


class SessionDirectory:
    """A registry of discoverable collaboration sessions.

    Relevance is token overlap between the query and the session's
    objective (Jaccard-flavoured: matched / query size), with a bonus
    when the session's name itself matches.  Sessions lacking a required
    sharing capability are excluded outright — "based on the final
    objective and required results a member joins the appropriate
    collaborating session".
    """

    def __init__(self) -> None:
        self._sessions: dict[str, SessionDescriptor] = {}
        self._parents: dict[str, str] = {}  # refined -> parent name

    # ------------------------------------------------------------------
    def publish(self, descriptor: SessionDescriptor) -> None:
        """Register (or re-register) a session."""
        if not descriptor.objective.strip():
            raise DiscoveryError("sessions need a non-empty objective to be discoverable")
        self._sessions[descriptor.name] = descriptor

    def withdraw(self, name: str) -> None:
        """Remove a session (ended / archived)."""
        self._sessions.pop(name, None)
        self._parents.pop(name, None)

    def get(self, name: str) -> Optional[SessionDescriptor]:
        return self._sessions.get(name)

    @property
    def sessions(self) -> list[SessionDescriptor]:
        return [self._sessions[k] for k in sorted(self._sessions)]

    # ------------------------------------------------------------------
    def search(
        self,
        query: str,
        require: tuple[str, ...] = (),
        limit: int = 10,
    ) -> list[SearchHit]:
        """Ranked sessions matching ``query`` and supporting ``require``.

        ``require`` lists result-space capabilities the joiner needs
        (e.g. ``("image",)`` for an image-sharing participant).
        """
        q = _tokens(query)
        if not q:
            raise DiscoveryError("empty query")
        hits: list[SearchHit] = []
        for desc in self._sessions.values():
            if any(not desc.supports(cap) for cap in require):
                continue
            obj_tokens = _tokens(desc.objective) | _tokens(desc.name)
            matched = q & obj_tokens
            if not matched:
                continue
            score = len(matched) / len(q)
            if _tokens(desc.name) & q:
                score += 0.25
            hits.append(
                SearchHit(descriptor=desc, score=score, matched_tokens=tuple(sorted(matched)))
            )
        hits.sort(key=lambda h: (-h.score, h.descriptor.name))
        return hits[:limit]

    # ------------------------------------------------------------------
    def refine(
        self,
        parent_name: str,
        sub_name: str,
        objective: str,
        result_space: Optional[tuple[str, ...]] = None,
    ) -> SessionDescriptor:
        """Spawn a narrower session under a too-coarse parent.

        The refined session inherits the parent's result space unless
        overridden (it can only narrow, never widen — members joined the
        parent expecting at most those capabilities).
        """
        parent = self._sessions.get(parent_name)
        if parent is None:
            raise DiscoveryError(f"unknown parent session {parent_name!r}")
        if result_space is None:
            result_space = parent.result_space
        elif not set(result_space) <= set(parent.result_space):
            raise DiscoveryError("a refinement cannot widen the parent's result space")
        refined = SessionDescriptor(sub_name, objective, result_space)
        self.publish(refined)
        self._parents[sub_name] = parent_name
        return refined

    def parent_of(self, name: str) -> Optional[str]:
        """The session this one refines, if any."""
        return self._parents.get(name)

    def refinements_of(self, name: str) -> list[SessionDescriptor]:
        """Narrower sessions spawned under ``name``."""
        return [
            self._sessions[child]
            for child, parent in sorted(self._parents.items())
            if parent == name and child in self._sessions
        ]
