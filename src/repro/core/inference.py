"""The inference engine: profile + contract + policies + state → decision.

"The quality of service adaptation based on network and system state is
jointly provided by three components, viz. the client profile, the system
state interface and the inference engine ... It then links this
information to determine the amount of information that can be processed
on the multicast data channel.  It also activates the information
transformer" (paper Sec. 5.2).

:meth:`InferenceEngine.infer` is a pure function of its inputs so the
whole adaptation path is unit-testable; the client object wires it to the
SNMP-backed system-state interface and to the image viewer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..media.transformers import Modality
from .contracts import ContractViolation, QoSContract
from .policies import ModalityTier, PolicyDatabase
from .profiles import ClientProfile

__all__ = ["AdaptationDecision", "InferenceEngine"]

#: packet budgets the engine snaps to (paper: powers of two, 1..16)
_PACKET_STEPS = (0, 1, 2, 4, 8, 16)


def _snap_packets(value: int, ceiling: int) -> int:
    """Largest allowed power-of-two step <= value (and <= ceiling)."""
    best = 0
    for step in _PACKET_STEPS:
        if step <= value and step <= ceiling:
            best = step
    return best


@dataclass(frozen=True)
class AdaptationDecision:
    """What the client should do right now.

    Attributes
    ----------
    packets:
        Progressive-image packets to accept (0..n_packets).
    modality:
        Richest modality to render (may be downgraded from the source's).
    tier:
        The wireless tier (only meaningful behind a base station).
    transforms:
        Transformer chain names the client must activate.
    violations:
        Contract constraints the environment made unsatisfiable.
    reasons:
        Human-readable trace of which policies fired (observability).
    """

    packets: int
    modality: Modality
    tier: ModalityTier = ModalityTier.FULL_IMAGE
    transforms: tuple[str, ...] = ()
    violations: tuple[ContractViolation, ...] = ()
    reasons: tuple[str, ...] = ()

    @property
    def degraded(self) -> bool:
        """True when the contract could not be fully honoured."""
        return bool(self.violations)


class InferenceEngine:
    """Policy-driven adaptation decisions.

    Parameters
    ----------
    policies:
        The policy database (see :mod:`repro.core.policies`).
    contract:
        The client's QoS contract; decision parameters are clamped into
        it and residual violations reported.
    max_packets:
        The image viewer's full budget (paper: 16).
    """

    def __init__(
        self,
        policies: PolicyDatabase,
        contract: Optional[QoSContract] = None,
        max_packets: int = 16,
    ) -> None:
        self.policies = policies
        self.contract = contract
        self.max_packets = max_packets
        self.decisions_made = 0

    # ------------------------------------------------------------------
    def infer(
        self,
        profile: ClientProfile,
        observed: dict[str, float],
        degraded: bool = False,
    ) -> AdaptationDecision:
        """Produce a decision from the current profile and system state.

        ``observed`` holds system/network parameters (``page_faults``,
        ``cpu_load``, ``bandwidth_bps``, ``sir_db``, ...); the profile
        contributes the user's modality preference and device class.
        ``degraded`` signals that the management plane has been dark
        beyond its stale grace — the policy database then caps the
        decision at its conservative floor instead of assuming health.
        """
        self.decisions_made += 1
        reasons: list[str] = []
        if degraded:
            reasons.append("management plane dark; conservative fallback")

        # -- packet budget from system-state policies ---------------------
        policy_packets = self.policies.decide_packets(observed, degraded=degraded)
        if policy_packets is None:
            packets = self.max_packets
            reasons.append("no packet policy applicable; full budget")
        else:
            packets = policy_packets
            reasons.append(f"policy packet budget {policy_packets}")
        packets = _snap_packets(int(packets), self.max_packets)

        # -- wireless tier ------------------------------------------------
        tier = ModalityTier.FULL_IMAGE
        if "sir_db" in observed:
            tier = self.policies.decide_tier(observed["sir_db"], degraded=degraded)
            reasons.append(f"sir {observed['sir_db']:.1f} dB -> tier {tier.name}")
            if tier is ModalityTier.NOTHING:
                packets = 0
            elif tier is not ModalityTier.FULL_IMAGE:
                packets = 0  # image packets are gated off below full tier

        # -- modality from profile preference + tier -----------------------
        preferred = profile.get("modality", "image")
        modality = Modality(preferred) if preferred in Modality._value2member_map_ else Modality.IMAGE
        transforms: list[str] = []
        if tier is ModalityTier.TEXT_ONLY and modality in (Modality.IMAGE, Modality.SKETCH):
            modality = Modality.TEXT
            transforms.append("image-to-text")
            reasons.append("tier forces text modality")
        elif tier is ModalityTier.TEXT_AND_SKETCH and modality is Modality.IMAGE:
            modality = Modality.SKETCH
            transforms.append("image-to-sketch")
            reasons.append("tier forces sketch modality")
        elif modality is Modality.TEXT and preferred == "text":
            transforms.append("image-to-text")
            reasons.append("profile prefers text modality")
        elif modality is Modality.SPEECH:
            transforms.extend(("image-to-text", "text-to-speech"))
            reasons.append("profile prefers speech modality")

        # -- contract enforcement ------------------------------------------
        violations: tuple[ContractViolation, ...] = ()
        if self.contract is not None:
            clamped = int(self.contract.clamp("packets", packets))
            if clamped != packets:
                reasons.append(f"contract clamps packets {packets} -> {clamped}")
            packets = _snap_packets(clamped, self.max_packets) if clamped != packets else packets
            violations = tuple(self.contract.violations({"packets": packets, **observed}))
            if violations:
                reasons.append("contract violations: " + "; ".join(map(str, violations)))

        return AdaptationDecision(
            packets=packets,
            modality=modality,
            tier=tier,
            transforms=tuple(transforms),
            violations=violations,
            reasons=tuple(reasons),
        )
