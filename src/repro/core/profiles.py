"""Client profiles: interests, capabilities, state, and resources.

"Each client locally maintains a profile that defines its current state,
its interests and its capabilities ... The profile is dynamic and changes
locally to reflect the changes in the client or system state" (paper
Secs. 3, 5.2).  Profiles are the *only* addressing mechanism — there is
no global roster; a message reaches whichever profiles satisfy its
selector at delivery time.

A profile has three faces:

* ``attributes`` — what message selectors are evaluated against (role,
  device class, session, current modality, resource state, ...);
* ``interest`` — a :class:`~repro.core.selectors.Selector` over message
  headers: what the client wants to receive;
* ``transforms`` — :class:`TransformRule` rewrites the client can apply,
  enabling conditional acceptance (Fig. 3's "accepts the message with a
  transformation").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional

from .attributes import AttributeValue, coerce_value, values_equal
from .selectors import Selector, TRUE_SELECTOR, parse

__all__ = ["TransformRule", "ClientProfile", "ProfileError"]


class ProfileError(ValueError):
    """Raised on malformed profile updates."""


@dataclass(frozen=True)
class TransformRule:
    """A header rewrite this client can realise with a local transformer.

    ``TransformRule("encoding", "mpeg2", "jpeg")`` says: if a message
    arrives with ``encoding == 'mpeg2'``, this client can consume it as if
    ``encoding == 'jpeg'`` (it owns an MPEG2→JPEG transcoder).
    """

    attribute: str
    from_value: AttributeValue
    to_value: AttributeValue
    name: str = ""

    def applies_to(self, headers: dict[str, AttributeValue]) -> bool:
        """Whether the rule's precondition holds on ``headers``."""
        return values_equal(headers.get(self.attribute), self.from_value)

    def apply(self, headers: dict[str, AttributeValue]) -> dict[str, AttributeValue]:
        """Rewritten copy of ``headers`` (precondition must hold)."""
        if not self.applies_to(headers):
            raise ProfileError(f"rule {self} does not apply to {headers}")
        out = dict(headers)
        out[self.attribute] = self.to_value
        return out

    def __str__(self) -> str:
        label = self.name or f"{self.attribute}:{self.from_value}->{self.to_value}"
        return label


class ClientProfile:
    """A locally maintained, locally mutable semantic profile.

    Parameters
    ----------
    client_id:
        Diagnostic label only — never used for addressing.
    attributes:
        Initial attribute map (coerced via
        :func:`~repro.core.attributes.coerce_value`).
    interest:
        Selector over message headers; defaults to accept-everything.
    transforms:
        Rewrite rules backed by the client's local transformers.
    """

    def __init__(
        self,
        client_id: str,
        attributes: Optional[dict[str, Any]] = None,
        interest: Optional[Selector | str] = None,
        transforms: Iterable[TransformRule] = (),
    ) -> None:
        self.client_id = client_id
        self._attributes: dict[str, AttributeValue] = {}
        for k, v in (attributes or {}).items():
            self._attributes[k] = coerce_value(v)
        if interest is None:
            self.interest = TRUE_SELECTOR
        elif isinstance(interest, str):
            self.interest = parse(interest)  # LRU: repeats parse once
        else:
            self.interest = interest
        self.transforms: list[TransformRule] = list(transforms)
        #: bumped on every mutation; lets observers cheaply detect change
        self.version = 0
        self._watchers: list[Callable[["ClientProfile"], None]] = []

    # ------------------------------------------------------------------
    # attribute surface (read-mostly mapping)
    # ------------------------------------------------------------------
    @property
    def attributes(self) -> dict[str, AttributeValue]:
        """A read-only *view* is not enforced; treat as read-only."""
        return self._attributes

    def get(self, name: str, default: Any = None) -> Any:
        return self._attributes.get(name, default)

    def __getitem__(self, name: str) -> AttributeValue:
        return self._attributes[name]

    def __contains__(self, name: str) -> bool:
        return name in self._attributes

    # ------------------------------------------------------------------
    # local mutation ("profiles are maintained and modifiable by clients")
    # ------------------------------------------------------------------
    def update(self, **attrs: Any) -> None:
        """Set one or more attributes (local, immediate)."""
        for k, v in attrs.items():
            self._attributes[k] = coerce_value(v)
        self._bump()

    def remove(self, *names: str) -> None:
        """Delete attributes; unknown names are ignored."""
        for n in names:
            self._attributes.pop(n, None)
        self._bump()

    def set_interest(self, interest: Selector | str) -> None:
        """Replace the interest selector."""
        self.interest = parse(interest) if isinstance(interest, str) else interest
        self._bump()

    def add_transform(self, rule: TransformRule) -> None:
        """Register an additional rewrite capability."""
        self.transforms.append(rule)
        self._bump()

    # ------------------------------------------------------------------
    # change notification (feeds e.g. the matching engine's index)
    # ------------------------------------------------------------------
    def watch(self, callback: Callable[["ClientProfile"], None]) -> Callable[[], None]:
        """Call ``callback(profile)`` after every mutation.

        Returns an unwatch function; calling it more than once is a
        no-op.  Watchers must not mutate the profile re-entrantly.
        """
        self._watchers.append(callback)

        def unwatch() -> None:
            try:
                self._watchers.remove(callback)
            except ValueError:
                pass

        return unwatch

    def _bump(self) -> None:
        self.version += 1
        for cb in tuple(self._watchers):
            cb(self)

    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, AttributeValue]:
        """An immutable-ish copy for matching at a point in time."""
        return dict(self._attributes)

    def __repr__(self) -> str:
        return (
            f"ClientProfile({self.client_id!r}, v{self.version},"
            f" attrs={len(self._attributes)}, transforms={len(self.transforms)})"
        )
