"""QoS contracts: user constraints the inference engine must honour.

"Users can specify individual system and application parameters that will
make up the local system state, as well as the constraints subject on
these parameters.  These user policies define a QoS 'contract' that needs
to be satisfied by the inference engine" (paper Sec. 5.2).

A contract is a set of :class:`Constraint` ranges over named parameters
(decision outputs like ``packets`` / ``bpp``, or observed inputs like
``latency_ms``).  The inference engine clamps decisions into the
contract where possible and reports a :class:`ContractViolation` when the
system state makes the contract unsatisfiable (the application may then
renegotiate — e.g. drop to text mode).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = ["Constraint", "QoSContract", "ContractViolation", "ContractError"]


class ContractError(ValueError):
    """Raised for malformed constraints."""


@dataclass(frozen=True)
class Constraint:
    """An inclusive range requirement on one parameter."""

    parameter: str
    minimum: Optional[float] = None
    maximum: Optional[float] = None

    def __post_init__(self) -> None:
        if self.minimum is None and self.maximum is None:
            raise ContractError(f"constraint on {self.parameter!r} has no bounds")
        if (
            self.minimum is not None
            and self.maximum is not None
            and self.minimum > self.maximum
        ):
            raise ContractError(
                f"constraint on {self.parameter!r}: min {self.minimum} > max {self.maximum}"
            )

    def satisfied(self, value: float) -> bool:
        """Whether ``value`` lies in the range."""
        if self.minimum is not None and value < self.minimum:
            return False
        if self.maximum is not None and value > self.maximum:
            return False
        return True

    def clamp(self, value: float) -> float:
        """Nearest in-range value."""
        if self.minimum is not None:
            value = max(value, self.minimum)
        if self.maximum is not None:
            value = min(value, self.maximum)
        return value


@dataclass(frozen=True)
class ContractViolation:
    """One unsatisfied constraint at decision time."""

    constraint: Constraint
    observed: float

    def __str__(self) -> str:
        c = self.constraint
        rng = f"[{c.minimum if c.minimum is not None else '-inf'}, " \
              f"{c.maximum if c.maximum is not None else 'inf'}]"
        return f"{c.parameter}={self.observed} outside {rng}"


class QoSContract:
    """A named bundle of constraints.

    >>> c = QoSContract("viewer", [Constraint("packets", minimum=1)])
    >>> c.violations({"packets": 0})[0].observed
    0
    """

    def __init__(self, name: str, constraints: list[Constraint] | None = None) -> None:
        self.name = name
        self._by_param: dict[str, Constraint] = {}
        for c in constraints or []:
            self.add(c)

    def add(self, constraint: Constraint) -> None:
        """Add/replace the constraint for one parameter."""
        self._by_param[constraint.parameter] = constraint

    def constraint(self, parameter: str) -> Optional[Constraint]:
        return self._by_param.get(parameter)

    @property
    def parameters(self) -> list[str]:
        return sorted(self._by_param)

    def violations(self, values: dict[str, float]) -> list[ContractViolation]:
        """All constraints unsatisfied by ``values`` (missing ones skip)."""
        out = []
        for name, c in sorted(self._by_param.items()):
            if name in values and not c.satisfied(values[name]):
                out.append(ContractViolation(c, values[name]))
        return out

    def clamp(self, parameter: str, value: float) -> float:
        """Pull a decision parameter into the contracted range if bounded."""
        c = self._by_param.get(parameter)
        return c.clamp(value) if c is not None else value

    def __repr__(self) -> str:
        return f"QoSContract({self.name!r}, {self.parameters})"
