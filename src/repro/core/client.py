"""Wired client: a full peer of the collaboration session.

"A wired client joins the multicast network and becomes an active member
of the session using the three main entities of the application user
interface — the chat-area, whiteboard, or the image viewer.  The user
interface is coupled to the adaptive framework using the application
interface" (paper Sec. 4.1).

The client owns:

* its :class:`~repro.core.profiles.ClientProfile` (local, mutable);
* a :class:`~repro.messaging.transport.SemanticEndpoint` (the event
  communication module);
* the three apps plus a state repository;
* an :class:`~repro.core.inference.InferenceEngine` wired to the SNMP
  network-state interface via :meth:`monitor_and_adapt`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..apps.chat import ChatArea
from ..apps.imageviewer import ImageViewer
from ..apps.whiteboard import Whiteboard
from ..media.sketch import Sketch, extract_sketch
from ..media.transformers import Modality, TransformerRegistry, default_registry
from ..messaging.broker import Delivery
from ..messaging.message import SemanticMessage
from ..messaging.transport import SemanticEndpoint
from ..network.multicast import MulticastGroup
from ..network.simnet import Network
from ..snmp.ber import Gauge32
from ..snmp.manager import SnmpManager
from ..snmp.oids import TASSL
from ..network.udp import DatagramSocket
from .events import (
    ChatEvent,
    Event,
    HistoryRequest,
    ImagePacketEvent,
    ImageRepairRequest,
    ImageShareAnnounce,
    JoinEvent,
    LeaveEvent,
    LockGrantEvent,
    LockReleaseEvent,
    LockRequestEvent,
    ProfileUpdateEvent,
    SketchShareEvent,
    TextShareEvent,
    WhiteboardEvent,
    EventError,
    decode_event,
)
from .inference import AdaptationDecision, InferenceEngine
from .contracts import QoSContract
from .policies import PolicyDatabase, default_policy_database
from .profiles import ClientProfile
from .session import Membership, SessionArchive, SessionDescriptor
from .state import StateRepository

__all__ = ["WiredClient"]


class WiredClient:
    """One wired peer: profile + apps + comm module + inference loop.

    Parameters
    ----------
    name:
        Client id; must equal its network node name.
    network / group:
        Where to attach the semantic endpoint.
    session:
        The session descriptor (selector targeting, result space).
    profile:
        Optional pre-built profile; a default participant profile is
        created otherwise (``session`` and ``role`` attributes set).
    policies / contract:
        Inference-engine configuration.
    snmp_host:
        Host whose extension agent to query in
        :meth:`monitor_and_adapt`; defaults to the client's own node.
    """

    def __init__(
        self,
        name: str,
        network: Network,
        group: MulticastGroup,
        session: SessionDescriptor,
        profile: Optional[ClientProfile] = None,
        policies: Optional[PolicyDatabase] = None,
        contract: Optional[QoSContract] = None,
        transformer_registry: Optional[TransformerRegistry] = None,
        snmp_host: Optional[str] = None,
        n_packets: int = 16,
        image_target_bpp: Optional[float] = 2.2,
    ) -> None:
        self.name = name
        self.network = network
        self.session = session
        self.profile = profile if profile is not None else ClientProfile(
            name, {"session": session.name, "role": "participant", "client_id": name}
        )
        if "session" not in self.profile:
            self.profile.update(session=session.name)
        self.scheduler = network.scheduler

        # apps + state
        self.chat = ChatArea(name)
        self.repository = StateRepository()
        self.whiteboard = Whiteboard(name, self.repository)
        self.viewer = ImageViewer(name, n_packets=n_packets, target_bpp=image_target_bpp)
        self.transformers = (
            transformer_registry if transformer_registry is not None else default_registry()
        )

        # adaptation
        self.policies = policies if policies is not None else default_policy_database()
        self.engine = InferenceEngine(self.policies, contract=contract, max_packets=n_packets)
        self.last_decision: Optional[AdaptationDecision] = None
        self.decision_log: list[tuple[float, AdaptationDecision]] = []

        # communication module
        self.endpoint = SemanticEndpoint(
            network, name, group, self.profile, self._on_delivery
        )
        self.snmp = SnmpManager(DatagramSocket(network, name), self.scheduler)
        self.snmp_host = snmp_host if snmp_host is not None else name
        #: optional aggregated poller (see :meth:`enable_network_monitoring`)
        self.netstate = None
        #: how long (virtual seconds) SNMP may stay unreachable before
        #: adaptation decisions fall back to the conservative floor
        self.stale_grace = 3.0
        self._dark_since: Optional[float] = None

        # session observability
        self.membership = Membership()
        #: watchable mirrors of peers' announced profiles; observers can
        #: :meth:`~repro.core.profiles.ClientProfile.watch` an entry to be
        #: notified when that peer announces a change
        self.peer_profiles: dict[str, ClientProfile] = {}
        self.archive = SessionArchive()
        self.events_received: list[tuple[float, Event]] = []
        #: when true, this peer answers history requests from its archive
        self.serve_history = True
        #: distributed locking: exactly one session peer should be the
        #: coordinator (the paper's centralized concurrency arbitration)
        self.lock_coordinator = False
        #: object_id -> owner client_id, as announced by lock grants
        self.lock_owners: dict[str, str] = {}
        #: locks this client holds (granted by the coordinator)
        self.held_locks: set[str] = set()

    # ------------------------------------------------------------------
    # outbound
    # ------------------------------------------------------------------
    def _publish_event(self, event: Event, extra_selector: str = "") -> SemanticMessage:
        msg = SemanticMessage.create(
            sender=self.name,
            selector=self.session.selector_text(extra_selector),
            headers=event.headers(),
            body=event.to_body(),
            kind=event.kind,
        )
        self.endpoint.publish(msg)
        # own contributions belong in the archive too — an archivist must
        # be able to replay what *it* said, not just what it heard
        self.archive.record(self.scheduler.clock.now, msg)
        return msg

    def join(self) -> None:
        """Announce this client to the session."""
        self.membership.join(self.name, self.scheduler.clock.now)
        self._publish_event(JoinEvent(client_id=self.name, objective=self.session.objective))

    def leave(self) -> None:
        """Announce departure and detach from the group."""
        self._publish_event(LeaveEvent(client_id=self.name))
        self.membership.leave(self.name)
        self.endpoint.close()

    def send_chat(self, text: str) -> None:
        """Type a line into the chat area (rendered locally immediately)."""
        event = self.chat.compose(text)
        self.chat.on_chat(event, self.scheduler.clock.now)
        self._publish_event(event)

    def draw(self, object_id: str, points: tuple[float, ...]) -> None:
        """Draw a whiteboard stroke.

        When the session uses distributed locking and another client
        holds the object's lock, the draw is refused locally — cheaper
        than publishing an update arbitration will reject.
        """
        owner = self.lock_owners.get(object_id)
        if owner is not None and owner != self.name:
            from .concurrency import LockError

            raise LockError(f"{object_id!r} is locked by {owner}")
        event = self.whiteboard.draw(object_id, points, self.scheduler.clock.now)
        self._publish_event(event)

    def erase(self, object_id: str) -> None:
        """Erase a whiteboard object."""
        event = self.whiteboard.erase(object_id, self.scheduler.clock.now)
        self._publish_event(event)

    def share_image(self, image_id: str, image: np.ndarray) -> None:
        """Share an image through the viewer: announce + packets."""
        if not self.session.supports("image"):
            raise ValueError(f"session {self.session.name!r} does not share images")
        announce, packet_events = self.viewer.share(image_id, image)
        self._publish_event(announce)
        for pe in packet_events:
            self._publish_event(pe)

    def announce_profile_change(self, **changes: str) -> None:
        """Advertise a local profile change (e.g. modality preference)."""
        self.profile.update(**changes)
        event = ProfileUpdateEvent(
            client_id=self.name,
            changes=tuple((k, str(v)) for k, v in changes.items()),
        )
        self._publish_event(event)

    # ------------------------------------------------------------------
    # inbound
    # ------------------------------------------------------------------
    def _on_delivery(self, delivery: Delivery) -> None:
        now = self.scheduler.clock.now
        msg = delivery.message
        self.archive.record(now, msg)
        try:
            event = decode_event(msg.kind, msg.body)
        except EventError:
            # undecodable event: drop and count, never abort the dispatch loop
            self.endpoint.decode_failures += 1
            return
        self.events_received.append((now, event))
        effective_modality = delivery.result.effective_headers.get("modality")

        if isinstance(event, ChatEvent):
            self.chat.on_chat(event, now)
        elif isinstance(event, WhiteboardEvent):
            self.whiteboard.on_event(event, now)
        elif isinstance(event, ImageShareAnnounce):
            self.viewer.on_announce(event)
            preference = self.profile.get("modality")
            # degraded modality: render the in-band description as text
            if effective_modality == "text" or preference == "text":
                self.chat.on_text_share(
                    TextShareEvent(ref_id=event.image_id, text=event.description), now
                )
            elif preference == "speech":
                # synthesize the description locally (wired clients have
                # the cycles; thin clients get it done at the BS instead)
                from ..media.speech import text_to_speech

                clip = text_to_speech(event.description)
                self.repository.put(
                    f"speech/{event.image_id}", clip, timestamp=now, author=msg.sender
                )
        elif isinstance(event, ImagePacketEvent):
            if self.profile.get("modality") == "text":
                return  # text-mode clients skip image payloads entirely
            self.viewer.on_packet(event)
        elif isinstance(event, TextShareEvent):
            self.chat.on_text_share(event, now)
        elif isinstance(event, SketchShareEvent):
            # rendered sketches land in the state repository
            self.repository.put(
                f"sketch/{event.ref_id}", event.encoded, timestamp=now, author=msg.sender
            )
        elif isinstance(event, JoinEvent):
            self.membership.join(event.client_id, now)
        elif isinstance(event, LeaveEvent):
            self.membership.leave(event.client_id)
            self._revoke_departed_locks(event.client_id)
        elif isinstance(event, ProfileUpdateEvent):
            self.repository.put(
                f"peer-profile/{event.client_id}",
                dict(event.changes),
                timestamp=now,
                author=event.client_id,
            )
            peer = self.peer_profiles.get(event.client_id)
            if peer is None:
                peer = self.peer_profiles[event.client_id] = ClientProfile(event.client_id)
            peer.update(**dict(event.changes))
        elif isinstance(event, HistoryRequest):
            self._serve_history(event)
        elif isinstance(event, ImageRepairRequest):
            self._serve_image_repair(event)
        elif isinstance(event, LockRequestEvent):
            self._coordinate_lock_request(event)
        elif isinstance(event, LockReleaseEvent):
            self._coordinate_lock_release(event)
        elif isinstance(event, LockGrantEvent):
            self._on_lock_grant(event)

    # ------------------------------------------------------------------
    # session history (late joiners) and image repair
    # ------------------------------------------------------------------
    def request_history(self, since: float = 0.0, kinds: tuple[str, ...] = ()) -> None:
        """Ask archivist peers to replay the session since ``since``."""
        self._publish_event(
            HistoryRequest(client_id=self.name, since=since, kinds=kinds)
        )

    def _serve_history(self, request: HistoryRequest) -> None:
        """Replay archived traffic, re-addressed to the requester only.

        History/control kinds are never replayed, nor is traffic the
        requester originated itself.
        """
        if not self.serve_history or request.client_id == self.name:
            return
        skip = {"history-request", "image-repair", "join", "leave"}
        wanted = set(request.kinds) if request.kinds else None
        target = f"client_id == '{request.client_id}'"
        selector = self.session.selector_text(target)
        replays = [
            SemanticMessage.create(
                sender=self.name,
                selector=selector,
                headers=dict(msg.headers),
                body=msg.body,
                kind=msg.kind,
            )
            for _t, msg in self.archive.replay(since=request.since)
            if msg.kind not in skip
            and msg.sender != request.client_id
            and (wanted is None or msg.kind in wanted)
        ]
        self.endpoint.publish_many(replays)

    def request_image_repair(self, image_id: str) -> tuple[int, ...]:
        """NACK the holes blocking an image's reconstruction.

        Returns the packet indices requested (empty = nothing missing
        within the current budget).
        """
        view = self.viewer.viewed.get(image_id)
        if view is None:
            return ()
        budget = min(self.viewer.packet_budget, view.announce.n_packets)
        have = set(view.assembly._packets)
        missing = tuple(i for i in range(budget) if i not in have)
        if missing:
            self._publish_event(
                ImageRepairRequest(
                    client_id=self.name, image_id=image_id, packet_indices=missing
                )
            )
        return missing

    def _serve_image_repair(self, request: ImageRepairRequest) -> None:
        """Re-publish requested packets of an image this client shared."""
        prog = self.viewer.shared.get(request.image_id)
        if prog is None or request.client_id == self.name:
            return
        packets = prog.packets()
        target = f"client_id == '{request.client_id}'"
        selector = self.session.selector_text(target)
        repairs: list[SemanticMessage] = []
        for idx in request.packet_indices:
            if 0 <= idx < len(packets):
                event = ImagePacketEvent(
                    image_id=request.image_id,
                    packet_index=idx,
                    packet_total=packets[idx].total,
                    payload=packets[idx].to_bytes(),
                )
                repairs.append(
                    SemanticMessage.create(
                        sender=self.name,
                        selector=selector,
                        headers=event.headers(),
                        body=event.to_body(),
                        kind=event.kind,
                    )
                )
        self.endpoint.publish_many(repairs)

    # ------------------------------------------------------------------
    # distributed object locking (session-wide concurrency control)
    # ------------------------------------------------------------------
    def request_lock(self, object_id: str) -> None:
        """Ask the session's lock coordinator for exclusive access.

        The grant arrives asynchronously as a :class:`LockGrantEvent`
        (watch :attr:`held_locks`).  A coordinator requesting its own
        lock is served locally for symmetry.
        """
        event = LockRequestEvent(client_id=self.name, object_id=object_id)
        if self.lock_coordinator:
            self._coordinate_lock_request(event)
        else:
            self._publish_event(event)

    def release_lock(self, object_id: str) -> None:
        """Release a held lock (no-op when not held)."""
        if object_id not in self.held_locks:
            return
        self.held_locks.discard(object_id)
        event = LockReleaseEvent(client_id=self.name, object_id=object_id)
        if self.lock_coordinator:
            self._coordinate_lock_release(event)
        else:
            self._publish_event(event)

    def _announce_grant(self, object_id: str, owner: str) -> None:
        grant = LockGrantEvent(client_id=owner, object_id=object_id, granted=True)
        self._publish_event(grant)
        self._on_lock_grant(grant)  # coordinator applies locally too

    def _coordinate_lock_request(self, event: LockRequestEvent) -> None:
        if not self.lock_coordinator:
            return
        granted = self.whiteboard.locks.acquire(event.object_id, event.client_id)
        if granted:
            self._announce_grant(event.object_id, event.client_id)
        # queued requests are granted on release (below)

    def _coordinate_lock_release(self, event: LockReleaseEvent) -> None:
        if not self.lock_coordinator:
            return
        try:
            next_owner = self.whiteboard.locks.release(event.object_id, event.client_id)
        except Exception:
            return  # stale/duplicate release: ignore
        if next_owner is not None:
            self._announce_grant(event.object_id, next_owner)
        else:
            self.lock_owners.pop(event.object_id, None)
            self._publish_event(
                LockGrantEvent(client_id="", object_id=event.object_id, granted=False)
            )

    def _revoke_departed_locks(self, client_id: str) -> None:
        """Revoke every lock a departed client held (Sec. 2 semantics).

        Every replica drops the leaver from its grant view immediately;
        the coordinator additionally purges the leaver from its queues
        via :meth:`~repro.core.concurrency.LockManager.drop_client` and
        announces the successor (or the free state) for each lock.
        """
        for object_id, owner in list(self.lock_owners.items()):
            if owner == client_id:
                self.lock_owners.pop(object_id, None)
        if not self.lock_coordinator:
            return
        for object_id, next_owner in self.whiteboard.locks.drop_client(client_id):
            if next_owner is not None:
                self._announce_grant(object_id, next_owner)
            else:
                self._publish_event(
                    LockGrantEvent(client_id="", object_id=object_id, granted=False)
                )

    def _on_lock_grant(self, event: LockGrantEvent) -> None:
        if event.granted and event.client_id:
            self.lock_owners[event.object_id] = event.client_id
            if event.client_id == self.name:
                self.held_locks.add(event.object_id)
        else:
            self.lock_owners.pop(event.object_id, None)

    # ------------------------------------------------------------------
    # the adaptation loop (SNMP → inference → viewer budget)
    # ------------------------------------------------------------------
    def read_system_state(self) -> dict[str, float]:
        """Query the local host's extension agent over SNMP.

        Raises :class:`~repro.snmp.errors.SnmpError` when the agent is
        unreachable; :meth:`monitor_and_adapt` handles that by falling
        back to the last known observation.
        """
        results = self.snmp.get(
            self.snmp_host, [TASSL.hostCpuLoad, TASSL.hostPageFaults, TASSL.hostFreeMemory]
        )
        values = {str(oid): v for oid, v in results}
        out: dict[str, float] = {}
        cpu = values.get(str(TASSL.hostCpuLoad))
        pf = values.get(str(TASSL.hostPageFaults))
        mem = values.get(str(TASSL.hostFreeMemory))
        if isinstance(cpu, Gauge32):
            out["cpu_load"] = float(cpu.value)
        if isinstance(pf, Gauge32):
            out["page_faults"] = float(pf.value)
        if isinstance(mem, Gauge32):
            out["free_memory_kib"] = float(mem.value)
        return out

    def enable_network_monitoring(
        self, switch: Optional[str] = None, switch_if_index: Optional[int] = None
    ) -> "NetworkStateInterface":
        """Upgrade to the aggregated network-state interface.

        Registers the full host-extension probe set (CPU, page faults,
        memory, access-link bandwidth/latency/jitter/loss) and optionally
        a switch-port speed probe.  Subsequent adaptation cycles observe
        network parameters too, so the bandwidth policy participates.
        """
        from .netstate import NetworkStateInterface

        ns = NetworkStateInterface(self.network, self.name)
        ns.add_standard_host_probes(self.snmp_host)
        if switch is not None and switch_if_index is not None:
            ns.add_switch_bandwidth_probe(switch, switch_if_index)
        self.netstate = ns
        return ns

    def enable_trap_listener(self) -> None:
        """Accept SNMP traps (port 162) and adapt immediately on each.

        Idempotent.  Received notifications are logged in
        :attr:`traps_received` for observability.
        """
        if getattr(self, "_trap_listener", None) is not None:
            return
        from ..snmp.traps import Notification, TrapListener

        self.traps_received: list = []

        def on_trap(notification: Notification) -> None:
            self.traps_received.append((self.scheduler.clock.now, notification))
            self.monitor_and_adapt()

        self._trap_listener = TrapListener(self.network, self.name, on_trap)

    def monitor_and_adapt(self, extra_observed: Optional[dict[str, float]] = None) -> AdaptationDecision:
        """One adaptation cycle: observe, infer, actuate.

        Returns the decision (also logged).  ``extra_observed`` lets the
        base-station / experiment layers inject network observations
        (e.g. ``sir_db``) alongside the SNMP readings.  When SNMP has
        been unreachable for longer than :attr:`stale_grace` virtual
        seconds the engine is told the plane is degraded and decides
        conservatively (see :meth:`PolicyDatabase.decide_packets`).
        """
        from ..snmp.errors import SnmpError

        now = self.scheduler.clock.now
        try:
            if self.netstate is not None:
                observed = self.netstate.poll()
            else:
                observed = self.read_system_state()
                self._dark_since = None
            self._last_observed = dict(observed)
        except SnmpError:
            # management plane unreachable: adapt on the last known state
            # (conservative — a degraded network usually means degraded
            # hosts too, and stale caution beats no decision at all)
            self.snmp_failures = getattr(self, "snmp_failures", 0) + 1
            if getattr(self, "_dark_since", None) is None:
                self._dark_since = now
            observed = dict(getattr(self, "_last_observed", {}))
        if self.netstate is not None:
            degraded = self.netstate.degraded
        else:
            dark_since = getattr(self, "_dark_since", None)
            degraded = dark_since is not None and now - dark_since > self.stale_grace
        if extra_observed:
            observed.update(extra_observed)
        decision = self.engine.infer(self.profile, observed, degraded=degraded)
        self.viewer.set_packet_budget(decision.packets)
        self.last_decision = decision
        self.decision_log.append((self.scheduler.clock.now, decision))
        return decision

    def start_adaptation_loop(self, interval: float = 1.0) -> None:
        """Schedule periodic :meth:`monitor_and_adapt` on the sim clock."""
        def tick() -> None:
            self.monitor_and_adapt()
            self.scheduler.call_after(interval, tick)

        self.scheduler.call_after(interval, tick)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release every resource this client holds (idempotent)."""
        try:
            self.endpoint.close()
        except Exception:
            pass
        self.snmp.close()
        if self.netstate is not None:
            self.netstate.close()
        listener = getattr(self, "_trap_listener", None)
        if listener is not None:
            listener.close()
            self._trap_listener = None

    # ------------------------------------------------------------------
    def local_sketch(self, image_id: str) -> Sketch:
        """Extract a sketch from the current reconstruction of an image."""
        return extract_sketch(self.viewer.reconstruct(image_id))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"WiredClient({self.name!r}, session={self.session.name!r})"
