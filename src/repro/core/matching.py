"""Semantic interpretation: selector × profile → accept / transform / reject.

Implements the paper's Figure 3 exactly:

* Profile 1 matches the incoming selector → **accept**;
* Profile 2 wants something incompatible → **reject**;
* Profile 3 wants JPEG, stream is MPEG2, but the client owns an
  MPEG2→JPEG transformer → **accept with transformation**.

Interpretation happens *at the receiver*: the sender multicasts without
knowing who exists; each client runs :func:`interpret` against its own
local profile.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from itertools import combinations
from typing import Optional

from .attributes import AttributeValue
from .matching_engine import compile_selector
from .profiles import ClientProfile, TransformRule
from .selectors import Selector

__all__ = ["Decision", "MatchResult", "interpret", "match_selector"]


class Decision(Enum):
    """Outcome of the semantic interpretation process."""

    ACCEPT = "accept"
    ACCEPT_WITH_TRANSFORM = "accept-with-transform"
    REJECT = "reject"


@dataclass(frozen=True)
class MatchResult:
    """Interpretation outcome plus how to realise it.

    ``transforms`` lists the rewrite rules (in application order) that
    make the message acceptable; ``effective_headers`` is the header map
    *after* those rewrites — what the application layer should treat the
    payload as once the corresponding transformers have run.
    """

    decision: Decision
    transforms: tuple[TransformRule, ...] = ()
    effective_headers: dict[str, AttributeValue] = field(default_factory=dict)

    @property
    def accepted(self) -> bool:
        return self.decision is not Decision.REJECT


def match_selector(selector: Selector | str, profile: ClientProfile) -> bool:
    """Does the message's selector address this profile?

    Selector strings are compiled through the process-wide LRU cache.
    """
    return compile_selector(selector).matches(profile.snapshot())


def interpret(
    selector: Selector | str,
    headers: dict[str, AttributeValue],
    profile: ClientProfile,
    max_transforms: int = 2,
) -> MatchResult:
    """Full receiver-side interpretation of one message.

    Steps:

    1. The selector must address this profile (else the message simply is
       not for us — reject).
    2. If the profile's interest accepts the headers as-is → accept.
    3. Otherwise search transform-rule applications (chains up to
       ``max_transforms`` long, breadth-first so shorter chains win) for a
       rewritten header map the interest accepts → accept-with-transform.
    4. Nothing helps → reject.
    """
    if not match_selector(selector, profile):
        return MatchResult(Decision.REJECT)
    if profile.interest.matches(headers):
        return MatchResult(Decision.ACCEPT, effective_headers=dict(headers))

    # breadth-first over transformation chains
    frontier: list[tuple[dict[str, AttributeValue], tuple[TransformRule, ...]]] = [
        (dict(headers), ())
    ]
    seen: set[tuple[tuple[str, str], ...]] = set()
    for _depth in range(max_transforms):
        next_frontier: list[tuple[dict[str, AttributeValue], tuple[TransformRule, ...]]] = []
        for hdrs, chain in frontier:
            for rule in profile.transforms:
                if rule in chain:
                    continue  # a transformer runs at most once per message
                if not rule.applies_to(hdrs):
                    continue
                rewritten = rule.apply(hdrs)
                key = tuple(sorted((k, repr(v)) for k, v in rewritten.items()))
                if key in seen:
                    continue
                seen.add(key)
                new_chain = chain + (rule,)
                if profile.interest.matches(rewritten):
                    return MatchResult(
                        Decision.ACCEPT_WITH_TRANSFORM,
                        transforms=new_chain,
                        effective_headers=rewritten,
                    )
                next_frontier.append((rewritten, new_chain))
        frontier = next_frontier
        if not frontier:
            break
    return MatchResult(Decision.REJECT)
