"""Attribute values for semantic profiles and selectors.

Profiles and message headers are flat attribute maps: name → value, where
a value is a string, number, boolean, or a list of those (capability
sets).  Comparisons against an *absent* attribute never match — the
paper's semantic interpretation rejects on any unsatisfied clause — which
we encode with the :data:`MISSING` sentinel.
"""

from __future__ import annotations

from typing import Any, Mapping, Union

__all__ = ["MISSING", "AttributeValue", "AttributeMap", "coerce_value", "values_equal"]


class _Missing:
    """Sentinel for an attribute absent from a profile/header map."""

    _instance = None

    def __new__(cls) -> "_Missing":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "<MISSING>"

    def __bool__(self) -> bool:
        return False


MISSING = _Missing()

AttributeValue = Union[str, int, float, bool, list, tuple]
AttributeMap = Mapping[str, AttributeValue]


def coerce_value(value: Any) -> AttributeValue:
    """Normalise a user-supplied attribute value.

    Tuples become lists; nested containers are rejected (profiles are
    flat); other types must already be scalars.
    """
    if isinstance(value, bool) or isinstance(value, (int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        out = []
        for item in value:
            if isinstance(item, (list, tuple, dict)):
                raise TypeError(f"nested containers not allowed in attributes: {value!r}")
            out.append(item)
        return out
    raise TypeError(f"unsupported attribute value type: {type(value).__name__}")


def values_equal(a: Any, b: Any) -> bool:
    """Equality with numeric cross-type tolerance but no str/number mixing.

    ``1 == 1.0`` holds; ``"1" == 1`` does not — silently matching across
    types would make selector bugs undetectable.
    """
    if a is MISSING or b is MISSING:
        return False
    a_num = isinstance(a, (int, float)) and not isinstance(a, bool)
    b_num = isinstance(b, (int, float)) and not isinstance(b, bool)
    if a_num and b_num:
        return float(a) == float(b)
    if type(a) is not type(b):
        # allow list/tuple equivalence
        if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
            return list(a) == list(b)
        return False
    return a == b
