"""Wireless (thin) client: joins the session through a base station.

"While wired clients directly join a collaboration session as peers,
wireless clients join through a base-station ... It maintains the
profiles of all the wireless clients connected to it and manages QoS on
their behalf" (paper Sec. 1).

The client talks *only* to its base station over a unicast semantic link
(serialized messages over the RTP-thin layer over a datagram socket).
Its radio is characterised by ``distance`` and ``tx_power``; both can
change over time (mobility, power control) and changes are reported to
the BS as control events.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..messaging.message import SemanticMessage
from ..messaging.rtp import RtpError, RtpPacketizer, RtpReassembler
from ..messaging.serialization import WireError, decode_message, encode_message
from ..network.simnet import Network
from ..network.udp import DatagramSocket
from .events import (
    Event,
    ImagePacketEvent,
    ImageShareAnnounce,
    PowerControlRequest,
    ProfileUpdateEvent,
    SketchShareEvent,
    TextShareEvent,
    EventError,
    decode_event,
)
from .profiles import ClientProfile

__all__ = ["UnicastSemanticLink", "WirelessClient"]


class UnicastSemanticLink:
    """Point-to-point semantic message channel (client ↔ BS leg)."""

    def __init__(
        self,
        network: Network,
        host: str,
        on_message: Callable[[SemanticMessage], None],
        port: Optional[int] = None,
    ) -> None:
        self.sock = DatagramSocket(network, host)
        if port is not None:
            self.sock.bind(port)
        else:
            self.sock.bind_ephemeral()
        self.sock.on_receive = self._on_datagram
        import zlib

        ssrc = zlib.crc32(f"{host}:{self.sock.port}".encode()) & 0xFFFFFFFF
        self._packetizer = RtpPacketizer(ssrc)
        self._on_message = on_message
        self._reassembler = RtpReassembler(
            self._on_payload, clock=lambda: network.scheduler.clock.now
        )
        self.sent = 0
        #: undecodable fragments/payloads dropped at the codec boundary
        self.decode_failures = 0

    @property
    def address(self) -> tuple[str, int]:
        return (self.sock.host, self.sock.port)  # type: ignore[return-value]

    def send(self, message: SemanticMessage, dest: tuple[str, int]) -> None:
        """Fragment and unicast one message."""
        for frag in self._packetizer.packetize(encode_message(message)):
            self.sock.sendto(frag.encode(), dest)
        self.sent += 1

    def _on_datagram(self, data: bytes, src: tuple[str, int]) -> None:
        try:
            self._reassembler.ingest(data)
        except RtpError:
            # malformed fragments must not kill the client's event loop
            self.decode_failures += 1

    def _on_payload(self, ssrc: int, payload: bytes) -> None:
        try:
            message = decode_message(payload)
        except WireError:
            self.decode_failures += 1
            return
        self._on_message(message)

    def close(self) -> None:
        self.sock.close()


class WirelessClient:
    """A thin client whose QoS the base station manages.

    Parameters
    ----------
    name:
        Client id == its network node name.
    network:
        The shared simulator (the radio is modelled as a node+link plus
        the distance/power channel state the BS evaluates).
    bs_address:
        The base station's wireless-side (host, port).
    distance / tx_power:
        Initial channel state in metres / power units.
    """

    def __init__(
        self,
        name: str,
        network: Network,
        bs_address: tuple[str, int],
        profile: Optional[ClientProfile] = None,
        distance: float = 100.0,
        tx_power: float = 1.0,
        battery: float = 100.0,
    ) -> None:
        self.name = name
        self.network = network
        self.scheduler = network.scheduler
        self.bs_address = bs_address
        self.profile = profile if profile is not None else ClientProfile(
            name, {"role": "participant", "client_id": name, "device": "wireless"}
        )
        self.distance = float(distance)
        self.tx_power = float(tx_power)
        self.battery = float(battery)
        self.link = UnicastSemanticLink(network, name, self._on_message)
        # what actually reached this client, by modality
        self.received_events: list[tuple[float, Event]] = []
        self.texts: list[TextShareEvent] = []
        self.sketches: list[SketchShareEvent] = []
        self.image_packets: list[ImagePacketEvent] = []
        self.announces: list[ImageShareAnnounce] = []
        self.power_requests: list[PowerControlRequest] = []
        self.comply_with_power_control = True

    # ------------------------------------------------------------------
    # control plane
    # ------------------------------------------------------------------
    def _send_to_bs(self, event: Event) -> None:
        msg = SemanticMessage.create(
            sender=self.name,
            selector="role == 'base-station'",
            headers=event.headers(),
            body=event.to_body(),
            kind=event.kind,
        )
        self.link.send(msg, self.bs_address)

    def report_channel_state(self) -> None:
        """Tell the BS our current distance/power (control event)."""
        self._send_to_bs(
            ProfileUpdateEvent(
                client_id=self.name,
                changes=(
                    ("distance", f"{self.distance:.6f}"),
                    ("tx_power", f"{self.tx_power:.6f}"),
                    ("battery", f"{self.battery:.2f}"),
                ),
            )
        )

    def move_to(self, distance: float) -> None:
        """Mobility: change distance from the BS and report it."""
        if distance <= 0:
            raise ValueError("distance must be positive")
        self.distance = float(distance)
        self.report_channel_state()

    def set_power(self, tx_power: float) -> None:
        """Change transmit power (device capability permitting)."""
        if tx_power <= 0:
            raise ValueError("tx_power must be positive")
        self.tx_power = float(tx_power)
        self.report_channel_state()

    def set_modality_preference(self, modality: str) -> None:
        """Tell the BS how to render degraded content for us.

        ``"speech"`` makes the BS transform text renditions into
        synthetic speech centrally (paper Sec. 5.2); ``"text"`` reverts.
        """
        self.profile.update(modality=modality)
        self._send_to_bs(
            ProfileUpdateEvent(
                client_id=self.name, changes=(("modality", modality),)
            )
        )

    # ------------------------------------------------------------------
    # data plane
    # ------------------------------------------------------------------
    def send_event(self, event: Event) -> None:
        """Contribute an event to the session (via the BS, unicast)."""
        # energy model: sending costs battery proportional to tx power
        self.battery = max(0.0, self.battery - 0.05 * self.tx_power)
        self._send_to_bs(event)

    def _on_message(self, message: SemanticMessage) -> None:
        now = self.scheduler.clock.now
        try:
            event = decode_event(message.kind, message.body)
        except EventError:
            self.decode_failures += 1
            return
        self.received_events.append((now, event))
        if isinstance(event, TextShareEvent):
            self.texts.append(event)
        elif isinstance(event, SketchShareEvent):
            self.sketches.append(event)
        elif isinstance(event, ImagePacketEvent):
            self.image_packets.append(event)
        elif isinstance(event, ImageShareAnnounce):
            self.announces.append(event)
        elif isinstance(event, PowerControlRequest) and event.client_id == self.name:
            self.power_requests.append(event)
            if self.comply_with_power_control:
                self.tx_power = float(event.new_power)
                self.report_channel_state()

    # ------------------------------------------------------------------
    def modality_counts(self) -> dict[str, int]:
        """How much of each modality tier reached this client."""
        return {
            "text": len(self.texts),
            "sketch": len(self.sketches),
            "image_packets": len(self.image_packets),
            "announces": len(self.announces),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"WirelessClient({self.name!r}, d={self.distance:.0f}m,"
            f" P={self.tx_power:.2f}, batt={self.battery:.0f}%)"
        )
