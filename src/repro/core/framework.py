"""Facade: build a complete collaboration deployment in a few calls.

Wires together the substrates the paper's testbed comprised — "several
Windows NT workstations on the local network, with one terminal
responsible for the base station functionalities, another terminal as a
wired client, and two others as wireless clients" — plus the SNMP agents,
the multicast group, and the session descriptor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional

if TYPE_CHECKING:
    from ..snmp.traps import ThresholdWatch

from ..hosts.host import SimulatedHost
from ..hosts.snmp_binding import attach_extension_agent
from ..hosts.workload import Workload
from ..network.clock import Scheduler
from ..network.multicast import MulticastGroup
from ..network.simnet import Link, Network
from ..snmp.agent import SnmpAgent
from ..wireless.channel import NoiseModel, PathLossModel
from .basestation import BaseStation
from .client import WiredClient
from .contracts import QoSContract
from .policies import PolicyDatabase, default_policy_database
from .profiles import ClientProfile
from .session import SessionDescriptor
from .wireless_client import WirelessClient

__all__ = ["CollaborationFramework"]

#: Default LAN characteristics (100 Mb/s switched Ethernet of the era).
LAN_BANDWIDTH = 12_500_000.0  # bytes/s
LAN_LATENCY = 0.0005


class CollaborationFramework:
    """One collaboration deployment: network + session + peers.

    Example
    -------
    >>> fw = CollaborationFramework("demo", objective="smoke test")
    >>> a = fw.add_wired_client("alice")
    >>> b = fw.add_wired_client("bob")
    >>> a.join(); b.join()
    >>> a.send_chat("hello")
    >>> _ = fw.run_for(1.0)
    >>> bob_lines = b.chat.transcript
    >>> bob_lines[-1]
    'alice: hello'
    """

    def __init__(
        self,
        session_name: str,
        objective: str = "",
        result_space: tuple[str, ...] = ("chat", "whiteboard", "image"),
        seed: int = 0,
        group_address: str = "239.40.40.1",
        group_port: int = 5004,
    ) -> None:
        self.scheduler = Scheduler()
        self.network = Network(self.scheduler, seed=seed)
        self.session = SessionDescriptor(session_name, objective, result_space)
        self.switch = self.network.add_node("lan-switch")
        self.group = MulticastGroup(self.network, group_address, group_port)
        self.wired_clients: dict[str, WiredClient] = {}
        self.wireless_clients: dict[str, WirelessClient] = {}
        self.base_stations: dict[str, BaseStation] = {}
        self.hosts: dict[str, SimulatedHost] = {}
        self.agents: dict[str, SnmpAgent] = {}

    # ------------------------------------------------------------------
    # topology helpers
    # ------------------------------------------------------------------
    def _add_lan_node(
        self,
        name: str,
        bandwidth: float = LAN_BANDWIDTH,
        latency: float = LAN_LATENCY,
        jitter: float = 0.0,
        loss: float = 0.0,
    ) -> Link:
        self.network.add_node(name)
        return self.network.add_link(
            name, "lan-switch", bandwidth=bandwidth, latency=latency, jitter=jitter, loss=loss
        )

    # ------------------------------------------------------------------
    # peers
    # ------------------------------------------------------------------
    def add_wired_client(
        self,
        name: str,
        profile: Optional[ClientProfile] = None,
        policies: Optional[PolicyDatabase] = None,
        contract: Optional[QoSContract] = None,
        cpu_workload: Optional[Workload] = None,
        fault_workload: Optional[Workload] = None,
        link_kwargs: Optional[dict] = None,
        **client_kwargs: Any,
    ) -> WiredClient:
        """Create a workstation: node + link + host + agent + client."""
        link = self._add_lan_node(name, **(link_kwargs or {}))
        host = SimulatedHost(
            name, self.scheduler, cpu_workload=cpu_workload, fault_workload=fault_workload
        )
        self.hosts[name] = host
        self.agents[name] = attach_extension_agent(self.network, host, access_link=link)
        client = WiredClient(
            name,
            self.network,
            self.group,
            self.session,
            profile=profile,
            policies=policies,
            contract=contract,
            **client_kwargs,
        )
        self.wired_clients[name] = client
        return client

    def add_base_station(
        self,
        name: str = "bs",
        pathloss: Optional[PathLossModel] = None,
        noise: Optional[NoiseModel] = None,
        policies: Optional[PolicyDatabase] = None,
        **bs_kwargs: Any,
    ) -> BaseStation:
        """Create a base station peer (its own workstation on the LAN)."""
        link = self._add_lan_node(name)
        host = SimulatedHost(name, self.scheduler)
        self.hosts[name] = host
        self.agents[name] = attach_extension_agent(self.network, host, access_link=link)
        bs = BaseStation(
            name,
            self.network,
            self.group,
            self.session,
            pathloss=pathloss,
            noise=noise,
            policies=policies,
            **bs_kwargs,
        )
        self.base_stations[name] = bs
        return bs

    def add_wireless_client(
        self,
        name: str,
        base_station: BaseStation,
        distance: float = 100.0,
        tx_power: float = 1.0,
        profile: Optional[ClientProfile] = None,
        radio_bandwidth: float = 1_375_000.0,  # ~11 Mb/s 802.11b
        radio_latency: float = 0.002,
        radio_loss: float = 0.0,
    ) -> WirelessClient:
        """Create a wireless client: radio node + link to its BS."""
        self.network.add_node(name)
        self.network.add_link(
            name,
            base_station.name,
            bandwidth=radio_bandwidth,
            latency=radio_latency,
            loss=radio_loss,
        )
        client = WirelessClient(
            name,
            self.network,
            base_station.wireless_address,
            profile=profile,
            distance=distance,
            tx_power=tx_power,
        )
        self.wireless_clients[name] = client
        base_station.attach(
            name, client.link.address, distance=distance, tx_power=tx_power
        )
        return client

    def add_threshold_trap(
        self,
        client: WiredClient,
        parameter: str,
        threshold: float,
        direction: str = "above",
        interval: float = 0.5,
    ) -> ThresholdWatch:
        """Event-driven adaptation: trap the client when its host's
        ``parameter`` crosses ``threshold``; the client re-runs the
        inference engine immediately instead of waiting for the next poll.

        ``parameter`` ∈ {"cpu_load", "page_faults", "free_memory_kib"}.
        Returns the armed :class:`~repro.snmp.traps.ThresholdWatch`.
        """
        from ..snmp.oids import TASSL
        from ..snmp.traps import ThresholdWatch, TrapSender

        host = self.hosts[client.snmp_host]
        param_map = {
            "cpu_load": (lambda: host.cpu_load, TASSL.hostCpuLoad, TASSL.cpuHighTrap),
            "page_faults": (
                lambda: host.page_faults,
                TASSL.hostPageFaults,
                TASSL.pageFaultHighTrap,
            ),
            "free_memory_kib": (
                lambda: host.free_memory_kib,
                TASSL.hostFreeMemory,
                TASSL.memoryLowTrap,
            ),
        }
        if parameter not in param_map:
            raise ValueError(f"unknown trap parameter {parameter!r}")
        sample, oid, trap_oid = param_map[parameter]
        client.enable_trap_listener()
        sender = TrapSender(self.network, host.name)
        watch = ThresholdWatch(
            self.scheduler,
            sender,
            dest=(client.name, 162),
            oid=oid,
            sample=sample,
            threshold=threshold,
            trap_oid=trap_oid,
            direction=direction,
            interval=interval,
        )
        watch.start()
        return watch

    # ------------------------------------------------------------------
    def start_hosts(self) -> None:
        """Begin periodic dynamics on every simulated host."""
        for host in self.hosts.values():
            host.start()

    def run_for(self, duration: float) -> int:
        """Advance virtual time; returns events dispatched."""
        return self.scheduler.run_for(duration)

    def run(self) -> int:
        """Drain the event queue completely."""
        return self.scheduler.run()

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self.scheduler.clock.now
