"""Concurrency control for shared objects.

"Concurrency Control is the process of arbitration and consistency
maintenance when multiple clients concurrently manipulate the same set of
shared objects ... If two users select information for sharing at the
same time, concurrency control comes into play and ensures that no
information is lost" (paper Sec. 2).

Two mechanisms, composable:

* :class:`Arbiter` — deterministic last-writer-wins merge on top of the
  state repository, with a *conflict history* so losing updates are kept,
  not lost;
* :class:`LockManager` — cooperative object locks (the whiteboard uses
  these for stroke-in-progress exclusivity), granted in request order
  with deterministic tie-breaking and revocation on leave.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Optional

from .state import StateEntry, StateRepository

__all__ = ["Conflict", "Arbiter", "LockManager", "LockError"]


@dataclass(frozen=True)
class Conflict:
    """A concurrent-update collision record (nothing is lost)."""

    key: str
    winner: StateEntry
    loser: StateEntry


class Arbiter:
    """LWW arbitration with bounded conflict retention.

    The conflict history is a :class:`~collections.deque` capped at
    ``max_conflicts`` (generous by default) so a chatty session cannot
    grow it without bound; "nothing is lost" is preserved accountably —
    when the cap evicts the oldest record, :attr:`conflicts_dropped`
    counts it, so ``len(conflicts) + conflicts_dropped`` is always the
    true collision total.

    >>> repo = StateRepository(); arb = Arbiter(repo)
    >>> a = StateEntry("obj", "from-a", 1, 1.0, "alice")
    >>> b = StateEntry("obj", "from-b", 1, 1.0, "bob")
    >>> arb.submit(a); arb.submit(b)
    True
    True
    >>> repo.get("obj").value   # bob wins the author tie-break
    'from-b'
    >>> arb.conflicts[0].loser.value
    'from-a'
    """

    def __init__(self, repository: StateRepository, max_conflicts: int = 4096) -> None:
        self.repository = repository
        self.max_conflicts = max_conflicts
        self.conflicts: deque[Conflict] = deque(maxlen=max_conflicts)
        self.conflicts_dropped = 0  #: records evicted by the cap

    def submit(self, entry: StateEntry) -> bool:
        """Offer an update; returns True if it is now current.

        Either way the displaced/losing entry is archived in
        :attr:`conflicts` when a real collision (same version) occurred.
        """
        current = self.repository.get(entry.key)
        applied = self.repository.apply_remote(entry)
        if current is not None and current.version == entry.version:
            winner = self.repository.get(entry.key)
            loser = entry if not applied else current
            assert winner is not None
            if len(self.conflicts) == self.max_conflicts:
                self.conflicts_dropped += 1
            self.conflicts.append(Conflict(entry.key, winner, loser))
        return applied

    @property
    def total_conflicts(self) -> int:
        """Every collision ever recorded, including evicted ones."""
        return len(self.conflicts) + self.conflicts_dropped

    def conflicts_for(self, key: str) -> list[Conflict]:
        """All recorded collisions on one object."""
        return [c for c in self.conflicts if c.key == key]


class LockError(RuntimeError):
    """Raised on invalid lock operations (double release etc.)."""


class LockManager:
    """Cooperative per-object locks with FIFO waiting.

    Lock identity is the object key; owners are client ids.  ``acquire``
    returns True immediately when free, otherwise queues the requester;
    ``release`` hands the lock to the next waiter and returns its id so
    the session layer can notify it.
    """

    def __init__(self) -> None:
        self._owners: dict[str, str] = {}
        self._waiters: dict[str, deque[str]] = {}

    def acquire(self, key: str, client_id: str) -> bool:
        """Try to take the lock; False means queued behind the owner."""
        owner = self._owners.get(key)
        if owner is None:
            self._owners[key] = client_id
            return True
        if owner == client_id:
            return True  # re-entrant
        queue = self._waiters.setdefault(key, deque())
        if client_id not in queue:
            queue.append(client_id)
        return False

    def release(self, key: str, client_id: str) -> Optional[str]:
        """Release; returns the next owner's id, if any."""
        if self._owners.get(key) != client_id:
            raise LockError(f"{client_id} does not hold lock {key!r}")
        queue = self._waiters.get(key)
        if queue:
            nxt = queue.popleft()
            self._owners[key] = nxt
            if not queue:
                del self._waiters[key]
            return nxt
        del self._owners[key]
        return None

    def owner(self, key: str) -> Optional[str]:
        return self._owners.get(key)

    def drop_client(self, client_id: str) -> list[tuple[str, Optional[str]]]:
        """Client left: release its locks, purge its queue entries.

        Returns ``(key, new_owner)`` for every lock that changed hands.
        """
        changed: list[tuple[str, Optional[str]]] = []
        for key, queue in list(self._waiters.items()):
            try:
                queue.remove(client_id)
            except ValueError:
                pass
            if not queue:
                del self._waiters[key]
        for key, owner in list(self._owners.items()):
            if owner == client_id:
                nxt = self.release(key, client_id)
                changed.append((key, nxt))
        return changed
