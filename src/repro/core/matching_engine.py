"""Indexed semantic matching: compiled-selector cache + predicate index.

The paper's receiver-side semantics interpret every published selector
against every profile.  A naive bus therefore pays
``O(subscribers × selector-size)`` per publish — re-lexing the selector
string and re-walking every profile.  S-ToPSS-style content-based
pub/sub practice shows both costs are avoidable:

* :class:`SelectorCache` — an LRU-bounded, module-level cache so each
  distinct selector *string* is lexed/parsed exactly once per process;
* :class:`ProfileIndex` — inverted indexes over subscriber profile
  attributes (equality hash, sorted lists for ordered comparisons, an
  existence set, a list-membership index);
* :class:`MatchingEngine` — decomposes a conjunctive selector into
  (attribute, op, value) predicates (:func:`repro.core.selectors.decompose`)
  and runs a *counting* shortlist: a subscriber is a candidate iff it
  satisfies every indexed predicate.  Full :func:`~repro.core.matching.interpret`
  (including transformation-mediated accept) then runs only on the
  shortlist.  Selectors the index cannot serve (disjunctions, negations)
  fall back to a linear scan, so decisions are always identical to the
  unindexed path.

Index maintenance is incremental: subscribers are (re)indexed on attach,
removed on detach, and re-indexed when their profile notifies a change
(:meth:`repro.core.profiles.ClientProfile.watch`).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Hashable, Optional

from .attributes import AttributeValue
from .profiles import ClientProfile
from .selectors import Predicate, Selector

__all__ = [
    "SelectorCache",
    "compile_selector",
    "selector_cache_info",
    "ProfileIndex",
    "MatchingEngine",
    "Shortlist",
]


# ----------------------------------------------------------------------
# compiled-selector cache
# ----------------------------------------------------------------------
class SelectorCache:
    """LRU-bounded cache of compiled :class:`Selector` objects.

    Selectors are immutable once built, so sharing one instance across
    every message that carries the same text is safe — and it also
    shares the memoised conjunctive decomposition.
    """

    def __init__(self, maxsize: int = 1024) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        self._entries: OrderedDict[str, Selector] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, text: str) -> Selector:
        """Compiled selector for ``text`` (parse on first sight only)."""
        sel = self._entries.get(text)
        if sel is not None:
            self.hits += 1
            self._entries.move_to_end(text)
            return sel
        self.misses += 1
        sel = Selector(text)  # may raise SelectorError; nothing cached then
        self._entries[text] = sel
        if len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.evictions += 1
        return sel

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, text: str) -> bool:
        return text in self._entries

    def clear(self) -> None:
        self._entries.clear()


#: process-wide cache used by :func:`compile_selector`
_GLOBAL_CACHE = SelectorCache()


def compile_selector(text: str | Selector) -> Selector:
    """Compile ``text`` through the process-wide LRU cache.

    Passing an already-compiled :class:`Selector` returns it unchanged,
    so callers can accept either form.
    """
    if isinstance(text, Selector):
        return text
    return _GLOBAL_CACHE.get(text)


def selector_cache_info() -> dict[str, int]:
    """Counters of the process-wide selector cache (observability)."""
    return {
        "size": len(_GLOBAL_CACHE),
        "maxsize": _GLOBAL_CACHE.maxsize,
        "hits": _GLOBAL_CACHE.hits,
        "misses": _GLOBAL_CACHE.misses,
        "evictions": _GLOBAL_CACHE.evictions,
    }


# ----------------------------------------------------------------------
# predicate index over profiles
# ----------------------------------------------------------------------
def _canon(value: Any) -> Optional[tuple[str, Any]]:
    """Hashable canonical form matching :func:`values_equal` semantics.

    Numbers collapse cross-type (``1 == 1.0``) but booleans stay a
    distinct domain (``True != 1``); anything unhashable returns ``None``
    and is simply not equality-indexed.
    """
    if isinstance(value, bool):
        return ("bool", value)
    if isinstance(value, (int, float)):
        if value != value:  # NaN equals nothing under values_equal
            return None
        return ("num", float(value))
    if isinstance(value, str):
        return ("str", value)
    return None


@dataclass
class _SortedColumn:
    """One attribute's ordered values: parallel sorted arrays."""

    values: list[Any] = field(default_factory=list)
    keys: list[list[Hashable]] = field(default_factory=list)

    def add(self, value: Any, key: Hashable) -> None:
        i = bisect_left(self.values, value)
        if i < len(self.values) and self.values[i] == value:
            self.keys[i].append(key)
        else:
            self.values.insert(i, value)
            self.keys.insert(i, [key])

    def discard(self, value: Any, key: Hashable) -> None:
        i = bisect_left(self.values, value)
        if i < len(self.values) and self.values[i] == value:
            bucket = self.keys[i]
            if key in bucket:
                bucket.remove(key)
            if not bucket:
                del self.values[i]
                del self.keys[i]

    def range(self, op: str, bound: Any) -> list[Hashable]:
        """Keys whose value satisfies ``value <op-inverse> bound``."""
        if op == "<":
            hi = bisect_left(self.values, bound)
            buckets = self.keys[:hi]
        elif op == "<=":
            hi = bisect_right(self.values, bound)
            buckets = self.keys[:hi]
        elif op == ">":
            lo = bisect_right(self.values, bound)
            buckets = self.keys[lo:]
        elif op == ">=":
            lo = bisect_left(self.values, bound)
            buckets = self.keys[lo:]
        else:  # pragma: no cover - guarded by callers
            raise ValueError(f"not an ordered op: {op!r}")
        out: list[Hashable] = []
        for bucket in buckets:
            out.extend(bucket)
        return out


class ProfileIndex:
    """Inverted indexes over a set of keyed profile snapshots.

    Keys are opaque hashables (the bus uses its ``Subscription``
    objects).  The index answers, for one :class:`Predicate`, *which
    keys' profiles satisfy it* — exactly, per the selector language's
    typed comparison semantics.
    """

    def __init__(self) -> None:
        # attr -> canonical value -> set of keys
        self._eq: dict[str, dict[tuple[str, Any], set[Hashable]]] = {}
        # attr -> canonical element -> set of keys (list-valued attrs)
        self._contains: dict[str, dict[tuple[str, Any], set[Hashable]]] = {}
        # attr -> set of keys that have the attribute at all
        self._exists: dict[str, set[Hashable]] = {}
        # attr -> sorted numeric / string columns
        self._num: dict[str, _SortedColumn] = {}
        self._str: dict[str, _SortedColumn] = {}
        # key -> snapshot used at indexing time (for exact removal)
        self._snapshots: dict[Hashable, dict[str, AttributeValue]] = {}

    def __len__(self) -> int:
        return len(self._snapshots)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._snapshots

    @property
    def keys(self) -> set[Hashable]:
        return set(self._snapshots)

    # -- maintenance ---------------------------------------------------
    def add(self, key: Hashable, snapshot: dict[str, AttributeValue]) -> None:
        """Index ``key`` under ``snapshot``; re-indexes if already present."""
        if key in self._snapshots:
            self.remove(key)
        self._snapshots[key] = dict(snapshot)
        for attr, value in snapshot.items():
            self._exists.setdefault(attr, set()).add(key)
            if isinstance(value, (list, tuple)):
                col = self._contains.setdefault(attr, {})
                for item in value:
                    c = _canon(item)
                    if c is not None:
                        col.setdefault(c, set()).add(key)
                continue
            c = _canon(value)
            if c is not None:
                self._eq.setdefault(attr, {}).setdefault(c, set()).add(key)
            if isinstance(value, bool):
                continue  # bools never satisfy ordered comparisons
            if isinstance(value, (int, float)):
                if value == value:  # NaN never satisfies ordered comparisons
                    self._num.setdefault(attr, _SortedColumn()).add(value, key)
            elif isinstance(value, str):
                self._str.setdefault(attr, _SortedColumn()).add(value, key)

    def remove(self, key: Hashable) -> None:
        """Drop ``key`` from every index.  Idempotent."""
        snapshot = self._snapshots.pop(key, None)
        if snapshot is None:
            return
        for attr, value in snapshot.items():
            keys = self._exists.get(attr)
            if keys is not None:
                keys.discard(key)
                if not keys:
                    del self._exists[attr]
            if isinstance(value, (list, tuple)):
                col = self._contains.get(attr)
                if col is not None:
                    for item in value:
                        c = _canon(item)
                        if c is not None and c in col:
                            col[c].discard(key)
                            if not col[c]:
                                del col[c]
                    if not col:
                        del self._contains[attr]
                continue
            c = _canon(value)
            if c is not None:
                eq = self._eq.get(attr)
                if eq is not None and c in eq:
                    eq[c].discard(key)
                    if not eq[c]:
                        del eq[c]
                    if not eq:
                        del self._eq[attr]
            if isinstance(value, bool):
                continue
            if isinstance(value, (int, float)):
                col2 = self._num.get(attr)
                if col2 is not None and value == value:
                    col2.discard(value, key)
            elif isinstance(value, str):
                col2 = self._str.get(attr)
                if col2 is not None:
                    col2.discard(value, key)

    def attributes(self) -> set[str]:
        """Attribute names present on at least one indexed snapshot."""
        return {attr for attr, keys in self._exists.items() if keys}

    # -- query ---------------------------------------------------------
    def satisfying(self, pred: Predicate) -> set[Hashable]:
        """All keys whose indexed snapshot satisfies ``pred``."""
        if pred.op == "never":
            return set()
        if pred.op == "exists":
            return set(self._exists.get(pred.attribute, ()))
        if pred.op == "==":
            c = _canon(pred.value)
            if c is None:
                return set()
            return set(self._eq.get(pred.attribute, {}).get(c, ()))
        if pred.op == "in":
            eq = self._eq.get(pred.attribute, {})
            out: set[Hashable] = set()
            for v in pred.value:
                c = _canon(v)
                if c is not None:
                    out |= eq.get(c, set())
            return out
        if pred.op == "contains":
            c = _canon(pred.value)
            if c is None:
                return set()
            return set(self._contains.get(pred.attribute, {}).get(c, ()))
        # ordered: numeric literals probe the numeric column, string
        # literals the string column (the language never mixes them)
        if isinstance(pred.value, (int, float)) and not isinstance(pred.value, bool):
            col = self._num.get(pred.attribute)
        else:
            col = self._str.get(pred.attribute)
        bound = pred.value
        if col is None:
            return set()
        return set(col.range(pred.op, bound))


# ----------------------------------------------------------------------
# the engine
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Shortlist:
    """Outcome of the candidate-selection stage for one publish.

    ``keys`` is ``None`` when the selector was not indexable and the
    caller must consider every subscriber (linear fallback).
    """

    keys: Optional[set[Hashable]]
    via_index: bool

    @property
    def linear(self) -> bool:
        return self.keys is None


class MatchingEngine:
    """Maintains the predicate index over attached subscribers and
    shortlists candidates for each published selector.

    The engine never *decides* delivery — it only narrows which profiles
    the full interpreter must look at.  That keeps its answers allowed to
    be (sound) over-approximations and the bus's decisions bit-identical
    to a linear scan.
    """

    def __init__(self) -> None:
        self._index = ProfileIndex()
        self._profiles: dict[Hashable, ClientProfile] = {}
        self._unwatch: dict[Hashable, Any] = {}
        self._dirty: set[Hashable] = set()
        # observability
        self.indexed_publishes = 0
        self.linear_publishes = 0
        self.reindexes = 0

    def __len__(self) -> int:
        return len(self._profiles)

    # -- membership ----------------------------------------------------
    def add(self, key: Hashable, profile: ClientProfile) -> None:
        """Start indexing ``profile`` under ``key`` (re-adds re-index)."""
        if key in self._profiles:
            self.remove(key)
        self._profiles[key] = profile
        self._index.add(key, profile.snapshot())
        self._unwatch[key] = profile.watch(lambda _p, k=key: self._dirty.add(k))

    def remove(self, key: Hashable) -> None:
        """Stop indexing ``key``.  Idempotent."""
        profile = self._profiles.pop(key, None)
        if profile is None:
            return
        unwatch = self._unwatch.pop(key, None)
        if unwatch is not None:
            unwatch()
        self._dirty.discard(key)
        self._index.remove(key)

    def _flush_dirty(self) -> None:
        while self._dirty:
            key = self._dirty.pop()
            profile = self._profiles.get(key)
            if profile is not None:
                self._index.add(key, profile.snapshot())
                self.reindexes += 1

    def flush(self) -> None:
        """Re-index every profile that notified a change since the last
        query.  Shortlists flush implicitly; callers that consult
        :meth:`attribute_universe` *without* shortlisting (the sharded
        broker's skip test) call this first."""
        self._flush_dirty()

    def attribute_universe(self) -> set[str]:
        """Attribute names carried by at least one indexed profile.

        A selector whose :func:`~repro.core.selectors.required_attributes`
        are not all present here cannot match any profile this engine
        indexes — sound only against the flushed index (see
        :meth:`flush`).
        """
        return self._index.attributes()

    # -- shortlisting --------------------------------------------------
    def shortlist(self, selector: Selector | str) -> Shortlist:
        """Candidate keys for ``selector``.

        Uses the counting algorithm: every indexed predicate enumerates
        the keys satisfying it; a key is a candidate iff its count equals
        the number of predicates.  Non-indexable selectors return a
        linear-fallback shortlist.
        """
        sel = compile_selector(selector)
        self._flush_dirty()
        plan = sel.conjunctive_plan()
        if plan is None:
            self.linear_publishes += 1
            return Shortlist(None, False)
        preds = [p for p in plan if p.op != "never"]
        if len(preds) != len(plan):  # a constant-false conjunct
            self.indexed_publishes += 1
            return Shortlist(set(), True)
        if not preds:  # broadcast: no indexable constraint
            self.linear_publishes += 1
            return Shortlist(None, False)
        counts: dict[Hashable, int] = {}
        for pred in preds:
            keys = self._index.satisfying(pred)
            if not keys:
                self.indexed_publishes += 1
                return Shortlist(set(), True)
            for key in keys:
                counts[key] = counts.get(key, 0) + 1
        need = len(preds)
        self.indexed_publishes += 1
        return Shortlist({k for k, c in counts.items() if c == need}, True)

    def shortlist_many(self, selectors: "list[Selector | str]") -> list[Shortlist]:
        """Shortlists for a batch of selectors, amortizing shared work.

        Dirty profiles are flushed once for the whole batch, and each
        *distinct* selector is shortlisted exactly once — the batch
        publish path hands every message's selector in and repeated
        selectors (the common case in a message burst) cost one index
        probe, not one per message.
        """
        self._flush_dirty()
        memo: dict[str, Shortlist] = {}
        out: list[Shortlist] = []
        for selector in selectors:
            sel = compile_selector(selector)
            got = memo.get(sel.text)
            if got is None:
                got = memo[sel.text] = self.shortlist(sel)
            out.append(got)
        return out
