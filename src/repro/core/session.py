"""Collaboration session: group formation, membership, archival.

"Clients with the similar objectives form a collaborating group ... Based
on the final objective and required results a member joins the
appropriate collaborating session" (paper Sec. 2).  The session object
carries the objective and result space (what the group can share), an
observer-only membership list learned from join/leave events (routing
never uses it), and an archive so "sessions can be archived to provide
late clients with session history" (Sec. 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..messaging.message import SemanticMessage

__all__ = ["SessionDescriptor", "SessionArchive", "Membership"]


@dataclass(frozen=True)
class SessionDescriptor:
    """Identity and purpose of one collaboration session.

    ``objective`` precision matters: "a more precise definition of
    collaboration objective results in higher satisfaction levels".
    ``result_space`` enumerates what sharing the session supports
    (``"chat"``, ``"whiteboard"``, ``"image"``, ...).
    """

    name: str
    objective: str
    result_space: tuple[str, ...] = ("chat", "whiteboard", "image")

    def selector_text(self, extra: str = "") -> str:
        """The audience expression targeting this session's members."""
        base = f"session == '{self.name}'"
        return f"{base} and ({extra})" if extra else base

    def supports(self, capability: str) -> bool:
        """Whether the session's result space covers a sharing kind."""
        return capability in self.result_space


class Membership:
    """Observer-side roster built from join/leave events.

    Purely diagnostic — the semantic substrate needs no roster — but the
    UI (and the experiments) want to display who is around.
    """

    def __init__(self) -> None:
        self._members: dict[str, float] = {}  # client_id -> join time
        self.joins = 0
        self.leaves = 0

    def join(self, client_id: str, time: float) -> None:
        if client_id not in self._members:
            self._members[client_id] = time
            self.joins += 1

    def leave(self, client_id: str) -> None:
        if client_id in self._members:
            del self._members[client_id]
            self.leaves += 1

    @property
    def members(self) -> list[str]:
        return sorted(self._members)

    def __contains__(self, client_id: str) -> bool:
        return client_id in self._members

    def __len__(self) -> int:
        return len(self._members)


class SessionArchive:
    """Time-ordered record of session traffic for late joiners.

    Bounded: keeps the newest ``capacity`` messages (images dominate
    volume; a real deployment would spool to disk).
    """

    def __init__(self, capacity: int = 10_000) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._entries: list[tuple[float, SemanticMessage]] = []
        self.archived = 0

    def record(self, time: float, message: SemanticMessage) -> None:
        """Append one message; evicts the oldest beyond capacity."""
        self._entries.append((time, message))
        self.archived += 1
        if len(self._entries) > self.capacity:
            self._entries = self._entries[-self.capacity :]

    def replay(self, since: float = 0.0, kinds: Optional[set[str]] = None) -> list[tuple[float, SemanticMessage]]:
        """Messages after ``since``, optionally filtered by kind."""
        return [
            (t, m)
            for t, m in self._entries
            if t >= since and (kinds is None or m.kind in kinds)
        ]

    def __len__(self) -> int:
        return len(self._entries)
