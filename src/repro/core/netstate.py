"""Network-state interface: the framework's aggregated view of the system.

"The network state interface is a generic component that encapsulates
the state of the system.  This includes CPU load, available memory,
network bandwidth, latency, and jitter.  The current implementation ...
uses [SNMP] ... to directly query the SNMP MIB" (paper Sec. 5.5).

:class:`NetworkStateInterface` owns one SNMP manager and a set of
*probes* — (host, OID, output-parameter, transform) bindings — and turns
a poll into the flat ``observed`` dict the inference engine consumes.
Standard probes cover the host extension agent (CPU, page faults, free
memory, access-link metrics) and the LAN switch's ifTable (link speed →
available bandwidth).

Failure semantics: a probe whose agent times out contributes nothing
this cycle (the engine then runs on the remaining observations), and the
failure is counted — adaptation degrades gracefully when the management
plane itself is degraded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..network.clock import Scheduler
from ..network.simnet import Network
from ..network.udp import DatagramSocket
from ..snmp.ber import Counter32, Gauge32, Integer, TimeTicks
from ..snmp.errors import SnmpError
from ..snmp.manager import SnmpManager
from ..snmp.oids import MIB2, OID, TASSL

__all__ = ["Probe", "NetworkStateInterface"]

#: Converts a raw BER value into a float for the observed dict.
Transform = Callable[[object], float]


def _numeric(value: object) -> float:
    """Default transform: unwrap any numeric BER type."""
    if isinstance(value, (Gauge32, Counter32, TimeTicks, Integer)):
        return float(value.value)
    raise SnmpError(f"non-numeric SNMP value: {value!r}")


@dataclass(frozen=True)
class Probe:
    """One monitored MIB variable.

    ``parameter`` is the key it lands under in the observed dict;
    ``transform`` converts the BER value (e.g. µs → ms).
    """

    host: str
    oid: OID
    parameter: str
    transform: Transform = _numeric


class NetworkStateInterface:
    """Aggregated SNMP polling for one client's adaptation loop.

    Example
    -------
    ``standard_host_probes`` + ``switch_bandwidth_probe`` cover the
    paper's parameter list; :meth:`poll` returns e.g.::

        {"cpu_load": 42.0, "page_faults": 31.0, "free_memory_kib": ...,
         "link_latency_ms": 0.5, "link_loss_ppm": 0.0,
         "bandwidth_bps": 100000000.0}
    """

    def __init__(
        self,
        network: Network,
        host: str,
        community: str = "public",
        timeout: float = 0.5,
        retries: int = 1,
    ) -> None:
        self.network = network
        self.manager = SnmpManager(
            DatagramSocket(network, host),
            network.scheduler,
            community=community,
            timeout=timeout,
            retries=retries,
        )
        self.probes: list[Probe] = []
        self.poll_count = 0
        self.probe_failures = 0
        self.last_observed: dict[str, float] = {}

    # ------------------------------------------------------------------
    # probe registration
    # ------------------------------------------------------------------
    def add_probe(self, probe: Probe) -> None:
        """Register one monitored variable."""
        self.probes.append(probe)

    def add_standard_host_probes(self, host: str) -> None:
        """The extension agent's full parameter set for ``host``."""
        us_to_ms: Transform = lambda v: _numeric(v) / 1000.0
        # the TASSL bandwidth gauge is in bytes/second on the wire; the
        # observation key's `_bps` suffix promises bits/second
        bytes_to_bits: Transform = lambda v: _numeric(v) * 8.0
        for oid, parameter, transform in (
            (TASSL.hostCpuLoad, "cpu_load", _numeric),
            (TASSL.hostPageFaults, "page_faults", _numeric),
            (TASSL.hostFreeMemory, "free_memory_kib", _numeric),
            (TASSL.linkBandwidth, "bandwidth_bps", bytes_to_bits),
            (TASSL.linkLatencyUs, "link_latency_ms", us_to_ms),
            (TASSL.linkJitterUs, "link_jitter_ms", us_to_ms),
            (TASSL.linkLossPpm, "link_loss_ppm", _numeric),
        ):
            self.add_probe(Probe(host, oid, parameter, transform))

    def add_switch_bandwidth_probe(
        self, element: str, if_index: int, parameter: str = "bandwidth_bps"
    ) -> None:
        """Monitor a switch port's speed (MIB-II ifSpeed is already bits/s)."""
        self.add_probe(Probe(element, MIB2.ifSpeed.child(if_index), parameter))

    def add_switch_octet_probes(self, element: str, if_index: int, prefix: str = "if") -> None:
        """Monitor a switch port's octet counters (utilisation estimation)."""
        self.add_probe(
            Probe(element, MIB2.ifInOctets.child(if_index), f"{prefix}{if_index}_in_octets")
        )
        self.add_probe(
            Probe(element, MIB2.ifOutOctets.child(if_index), f"{prefix}{if_index}_out_octets")
        )

    # ------------------------------------------------------------------
    # polling
    # ------------------------------------------------------------------
    def poll(self) -> dict[str, float]:
        """Query every probe; skip (and count) failures.

        Probes against the same host are batched into a single GET —
        one round trip per agent per cycle.
        """
        self.poll_count += 1
        observed: dict[str, float] = {}
        by_host: dict[str, list[Probe]] = {}
        for p in self.probes:
            by_host.setdefault(p.host, []).append(p)
        for host, probes in sorted(by_host.items()):
            try:
                results = self.manager.get(host, [p.oid for p in probes])
            except SnmpError:
                self.probe_failures += len(probes)
                continue
            values = {oid: v for oid, v in results}
            for p in probes:
                try:
                    observed[p.parameter] = p.transform(values[p.oid])
                except (KeyError, SnmpError):
                    self.probe_failures += 1
        self.last_observed = observed
        return observed

    def close(self) -> None:
        """Release the underlying manager socket."""
        self.manager.close()
