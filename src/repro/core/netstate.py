"""Network-state interface: the framework's aggregated view of the system.

"The network state interface is a generic component that encapsulates
the state of the system.  This includes CPU load, available memory,
network bandwidth, latency, and jitter.  The current implementation ...
uses [SNMP] ... to directly query the SNMP MIB" (paper Sec. 5.5).

:class:`NetworkStateInterface` owns one SNMP manager and a set of
*probes* — (host, OID, output-parameter, transform) bindings — and turns
a poll into the flat ``observed`` dict the inference engine consumes.
Standard probes cover the host extension agent (CPU, page faults, free
memory, access-link metrics) and the LAN switch's ifTable (link speed →
available bandwidth).

Failure semantics: a probe whose agent times out serves its *last known
value* for up to ``stale_grace`` virtual seconds (marked in
``stale_parameters``); past the grace window the parameter drops out of
the observed dict and the engine runs on whatever remains.  When *every*
probe has gone dark the interface reports :attr:`~NetworkStateInterface.is_dark`
so the inference layer can fall back to its conservative tier —
adaptation degrades gracefully when the management plane itself is
degraded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..network.clock import Scheduler
from ..network.simnet import Network
from ..network.udp import DatagramSocket
from ..snmp.ber import Counter32, Gauge32, Integer, TimeTicks
from ..snmp.errors import SnmpError
from ..snmp.manager import SnmpManager
from ..snmp.oids import MIB2, OID, TASSL

__all__ = ["Probe", "NetworkStateInterface"]

#: Converts a raw BER value into a float for the observed dict.
Transform = Callable[[object], float]


def _numeric(value: object) -> float:
    """Default transform: unwrap any numeric BER type."""
    if isinstance(value, (Gauge32, Counter32, TimeTicks, Integer)):
        return float(value.value)
    raise SnmpError(f"non-numeric SNMP value: {value!r}")


@dataclass(frozen=True)
class Probe:
    """One monitored MIB variable.

    ``parameter`` is the key it lands under in the observed dict;
    ``transform`` converts the BER value (e.g. µs → ms).
    """

    host: str
    oid: OID
    parameter: str
    transform: Transform = _numeric


class NetworkStateInterface:
    """Aggregated SNMP polling for one client's adaptation loop.

    Example
    -------
    ``standard_host_probes`` + ``switch_bandwidth_probe`` cover the
    paper's parameter list; :meth:`poll` returns e.g.::

        {"cpu_load": 42.0, "page_faults": 31.0, "free_memory_kib": ...,
         "link_latency_ms": 0.5, "link_loss_ppm": 0.0,
         "bandwidth_bps": 100000000.0}
    """

    def __init__(
        self,
        network: Network,
        host: str,
        community: str = "public",
        timeout: float = 0.5,
        retries: int = 1,
        stale_grace: float = 3.0,
    ) -> None:
        self.network = network
        self.manager = SnmpManager(
            DatagramSocket(network, host),
            network.scheduler,
            community=community,
            timeout=timeout,
            retries=retries,
        )
        self.probes: list[Probe] = []
        #: how long (virtual seconds) a failed probe may serve its last
        #: known value before the parameter goes dark
        self.stale_grace = stale_grace
        self.poll_count = 0
        self.probe_failures = 0
        self.stale_served = 0
        self.last_observed: dict[str, float] = {}
        #: parameters served from cache on the most recent poll
        self.stale_parameters: set[str] = set()
        #: virtual time each parameter was last freshly observed
        self._last_fresh: dict[str, float] = {}
        #: set when a poll yields no fresh observation at all
        self.dark_since: Optional[float] = None

    # ------------------------------------------------------------------
    # probe registration
    # ------------------------------------------------------------------
    def add_probe(self, probe: Probe) -> None:
        """Register one monitored variable."""
        self.probes.append(probe)

    def add_standard_host_probes(self, host: str) -> None:
        """The extension agent's full parameter set for ``host``."""
        us_to_ms: Transform = lambda v: _numeric(v) / 1000.0
        # the TASSL bandwidth gauge is in bytes/second on the wire; the
        # observation key's `_bps` suffix promises bits/second
        bytes_to_bits: Transform = lambda v: _numeric(v) * 8.0
        for oid, parameter, transform in (
            (TASSL.hostCpuLoad, "cpu_load", _numeric),
            (TASSL.hostPageFaults, "page_faults", _numeric),
            (TASSL.hostFreeMemory, "free_memory_kib", _numeric),
            (TASSL.linkBandwidth, "bandwidth_bps", bytes_to_bits),
            (TASSL.linkLatencyUs, "link_latency_ms", us_to_ms),
            (TASSL.linkJitterUs, "link_jitter_ms", us_to_ms),
            (TASSL.linkLossPpm, "link_loss_ppm", _numeric),
        ):
            self.add_probe(Probe(host, oid, parameter, transform))

    def add_switch_bandwidth_probe(
        self, element: str, if_index: int, parameter: str = "bandwidth_bps"
    ) -> None:
        """Monitor a switch port's speed (MIB-II ifSpeed is already bits/s)."""
        self.add_probe(Probe(element, MIB2.ifSpeed.child(if_index), parameter))

    def add_switch_octet_probes(self, element: str, if_index: int, prefix: str = "if") -> None:
        """Monitor a switch port's octet counters (utilisation estimation)."""
        self.add_probe(
            Probe(element, MIB2.ifInOctets.child(if_index), f"{prefix}{if_index}_in_octets")
        )
        self.add_probe(
            Probe(element, MIB2.ifOutOctets.child(if_index), f"{prefix}{if_index}_out_octets")
        )

    # ------------------------------------------------------------------
    # polling
    # ------------------------------------------------------------------
    def poll(self) -> dict[str, float]:
        """Query every probe; failed probes serve stale values in grace.

        Probes against the same host are batched into a single GET —
        one round trip per agent per cycle.  A probe that fails serves
        its last known value for up to :attr:`stale_grace` virtual
        seconds (and lands in :attr:`stale_parameters`); beyond that the
        parameter drops out.  Failures are counted either way.
        """
        self.poll_count += 1
        now = self.network.scheduler.clock.now
        observed: dict[str, float] = {}
        fresh_any = False
        self.stale_parameters = set()
        by_host: dict[str, list[Probe]] = {}
        for p in self.probes:
            by_host.setdefault(p.host, []).append(p)
        for host, probes in sorted(by_host.items()):
            try:
                results = self.manager.get(host, [p.oid for p in probes])
            except SnmpError:
                self.probe_failures += len(probes)
                for p in probes:
                    self._serve_stale(p.parameter, now, observed)
                continue
            values = {oid: v for oid, v in results}
            for p in probes:
                try:
                    observed[p.parameter] = p.transform(values[p.oid])
                except (KeyError, SnmpError):
                    self.probe_failures += 1
                    self._serve_stale(p.parameter, now, observed)
                else:
                    self._last_fresh[p.parameter] = now
                    fresh_any = True
        if fresh_any or not self.probes:
            self.dark_since = None
        elif self.dark_since is None:
            self.dark_since = now
        self.last_observed = observed
        return observed

    def _serve_stale(self, parameter: str, now: float, observed: dict[str, float]) -> None:
        """Reuse the last fresh value of ``parameter`` while in grace."""
        last = self._last_fresh.get(parameter)
        if last is None or now - last > self.stale_grace:
            return
        if parameter in self.last_observed:
            observed[parameter] = self.last_observed[parameter]
            self.stale_parameters.add(parameter)
            self.stale_served += 1

    # ------------------------------------------------------------------
    # degradation surface
    # ------------------------------------------------------------------
    @property
    def is_dark(self) -> bool:
        """True when the most recent poll produced no fresh observation."""
        return self.dark_since is not None

    def dark_for(self) -> float:
        """Virtual seconds since the management plane went dark (0 if lit)."""
        if self.dark_since is None:
            return 0.0
        return self.network.scheduler.clock.now - self.dark_since

    @property
    def degraded(self) -> bool:
        """Dark for longer than the grace window: stale values are gone
        and the inference layer should fall back conservatively."""
        return self.dark_for() > self.stale_grace

    def close(self) -> None:
        """Release the underlying manager socket."""
        self.manager.close()
