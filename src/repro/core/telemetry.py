"""Telemetry: one-call observability over a whole deployment.

Every component keeps counters (endpoint messages, SNMP requests,
adaptation decisions, QoS snapshots, archive sizes...).  This module
aggregates them into a per-deployment report — what an operator's
dashboard would show, and what the examples print at the end of a run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from .framework import CollaborationFramework

__all__ = ["deployment_report", "format_report"]


def deployment_report(fw: CollaborationFramework) -> dict[str, Any]:
    """Collect a structured snapshot of every peer's counters."""
    report: dict[str, Any] = {
        "session": fw.session.name,
        "virtual_time": fw.now,
        "nodes": len(fw.network.nodes),
        "links": len(fw.network.links),
        "wired_clients": {},
        "wireless_clients": {},
        "base_stations": {},
    }
    for name, client in sorted(fw.wired_clients.items()):
        report["wired_clients"][name] = {
            "sent_messages": client.endpoint.sent_messages,
            "received_messages": client.endpoint.received_messages,
            "accepted_messages": client.endpoint.accepted_messages,
            "chat_lines": len(client.chat.lines),
            "whiteboard_objects": len(client.whiteboard.objects()),
            "whiteboard_conflicts": client.whiteboard.conflicts,
            "images_viewed": len(client.viewer.viewed),
            "images_shared": len(client.viewer.shared),
            "decisions": len(client.decision_log),
            "last_packet_budget": client.viewer.packet_budget,
            "snmp_requests": client.snmp.requests_sent
            + (client.netstate.manager.requests_sent if client.netstate else 0),
            "archive_size": len(client.archive),
            "members_seen": len(client.membership),
        }
    for name, wc in sorted(fw.wireless_clients.items()):
        counts = wc.modality_counts()
        report["wireless_clients"][name] = {
            "distance_m": wc.distance,
            "tx_power": wc.tx_power,
            "battery_pct": wc.battery,
            "events_received": len(wc.received_events),
            "power_requests": len(wc.power_requests),
            **counts,
        }
    for name, bs in sorted(fw.base_stations.items()):
        report["base_stations"][name] = {
            "attached": sorted(bs.attachments),
            "qos_snapshots": len(bs.qos_history),
            "power_requests_sent": len(bs.power_requests_sent),
            "session_messages": bs.endpoint.received_messages,
            "channel_coupling": bs.channel_coupling,
            "last_sir_db": {
                cid: round(att.sir_db, 2) for cid, att in sorted(bs.attachments.items())
            },
            "last_tiers": {
                cid: att.tier.name for cid, att in sorted(bs.attachments.items())
            },
        }
    return report


def format_report(report: dict[str, Any]) -> str:
    """Human-readable rendering of :func:`deployment_report`."""
    lines = [
        f"deployment report — session {report['session']!r}"
        f" at t={report['virtual_time']:.2f}s"
        f" ({report['nodes']} nodes, {report['links']} links)"
    ]
    for section in ("wired_clients", "wireless_clients", "base_stations"):
        if not report[section]:
            continue
        lines.append(f"  {section.replace('_', ' ')}:")
        for name, stats in report[section].items():
            parts = ", ".join(
                f"{k}={v}" for k, v in stats.items() if not isinstance(v, dict)
            )
            lines.append(f"    {name}: {parts}")
            for k, v in stats.items():
                if isinstance(v, dict) and v:
                    lines.append(f"      {k}: {v}")
    return "\n".join(lines)
