"""Base station: wireless gateway, control coordinator, QoS manager.

"The base station functions as the control coordinator while maintaining
the wireless client state ... maintains a profile depending on distance,
signal strength at base station, transmitting rate, and capability of the
client ... links the wireless network to the rest of the distributed
collaborative session by joining the multicast session" (paper Sec. 4.2).

Responsibilities implemented here:

* **attachment registry** — per-wireless-client channel state (distance,
  tx power, battery) and delivery address;
* **SIR evaluation** — vectorized Eq. (1) over all attached clients,
  with per-client modality-tier selection via the policy database;
* **downlink gating** — session traffic is forwarded to each wireless
  client in the richest modality its tier supports (full image /
  text+sketch / text / nothing), transforming content centrally;
* **uplink gating** — a wireless client's contribution is forwarded to
  the session in the modality its *own* uplink SIR supports ("even in a
  low throughput network condition, the BS is able to send certain
  modality of information from a wireless client to the collaboration
  network");
* **power control** — clients whose SIR exceeds the image threshold by a
  margin are asked to reduce power (battery + interference relief).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..apps.imageviewer import ImageViewer
from ..media.describe import describe_image
from ..media.sketch import extract_sketch
from ..messaging.broker import Delivery
from ..messaging.message import SemanticMessage
from ..messaging.rtp import RtpError, RtpPacketizer, RtpReassembler
from ..messaging.serialization import WireError, decode_message, encode_message
from ..messaging.transport import SemanticEndpoint
from ..network.multicast import MulticastGroup
from ..network.simnet import Network
from ..network.udp import DatagramSocket
from ..wireless.channel import NoiseModel, PathLossModel
from ..wireless.sir import sir_db as compute_sir_db
from .events import (
    Event,
    ImagePacketEvent,
    ImageShareAnnounce,
    JoinEvent,
    LeaveEvent,
    PowerControlRequest,
    ProfileUpdateEvent,
    SketchShareEvent,
    SpeechShareEvent,
    TextShareEvent,
    EventError,
    decode_event,
)
from .policies import ModalityTier, PolicyDatabase, default_policy_database
from .profiles import ClientProfile
from .session import SessionDescriptor

__all__ = ["Attachment", "QosSnapshot", "BaseStation"]

#: Well-known port wireless clients send to on the BS node.
WIRELESS_PORT = 5100


@dataclass
class Attachment:
    """BS-side record of one wireless client."""

    client_id: str
    address: tuple[str, int]
    distance: float
    tx_power: float
    battery: float = 100.0
    joined_at: float = 0.0
    sir_db: float = float("nan")
    tier: ModalityTier = ModalityTier.NOTHING
    #: BS-side mirror of the client's semantic profile; a real
    #: :class:`~repro.core.profiles.ClientProfile` so observers (e.g. a
    #: matching-engine index) can :meth:`~repro.core.profiles.ClientProfile.watch`
    #: it for change notifications.
    profile_attrs: Optional[ClientProfile] = None

    def __post_init__(self) -> None:
        if self.profile_attrs is None:
            self.profile_attrs = ClientProfile(self.client_id)


@dataclass(frozen=True)
class QosSnapshot:
    """One evaluation instant across all attached clients (FIG8–10 rows)."""

    time: float
    client_ids: tuple[str, ...]
    distances: tuple[float, ...]
    powers: tuple[float, ...]
    sir_db: tuple[float, ...]
    tiers: tuple[ModalityTier, ...]

    def for_client(self, client_id: str) -> tuple[float, ModalityTier]:
        """(sir_db, tier) of one client in this snapshot."""
        idx = self.client_ids.index(client_id)
        return self.sir_db[idx], self.tiers[idx]


class BaseStation:
    """The wireless extension's gateway peer.

    Parameters
    ----------
    name:
        BS id == its network node name.
    network / group / session:
        The collaboration session's fabric; the BS joins as a peer.
    pathloss / noise:
        Channel models for SIR evaluation (defaults: exponent-4 power law,
        noise tied to unit reference power — see DESIGN.md).
    policies:
        Tier thresholds (and anything else) come from here.
    power_margin_db:
        Excess over the image threshold that triggers a power-down
        request (paper's 7 dB vs 4 dB example → margin 3 dB).
    """

    def __init__(
        self,
        name: str,
        network: Network,
        group: MulticastGroup,
        session: SessionDescriptor,
        pathloss: Optional[PathLossModel] = None,
        noise: Optional[NoiseModel] = None,
        policies: Optional[PolicyDatabase] = None,
        power_margin_db: float = 3.0,
        min_power: float = 0.05,
    ) -> None:
        self.name = name
        self.network = network
        self.scheduler = network.scheduler
        self.session = session
        self.pathloss = pathloss if pathloss is not None else PathLossModel(alpha=4.0, k=1e6)
        self.noise = noise if noise is not None else NoiseModel(reference_power=1.0, snr_ref_db=40.0)
        self.policies = policies if policies is not None else default_policy_database()
        self.power_margin_db = power_margin_db
        self.min_power = min_power

        self.profile = ClientProfile(
            name, {"session": session.name, "role": "base-station", "client_id": name}
        )
        self.endpoint = SemanticEndpoint(
            network, name, group, self.profile, self._on_session_delivery
        )
        # wireless-side socket + RTP
        self._wsock = DatagramSocket(network, name)
        self._wsock.bind(WIRELESS_PORT)
        self._wsock.on_receive = self._on_wireless_datagram
        import zlib

        self._wpacketizer = RtpPacketizer(zlib.crc32(f"{name}:bs".encode()) & 0xFFFFFFFF)
        self._wreassembler = RtpReassembler(
            self._on_wireless_payload, clock=lambda: network.scheduler.clock.now
        )

        self.attachments: dict[str, Attachment] = {}
        #: undecodable uplink payloads dropped (codec guard, EXC001)
        self.decode_failures = 0
        #: events that could not be fragmented for forwarding (oversize)
        self.forward_failures = 0
        #: when true, each QoS evaluation writes SIR-derived loss onto the
        #: client's radio link (see repro.wireless.linkquality)
        self.channel_coupling = False
        self._coupling_packet_bits = 8000
        self.qos_history: list[QosSnapshot] = []
        self.power_requests_sent: list[tuple[float, str, float]] = []
        # BS keeps a full-budget viewer to reconstruct shared images for
        # centralized transformation (sketch tier)
        self.viewer = ImageViewer(name, n_packets=16, target_bpp=None)
        self._sketched: set[str] = set()

    # ------------------------------------------------------------------
    # attachment management
    # ------------------------------------------------------------------
    @property
    def wireless_address(self) -> tuple[str, int]:
        """Where wireless clients unicast to."""
        return (self.name, WIRELESS_PORT)

    def assess_admission(
        self, distance: float, tx_power: float, min_tier: ModalityTier = ModalityTier.TEXT_ONLY
    ) -> tuple[bool, float, ModalityTier]:
        """The paper's "basic service assessment": would a client at
        ``distance`` with ``tx_power`` get at least ``min_tier`` service,
        given the currently attached interferers?

        Returns ``(admissible, predicted_sir_db, predicted_tier)``.  Also
        the BS's "decision-making for the minimum device specifications
        required for the collaboration": callers can sweep ``tx_power``
        to find the weakest device that still meets ``min_tier``.
        """
        if distance <= 0 or tx_power <= 0:
            raise ValueError("distance and tx_power must be positive")
        gain = float(self.pathloss.gain(distance))
        received = tx_power * gain
        interference = sum(
            att.tx_power * float(self.pathloss.gain(att.distance))
            for att in self.attachments.values()
        )
        sir = received / (interference + self.noise.sigma2)
        sir_db = 10.0 * np.log10(sir)
        tier = self.policies.decide_tier(sir_db)
        return tier >= min_tier, float(sir_db), tier

    def attach(
        self,
        client_id: str,
        address: tuple[str, int],
        distance: float,
        tx_power: float,
        battery: float = 100.0,
        min_tier: Optional[ModalityTier] = None,
    ) -> Attachment:
        """Register a wireless client (its connection establishment).

        When ``min_tier`` is given, admission control runs first: the
        client is refused (``ValueError``) if the predicted service —
        against the current interference environment — falls below its
        required tier.  Returns the attachment record; the first
        :meth:`evaluate_qos` snapshot after this is the paper's "basic
        service assessment".
        """
        if distance <= 0 or tx_power <= 0:
            raise ValueError("distance and tx_power must be positive")
        if min_tier is not None:
            ok, sir_db, tier = self.assess_admission(distance, tx_power, min_tier)
            if not ok:
                raise ValueError(
                    f"admission refused for {client_id!r}: predicted"
                    f" {sir_db:.1f} dB -> {tier.name} < required {min_tier.name}"
                )
        att = Attachment(
            client_id=client_id,
            address=address,
            distance=float(distance),
            tx_power=float(tx_power),
            battery=battery,
            joined_at=self.scheduler.clock.now,
        )
        self.attachments[client_id] = att
        return att

    def minimum_power_for(
        self,
        distance: float,
        min_tier: ModalityTier = ModalityTier.TEXT_ONLY,
        max_power: float = 10.0,
        tolerance: float = 1e-3,
    ) -> Optional[float]:
        """Smallest transmit power meeting ``min_tier`` at ``distance``.

        Binary search over :meth:`assess_admission`; None when even
        ``max_power`` does not suffice (the device cannot participate —
        the "minimum device specification" is above its capability).
        """
        ok, _, _ = self.assess_admission(distance, max_power, min_tier)
        if not ok:
            return None
        lo, hi = tolerance, max_power
        while hi - lo > tolerance:
            mid = (lo + hi) / 2.0
            ok, _, _ = self.assess_admission(distance, mid, min_tier)
            if ok:
                hi = mid
            else:
                lo = mid
        return hi

    def detach(self, client_id: str) -> None:
        """Remove a wireless client (left the session / out of range)."""
        self.attachments.pop(client_id, None)

    def update_attachment(
        self,
        client_id: str,
        distance: Optional[float] = None,
        tx_power: Optional[float] = None,
        battery: Optional[float] = None,
    ) -> None:
        """Experiment/control-plane hook to mutate channel state."""
        att = self.attachments[client_id]
        if distance is not None:
            att.distance = float(distance)
        if tx_power is not None:
            att.tx_power = float(tx_power)
        if battery is not None:
            att.battery = float(battery)

    # ------------------------------------------------------------------
    # QoS evaluation (Eq. 1 + tier policy)
    # ------------------------------------------------------------------
    def evaluate_qos(self) -> QosSnapshot:
        """Compute every client's SIR and tier; record the snapshot."""
        ids = tuple(sorted(self.attachments))
        if not ids:
            snap = QosSnapshot(self.scheduler.clock.now, (), (), (), (), ())
            self.qos_history.append(snap)
            return snap
        distances = np.array([self.attachments[c].distance for c in ids])
        powers = np.array([self.attachments[c].tx_power for c in ids])
        gains = self.pathloss.gain(distances)
        if len(ids) == 1:
            # single client: SNR against receiver noise only
            sirs = 10.0 * np.log10(powers * gains / self.noise.sigma2)
        else:
            sirs = compute_sir_db(powers, np.asarray(gains), self.noise.sigma2)
        tiers = tuple(self.policies.decide_tier(float(s)) for s in sirs)
        for cid, s, t in zip(ids, sirs, tiers):
            self.attachments[cid].sir_db = float(s)
            self.attachments[cid].tier = t
        snap = QosSnapshot(
            time=self.scheduler.clock.now,
            client_ids=ids,
            distances=tuple(float(d) for d in distances),
            powers=tuple(float(p) for p in powers),
            sir_db=tuple(float(s) for s in sirs),
            tiers=tiers,
        )
        self.qos_history.append(snap)
        if self.channel_coupling:
            self._apply_channel_coupling(snap)
        return snap

    def couple_channel(self, packet_bits: int = 8000) -> None:
        """Tie each radio link's loss rate to the client's live SIR.

        After this, every :meth:`evaluate_qos` maps SIR → BER → packet
        loss (non-coherent FSK model) onto the client↔BS link, so low-SIR
        clients physically lose fragments in addition to being tier-gated.
        """
        self.channel_coupling = True
        self._coupling_packet_bits = packet_bits
        if self.qos_history:
            self._apply_channel_coupling(self.qos_history[-1])

    def _apply_channel_coupling(self, snap: QosSnapshot) -> None:
        """Write SIR-derived, size-dependent loss onto each radio link.

        Small frames (≤ ``ROBUST_FRAME_BYTES``) are modelled at the robust
        base rate — 802.11b-style rate fallback buys them ~10 dB of
        processing gain — so text/control renditions survive channels
        where bulk image fragments die.  ``link.loss`` is also set to the
        data-frame value for observability.
        """
        from ..network.simnet import NetworkError
        from ..wireless.linkquality import loss_for_sir_db

        ROBUST_FRAME_BYTES = 500
        for cid, s in zip(snap.client_ids, snap.sir_db):
            try:
                link = self.network.link(self.name, cid)
            except NetworkError:
                continue  # relayed/multi-hop client: no direct radio link
            data_loss = float(loss_for_sir_db(s, self._coupling_packet_bits))
            link.loss = data_loss

            def loss_fn(size: int, sir_db: float = s) -> float:
                gain = 20.0 if size <= ROBUST_FRAME_BYTES else 10.0
                return float(
                    loss_for_sir_db(sir_db, packet_bits=8 * size, coding_gain_db=gain)
                )

            link.loss_fn = loss_fn

    def apply_power_control(self) -> list[PowerControlRequest]:
        """Ask over-powered clients to transmit lower (battery + SIR).

        A client whose SIR exceeds the image threshold by more than
        ``power_margin_db`` is asked to scale power down to the level
        that would sit at threshold+margin (clamped to ``min_power``).
        """
        snap = self.evaluate_qos()
        requests: list[PowerControlRequest] = []
        threshold = self.policies.sir_policy.image_db + self.power_margin_db
        for cid, s in zip(snap.client_ids, snap.sir_db):
            if s > threshold:
                att = self.attachments[cid]
                # lowering P_i lowers own SIR ~linearly (interference from
                # others fixed); scale to land at the threshold
                scale = 10.0 ** ((threshold - s) / 10.0)
                new_power = max(self.min_power, att.tx_power * scale)
                if new_power < att.tx_power * 0.999:
                    req = PowerControlRequest(
                        client_id=cid,
                        new_power=new_power,
                        reason=f"sir {s:.1f} dB above {threshold:.1f} dB target",
                    )
                    self._unicast_event(req, att.address)
                    self.power_requests_sent.append((snap.time, cid, new_power))
                    requests.append(req)
        return requests

    # ------------------------------------------------------------------
    # downlink: session → wireless clients, tier-gated
    # ------------------------------------------------------------------
    def _unicast_event(self, event: Event, dest: tuple[str, int]) -> None:
        msg = SemanticMessage.create(
            sender=self.name,
            selector="true",  # repro: ignore[SEL002] -- deliberate: explicit unicast dest
            headers=event.headers(),
            body=event.to_body(),
            kind=event.kind,
        )
        try:
            fragments = self._wpacketizer.packetize(encode_message(msg))
        except (RtpError, WireError):
            # one client's oversized/unencodable rendition must not break
            # the others'
            self.forward_failures += 1
            return
        for frag in fragments:
            self._wsock.sendto(frag.encode(), dest)

    def _text_event_for(self, att: Attachment, ref_id: str, text: str) -> Event:
        """Text rendition, honouring a client's speech preference.

        "Incoming textual information can be transformed into speech if
        the profile specifies that the client has chosen speech as the
        preferred modality" (paper Sec. 5.2) — the transformation runs
        *centrally*, at the BS, sparing the thin device the work.
        """
        if att.profile_attrs.get("modality") == "speech":
            from ..media.speech import quantize_u8, text_to_speech

            clip = text_to_speech(text)
            return SpeechShareEvent(
                ref_id=ref_id,
                sample_rate=clip.sample_rate,
                samples_u8=quantize_u8(clip),
            )
        return TextShareEvent(ref_id=ref_id, text=text)

    def _forward_downlink(self, event: Event, exclude: Optional[str] = None) -> None:
        """Deliver one session event to each attachment per its tier."""
        for cid, att in sorted(self.attachments.items()):
            if cid == exclude:
                continue
            tier = att.tier
            if tier is ModalityTier.NOTHING:
                continue
            if isinstance(event, ImageShareAnnounce):
                if tier is ModalityTier.FULL_IMAGE:
                    self._unicast_event(event, att.address)
                else:  # both degraded tiers get the verbal description
                    self._unicast_event(
                        self._text_event_for(att, event.image_id, event.description),
                        att.address,
                    )
            elif isinstance(event, ImagePacketEvent):
                if tier is ModalityTier.FULL_IMAGE:
                    self._unicast_event(event, att.address)
                # sketch tier is served when the image completes (below)
            elif isinstance(event, SketchShareEvent):
                if tier is not ModalityTier.TEXT_ONLY:
                    self._unicast_event(event, att.address)
            elif isinstance(event, TextShareEvent):
                self._unicast_event(
                    self._text_event_for(att, event.ref_id, event.text), att.address
                )
            else:
                # chat, whiteboard, membership: cheap, all tiers
                self._unicast_event(event, att.address)

    def _maybe_send_sketch(self, image_id: str) -> None:
        """Once the BS has the full image, serve sketch-tier clients."""
        if image_id in self._sketched:
            return
        view = self.viewer.viewed.get(image_id)
        if view is None or view.assembly.usable_prefix < view.announce.n_packets:
            return
        self._sketched.add(image_id)
        recon = self.viewer.reconstruct(image_id)
        sketch = extract_sketch(recon)
        event = SketchShareEvent(
            ref_id=image_id,
            sketch_h=sketch.shape[0],
            sketch_w=sketch.shape[1],
            encoded=sketch.encoded,
        )
        for cid, att in sorted(self.attachments.items()):
            if att.tier is ModalityTier.TEXT_AND_SKETCH:
                self._unicast_event(event, att.address)

    def _on_session_delivery(self, delivery: Delivery) -> None:
        """A multicast session event arrived at the BS peer."""
        msg = delivery.message
        try:
            event = decode_event(msg.kind, msg.body)
        except EventError:
            self.decode_failures += 1
            return
        # keep the BS's own replica of shared images (for central transforms)
        if isinstance(event, ImageShareAnnounce):
            self.viewer.on_announce(event)
        elif isinstance(event, ImagePacketEvent):
            self.viewer.on_packet(event)
            self._maybe_send_sketch(event.image_id)
        self._forward_downlink(event)

    # ------------------------------------------------------------------
    # uplink: wireless client → session, gated by the sender's SIR tier
    # ------------------------------------------------------------------
    def _on_wireless_datagram(self, data: bytes, src: tuple[str, int]) -> None:
        try:
            self._wreassembler.ingest(data)
        except RtpError:
            self.decode_failures += 1

    def _on_wireless_payload(self, ssrc: int, payload: bytes) -> None:
        try:
            msg = decode_message(payload)
        except WireError:
            # a malformed uplink payload must not kill the BS event loop
            self.decode_failures += 1
            import warnings

            from ..analysis.diagnostics import DiagnosticWarning

            warnings.warn(
                "base station dropped an undecodable uplink payload",
                DiagnosticWarning,
                stacklevel=2,
            )
            return
        try:
            event = decode_event(msg.kind, msg.body)
        except EventError:
            self.decode_failures += 1
            return
        sender = msg.sender
        if isinstance(event, ProfileUpdateEvent):
            self._handle_channel_report(event)
            return
        att = self.attachments.get(sender)
        if att is None:
            return  # not attached: drop (no service assessment yet)
        self.evaluate_qos()
        tier = self.attachments[sender].tier
        forwarded = self._gate_uplink(event, tier)
        outs = [
            SemanticMessage.create(
                sender=sender,
                selector=self.session.selector_text(),
                headers=fevent.headers(),
                body=fevent.to_body(),
                kind=fevent.kind,
            )
            for fevent in forwarded
        ]
        # multicast the batch to the wired session; a ``None`` slot marks
        # an oversized/unencodable uplink event, which must not abort the
        # rest of the batch (nor its own downlink fan-out suppression)
        try:
            sent = self.endpoint.publish_many(outs, suppress_errors=True)
        except (RtpError, WireError):  # suppressed upstream; belt for the loop
            sent = [None] * len(outs)
        for fevent, fragments in zip(forwarded, sent):
            if fragments is None:
                self.forward_failures += 1
                continue
            # ... and unicast to the other wireless clients per their tiers
            self._forward_downlink(fevent, exclude=sender)

    def _gate_uplink(self, event: Event, tier: ModalityTier) -> list[Event]:
        """What of a client's contribution its uplink SIR lets through."""
        if tier is ModalityTier.NOTHING:
            return []
        if isinstance(event, ImageShareAnnounce):
            if tier is ModalityTier.FULL_IMAGE:
                self.viewer.on_announce(event)  # track for sketch service
                return [event]
            # degraded uplink: the text description always fits
            return [TextShareEvent(ref_id=event.image_id, text=event.description)]
        if isinstance(event, ImagePacketEvent):
            if tier is ModalityTier.FULL_IMAGE:
                self.viewer.on_packet(event)
                self._maybe_send_sketch(event.image_id)
                return [event]
            if tier is ModalityTier.TEXT_AND_SKETCH and event.packet_index == 0:
                # "If the BS receives the base image packet at SIR above
                # threshold for [sketch], it will send out [that tier]":
                # the first packet is the base-image layer; forward it as
                # a coarse rendition marker (full sketch follows when the
                # BS can reconstruct one).
                return [event]
            return []
        return [event]  # text/chat/whiteboard pass at any usable tier

    def _handle_channel_report(self, event: ProfileUpdateEvent) -> None:
        att = self.attachments.get(event.client_id)
        if att is None:
            return
        changes = dict(event.changes)
        if "distance" in changes:
            att.distance = float(changes["distance"])
        if "tx_power" in changes:
            att.tx_power = float(changes["tx_power"])
        if "battery" in changes:
            att.battery = float(changes["battery"])
        att.profile_attrs.update(**changes)

    # ------------------------------------------------------------------
    def start_qos_loop(self, interval: float = 0.5, power_control: bool = False) -> None:
        """Periodic SIR evaluation (and optional power control)."""

        def tick() -> None:
            if power_control:
                self.apply_power_control()
            else:
                self.evaluate_qos()
            self.scheduler.call_after(interval, tick)

        self.scheduler.call_after(interval, tick)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"BaseStation({self.name!r}, attached={sorted(self.attachments)})"
