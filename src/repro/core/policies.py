"""The policy database: rules mapping observed state to adaptations.

"The inference engine serves as a policy database and encodes policies
for information transformations" (paper Sec. 5.2).  Three rule shapes
cover the paper's experiments:

* :class:`StepPolicy` — piecewise-constant map from a monotone system
  parameter to a decision value.  FIG6's page-fault rule ("packets vary
  from 1 to 16 in powers of 2 corresponding to page faults varying from
  30 to 100") and FIG7's CPU-load rule (16 down to 0 packets over
  30–100 % load) are instances, provided as defaults.
* :class:`SirTierPolicy` — SIR thresholds selecting the modality tier a
  base station forwards for a wireless client: full image / text+sketch /
  text only / nothing (paper Sec. 6.3, e.g. "SIR threshold for image data
  is at 4 db").
* :class:`PolicyDatabase` — the named collection the inference engine
  consults; multiple applicable packet policies combine by *most
  constrained wins*.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from enum import IntEnum
from typing import TYPE_CHECKING, Optional, Sequence

if TYPE_CHECKING:
    from ..analysis.diagnostics import Diagnostic
    from .contracts import QoSContract

__all__ = [
    "StepPolicy",
    "ModalityTier",
    "SirTierPolicy",
    "PolicyDatabase",
    "PolicyError",
    "default_page_fault_policy",
    "default_cpu_load_policy",
    "default_sir_tier_policy",
    "default_policy_database",
]


class PolicyError(ValueError):
    """Raised on malformed policy definitions."""


@dataclass(frozen=True)
class StepPolicy:
    """Piecewise-constant: value of the first breakpoint the input is
    *below*, else the floor value.

    ``breakpoints`` is a sequence of ``(upper_bound, value)`` with
    strictly increasing bounds; ``floor`` applies at/after the last bound.

    >>> p = StepPolicy("pf", "packets", [(44, 16), (58, 8)], floor=1)
    >>> p.decide(30), p.decide(50), p.decide(90)
    (16.0, 8.0, 1.0)
    """

    parameter: str
    output: str
    breakpoints: tuple[tuple[float, float], ...]
    floor: float

    def __init__(
        self,
        parameter: str,
        output: str,
        breakpoints: Sequence[tuple[float, float]],
        floor: float,
    ) -> None:
        bps = tuple((float(b), float(v)) for b, v in breakpoints)
        if not bps:
            raise PolicyError("need at least one breakpoint")
        bounds = [b for b, _ in bps]
        if bounds != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise PolicyError("breakpoint bounds must be strictly increasing")
        object.__setattr__(self, "parameter", parameter)
        object.__setattr__(self, "output", output)
        object.__setattr__(self, "breakpoints", bps)
        object.__setattr__(self, "floor", float(floor))

    def decide(self, observed: float) -> float:
        """Map one observation to the policy's output value."""
        bounds = [b for b, _ in self.breakpoints]
        idx = bisect.bisect_right(bounds, observed)
        if idx < len(self.breakpoints):
            return self.breakpoints[idx][1]
        return self.floor


class ModalityTier(IntEnum):
    """What a wireless client's channel supports, most→least capable."""

    FULL_IMAGE = 3      # text + sketch + all image packets
    TEXT_AND_SKETCH = 2  # text description + base-image sketch
    TEXT_ONLY = 1        # text description only
    NOTHING = 0          # channel unusable


@dataclass(frozen=True)
class SirTierPolicy:
    """SIR(dB) thresholds → modality tier.

    Defaults: ≥4 dB full image (the paper's example threshold), ≥0 dB
    text+sketch, ≥−6 dB text only, below that nothing.
    """

    image_db: float = 4.0
    sketch_db: float = 0.0
    text_db: float = -6.0

    def __post_init__(self) -> None:
        if not (self.text_db <= self.sketch_db <= self.image_db):
            raise PolicyError("tier thresholds must be ordered text <= sketch <= image")

    def tier(self, sir_db: float) -> ModalityTier:
        """Select the richest tier the SIR supports."""
        if sir_db >= self.image_db:
            return ModalityTier.FULL_IMAGE
        if sir_db >= self.sketch_db:
            return ModalityTier.TEXT_AND_SKETCH
        if sir_db >= self.text_db:
            return ModalityTier.TEXT_ONLY
        return ModalityTier.NOTHING


def default_page_fault_policy() -> StepPolicy:
    """FIG6 rule: page faults 30→100 map to 16→1 packets (powers of 2).

    Bands split the 30–100 range evenly into five steps.
    """
    return StepPolicy(
        parameter="page_faults",
        output="packets",
        breakpoints=[(44, 16), (58, 8), (72, 4), (86, 2)],
        floor=1,
    )


def default_cpu_load_policy() -> StepPolicy:
    """FIG7 rule: CPU load 30→100 % maps to 16→0 packets.

    "The CPU load variation from 30 to 100% results in a drop in the
    number of image packets accepted from 16 to 0."
    """
    return StepPolicy(
        parameter="cpu_load",
        output="packets",
        breakpoints=[(44, 16), (58, 8), (72, 4), (86, 2), (97, 1)],
        floor=0,
    )


def default_sir_tier_policy() -> SirTierPolicy:
    """The paper's wireless tiers with the 4 dB image threshold."""
    return SirTierPolicy()


def default_bandwidth_policy() -> StepPolicy:
    """Network-bandwidth rule: starved links carry fewer image packets.

    Thresholds in bits/second of available path bandwidth (matching the
    ``_bps`` suffix of the observed parameter): below ~1 Mb/s a single
    packet; full budget above 10 Mb/s.  Unlike the page-fault/CPU rules
    the output *rises* with the input — :class:`StepPolicy` is
    direction-agnostic.
    """
    return StepPolicy(
        parameter="bandwidth_bps",
        output="packets",
        breakpoints=[(1_024_000, 1), (2_560_000, 2), (5_120_000, 4), (10_000_000, 8)],
        floor=16,
    )


class PolicyDatabase:
    """Named policies + combination semantics.

    Packet decisions from all applicable step policies combine by
    minimum — the most constrained subsystem (CPU, memory, network)
    governs, which is what the paper's wired experiments show.

    With ``validate=True`` every registration is statically linted (see
    :mod:`repro.analysis.policy_lint`) and findings surface as
    :class:`~repro.analysis.diagnostics.DiagnosticWarning`; behaviour is
    never changed — a diagnosable policy still registers.
    """

    def __init__(
        self,
        validate: bool = False,
        conservative_packets: int = 1,
        conservative_tier: ModalityTier = ModalityTier.TEXT_ONLY,
    ) -> None:
        self._step: dict[str, StepPolicy] = {}
        self._sir: SirTierPolicy = default_sir_tier_policy()
        self.validate = validate
        if conservative_packets < 0:
            raise PolicyError("conservative_packets must be non-negative")
        #: ceilings applied when the management plane is dark (see
        #: ``degraded=`` on :meth:`decide_packets` / :meth:`decide_tier`)
        self.conservative_packets = conservative_packets
        self.conservative_tier = conservative_tier

    def add_step(self, name: str, policy: StepPolicy) -> None:
        """Register/replace a step policy under ``name``."""
        if self.validate:
            from ..analysis import lint_step_policy

            self._warn(lint_step_policy(policy, name))
        self._step[name] = policy

    def remove_step(self, name: str) -> None:
        self._step.pop(name, None)

    def set_sir_policy(self, policy: SirTierPolicy) -> None:
        if self.validate:
            from ..analysis import lint_sir_policy

            self._warn(lint_sir_policy(policy))
        self._sir = policy

    def lint(
        self, contracts: Sequence["QoSContract"] = (), max_packets: int = 16
    ) -> "list[Diagnostic]":
        """Static diagnostics for the current database (see
        :func:`repro.analysis.lint_policy_database`)."""
        from ..analysis import lint_policy_database

        return lint_policy_database(self, contracts=contracts, max_packets=max_packets)

    @staticmethod
    def _warn(diagnostics: "Sequence[Diagnostic]") -> None:
        import warnings

        from ..analysis import DiagnosticWarning

        for diag in diagnostics:
            warnings.warn(diag.format(), DiagnosticWarning, stacklevel=3)

    @property
    def sir_policy(self) -> SirTierPolicy:
        return self._sir

    @property
    def step_policies(self) -> dict[str, StepPolicy]:
        return dict(self._step)

    def decide_packets(
        self, observed: dict[str, float], degraded: bool = False
    ) -> Optional[int]:
        """Most-constrained packet budget from the applicable policies.

        Returns None when no policy's input parameter was observed —
        unless ``degraded`` is set (the system-state plane has gone dark
        beyond its stale grace), in which case the budget is capped at
        :attr:`conservative_packets`: unobservable hosts are assumed
        loaded, not idle.
        """
        decisions = [
            p.decide(observed[p.parameter])
            for p in self._step.values()
            if p.output == "packets" and p.parameter in observed
        ]
        if not decisions:
            return self.conservative_packets if degraded else None
        budget = int(min(decisions))
        if degraded:
            budget = min(budget, self.conservative_packets)
        return budget

    def decide_tier(self, sir_db: float, degraded: bool = False) -> ModalityTier:
        """Wireless tier for one client's SIR.

        With ``degraded`` set (channel state unobservable or ancient) the
        tier is capped at :attr:`conservative_tier`.
        """
        tier = self._sir.tier(sir_db)
        if degraded and tier > self.conservative_tier:
            tier = self.conservative_tier
        return tier


def default_policy_database() -> PolicyDatabase:
    """Policies as configured for the paper's experiments.

    The bandwidth rule participates too: it only constrains when a
    ``bandwidth_bps`` observation is present (the
    :class:`~repro.core.netstate.NetworkStateInterface` supplies it).
    """
    db = PolicyDatabase()
    db.add_step("page-faults", default_page_fault_policy())
    db.add_step("cpu-load", default_cpu_load_policy())
    db.add_step("bandwidth", default_bandwidth_policy())
    return db
