"""Multi-base-station handoff: roaming across cells.

The paper notes "the network capability may change rapidly due to link
congestion or path updates of the wireless user" — this module supplies
the path-update half.  A :class:`HandoffManager` tracks 2-D positions of
base stations and wireless clients, evaluates each client's SIR at every
station (:func:`repro.wireless.sir.sir_matrix`, interference from *all*
transmitting clients), and re-associates a client when another station
beats its current one by a hysteresis margin — including moving the
simulated radio link, detaching/attaching the BS registries, and
re-pointing the client's unicast address.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..network.simnet import Network, NetworkError
from ..wireless.sir import sir_matrix, to_db
from .basestation import BaseStation
from .wireless_client import WirelessClient

__all__ = ["Position", "HandoffEvent", "HandoffManager"]


@dataclass(frozen=True)
class Position:
    """A point in the deployment plane (metres)."""

    x: float
    y: float

    def distance_to(self, other: "Position") -> float:
        """Euclidean distance, floored at 1 m (near-field clamp)."""
        return max(1.0, math.hypot(self.x - other.x, self.y - other.y))


@dataclass(frozen=True)
class HandoffEvent:
    """One completed re-association."""

    time: float
    client_id: str
    from_bs: str
    to_bs: str
    from_sir_db: float
    to_sir_db: float


class HandoffManager:
    """Coordinates roaming across a set of base stations.

    Parameters
    ----------
    network:
        The shared simulator (radio links are rewired on handoff).
    hysteresis_db:
        A candidate station must beat the serving one by this margin —
        prevents ping-pong at cell boundaries.
    radio_kwargs:
        Link parameters for newly created radio links.
    """

    def __init__(
        self,
        network: Network,
        hysteresis_db: float = 3.0,
        radio_bandwidth: float = 1_375_000.0,
        radio_latency: float = 0.002,
    ) -> None:
        if hysteresis_db < 0:
            raise ValueError("hysteresis must be non-negative")
        self.network = network
        self.hysteresis_db = hysteresis_db
        self.radio_bandwidth = radio_bandwidth
        self.radio_latency = radio_latency
        self._stations: dict[str, tuple[BaseStation, Position]] = {}
        self._clients: dict[str, tuple[WirelessClient, Position]] = {}
        self._serving: dict[str, str] = {}  # client_id -> bs name
        self.events: list[HandoffEvent] = []

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def add_station(self, bs: BaseStation, position: Position) -> None:
        """Register a base station at a fixed position."""
        if bs.name in self._stations:
            raise ValueError(f"station {bs.name!r} already registered")
        self._stations[bs.name] = (bs, position)

    def add_client(self, client: WirelessClient, position: Position, serving_bs: str) -> None:
        """Register a roaming client currently associated to ``serving_bs``."""
        if serving_bs not in self._stations:
            raise ValueError(f"unknown station {serving_bs!r}")
        self._clients[client.name] = (client, position)
        self._serving[client.name] = serving_bs
        self._sync_distance(client.name)

    def move_client(self, client_id: str, position: Position) -> None:
        """Update a client's position (mobility tick); no handoff yet."""
        client, _ = self._clients[client_id]
        self._clients[client_id] = (client, position)
        self._sync_distance(client_id)

    def serving_station(self, client_id: str) -> str:
        """Name of the BS currently serving ``client_id``."""
        return self._serving[client_id]

    def _sync_distance(self, client_id: str) -> None:
        """Push the geometric distance into the serving BS's attachment."""
        client, pos = self._clients[client_id]
        bs_name = self._serving[client_id]
        bs, bs_pos = self._stations[bs_name]
        d = pos.distance_to(bs_pos)
        client.distance = d
        if client_id in bs.attachments:
            bs.update_attachment(client_id, distance=d)

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def evaluate(self) -> dict[str, dict[str, float]]:
        """Per-client SIR (dB) at every station, interference-aware.

        All registered clients transmit; station *b* hears client *j*
        with gain from their geometric distance; everyone else attached
        anywhere is interference at that station.
        """
        if not self._clients or not self._stations:
            return {}
        client_ids = sorted(self._clients)
        bs_names = sorted(self._stations)
        powers = np.array([self._clients[c][0].tx_power for c in client_ids])
        G = np.empty((len(bs_names), len(client_ids)))
        for bi, bname in enumerate(bs_names):
            bs, bs_pos = self._stations[bname]
            for ci, cid in enumerate(client_ids):
                _, cpos = self._clients[cid]
                G[bi, ci] = bs.pathloss.gain(cpos.distance_to(bs_pos))
        sigma2 = np.array([self._stations[b][0].noise.sigma2 for b in bs_names])
        sir = sir_matrix(powers, G, sigma2)
        sir_db = to_db(sir)
        return {
            cid: {bname: float(sir_db[bi, ci]) for bi, bname in enumerate(bs_names)}
            for ci, cid in enumerate(client_ids)
        }

    # ------------------------------------------------------------------
    # handoff execution
    # ------------------------------------------------------------------
    def step(self) -> list[HandoffEvent]:
        """Evaluate all clients and execute any warranted handoffs."""
        table = self.evaluate()
        executed = []
        for cid in sorted(table):
            serving = self._serving[cid]
            current_sir = table[cid][serving]
            best_bs = max(table[cid], key=lambda b: table[cid][b])
            if best_bs != serving and table[cid][best_bs] >= current_sir + self.hysteresis_db:
                executed.append(self._execute(cid, serving, best_bs, current_sir, table[cid][best_bs]))
        return executed

    def _execute(
        self, client_id: str, from_bs: str, to_bs: str, from_sir: float, to_sir: float
    ) -> HandoffEvent:
        client, pos = self._clients[client_id]
        old_bs, _ = self._stations[from_bs]
        new_bs, new_pos = self._stations[to_bs]

        # 1. registry migration
        old_att = old_bs.attachments.get(client_id)
        old_bs.detach(client_id)
        d = pos.distance_to(new_pos)
        new_bs.attach(
            client_id,
            client.link.address,
            distance=d,
            tx_power=client.tx_power,
            battery=old_att.battery if old_att else client.battery,
        )

        # 2. radio link rewire (association change)
        try:
            self.network.remove_link(client.name, from_bs)
        except NetworkError:
            pass
        try:
            self.network.link(client.name, to_bs)
        except NetworkError:
            self.network.add_link(
                client.name,
                to_bs,
                bandwidth=self.radio_bandwidth,
                latency=self.radio_latency,
            )

        # 3. control-plane re-point
        client.bs_address = new_bs.wireless_address
        client.distance = d
        self._serving[client_id] = to_bs

        event = HandoffEvent(
            time=self.network.scheduler.clock.now,
            client_id=client_id,
            from_bs=from_bs,
            to_bs=to_bs,
            from_sir_db=from_sir,
            to_sir_db=to_sir,
        )
        self.events.append(event)
        return event

    def start_loop(self, interval: float = 1.0) -> None:
        """Periodic handoff evaluation on the simulation clock."""

        def tick() -> None:
            self.step()
            self.network.scheduler.call_after(interval, tick)

        self.network.scheduler.call_after(interval, tick)
