"""Wireless channel substrate: path loss, SIR (paper Eq. 1), power control,
mobility traces.  The paper simulates its wireless network; this package is
that simulation, vectorized."""

from .channel import ChannelError, NoiseModel, PathLossModel
from .sir import from_db, sir, sir_db, sir_matrix, sir_sweep, to_db
from .powercontrol import (
    PowerControlResult,
    feasible_targets,
    foschini_miljanic,
    frame_success_rate,
    sir_balancing_power,
    uniform_power_scaling,
    utility,
)
from .linkquality import (
    bit_error_rate,
    effective_throughput,
    loss_for_sir_db,
    packet_loss_probability,
)
from .mobility import (
    MobilityTrace,
    PiecewiseLinearTrace,
    RandomWaypointTrace,
    StaticTrace,
    approach_and_retreat,
)

__all__ = [
    "ChannelError",
    "NoiseModel",
    "PathLossModel",
    "from_db",
    "sir",
    "sir_db",
    "sir_matrix",
    "sir_sweep",
    "to_db",
    "PowerControlResult",
    "feasible_targets",
    "foschini_miljanic",
    "frame_success_rate",
    "sir_balancing_power",
    "uniform_power_scaling",
    "utility",
    "bit_error_rate",
    "effective_throughput",
    "loss_for_sir_db",
    "packet_loss_probability",
    "MobilityTrace",
    "PiecewiseLinearTrace",
    "RandomWaypointTrace",
    "StaticTrace",
    "approach_and_retreat",
]
