"""Wireless channel models: path gain and receiver noise.

The paper simulates its wireless network (Sec. 6.3): clients at distances
``d_i`` from the base station transmit at powers ``P_i``; the channel is
characterised by *path gains* ``g_i`` and a noise term σ² "calculated based
on the transmitting power" of a reference client.

We use the standard power-law path-loss model of the era's power-control
literature (Goodman & Mandayam 2000, which the paper cites)::

    g(d) = k * d**(-alpha)

with path-loss exponent ``alpha`` (2 = free space, ~4 = urban macro-cell)
and gain constant ``k``.  Optional log-normal shadowing models obstacles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

__all__ = ["PathLossModel", "NoiseModel", "ChannelError"]

ArrayLike = Union[float, np.ndarray]


class ChannelError(ValueError):
    """Raised on unphysical channel parameters."""


@dataclass
class PathLossModel:
    """Deterministic power-law path loss with optional shadowing.

    Parameters
    ----------
    alpha:
        Path-loss exponent.  The cited Goodman–Mandayam model uses 4.
    k:
        Gain at unit distance (antenna constants folded in).
    shadowing_sigma_db:
        If positive, each :meth:`gain` sample is multiplied by a log-normal
        shadowing term with this dB standard deviation (requires ``rng``).
    min_distance:
        Distances are clamped below to keep the near-field singularity out
        of the simulation.
    """

    alpha: float = 4.0
    k: float = 1.0
    shadowing_sigma_db: float = 0.0
    min_distance: float = 1.0

    def __post_init__(self) -> None:
        if self.alpha <= 0:
            raise ChannelError(f"alpha must be positive, got {self.alpha}")
        if self.k <= 0:
            raise ChannelError(f"k must be positive, got {self.k}")
        if self.min_distance <= 0:
            raise ChannelError("min_distance must be positive")
        if self.shadowing_sigma_db < 0:
            raise ChannelError("shadowing sigma must be non-negative")

    def gain(
        self, distance: ArrayLike, rng: Optional[np.random.Generator] = None
    ) -> ArrayLike:
        """Path gain at ``distance`` metres (scalar or vectorized).

        With shadowing enabled an ``rng`` must be supplied; gains then vary
        between calls, which is intentional (fading realisations).
        """
        d = np.maximum(np.asarray(distance, dtype=float), self.min_distance)
        g = self.k * d ** (-self.alpha)
        if self.shadowing_sigma_db > 0.0:
            if rng is None:
                raise ChannelError("shadowing requires an rng")
            shadow_db = rng.normal(0.0, self.shadowing_sigma_db, size=g.shape)
            g = g * 10.0 ** (shadow_db / 10.0)
        if np.ndim(distance) == 0:
            return float(g)
        return g

    def distance_for_gain(self, gain: float) -> float:
        """Invert the deterministic model: the distance giving ``gain``."""
        if gain <= 0:
            raise ChannelError("gain must be positive")
        return (self.k / gain) ** (1.0 / self.alpha)


@dataclass
class NoiseModel:
    """Receiver noise power at the base station.

    The paper ties σ² to a reference transmit power (its Eq. 1 text:
    "the noise factor σ² is calculated based on the transmitting power of
    client (P/10^...)").  We therefore model::

        sigma2 = reference_power / 10**(snr_ref_db / 10)

    i.e. a reference client at unit gain sees ``snr_ref_db`` of SNR.
    """

    reference_power: float = 1.0
    snr_ref_db: float = 40.0

    def __post_init__(self) -> None:
        if self.reference_power <= 0:
            raise ChannelError("reference_power must be positive")

    @property
    def sigma2(self) -> float:
        """Noise power in the same units as transmit power × gain."""
        return self.reference_power / 10.0 ** (self.snr_ref_db / 10.0)

    @classmethod
    def from_sigma2(cls, sigma2: float) -> "NoiseModel":
        """Construct directly from a noise power."""
        if sigma2 <= 0:
            raise ChannelError("sigma2 must be positive")
        return cls(reference_power=sigma2, snr_ref_db=0.0)
