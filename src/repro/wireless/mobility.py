"""Mobility traces: client distance from the base station over time.

FIG8's experiment moves client A from 100 m in to 50 m (x-axis points
0–3) and back out (points 3–5) while client B holds position.  A
:class:`MobilityTrace` yields the distance at each experiment step; the
composable generators below cover the sweeps used in the benches plus a
random-waypoint model for the extension experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

__all__ = [
    "MobilityTrace",
    "StaticTrace",
    "PiecewiseLinearTrace",
    "approach_and_retreat",
    "RandomWaypointTrace",
]


class MobilityTrace:
    """Base: a finite sequence of distances (metres) from the BS."""

    def distances(self) -> np.ndarray:
        """The full trace as an array of shape ``(steps,)``."""
        raise NotImplementedError

    def __len__(self) -> int:
        return len(self.distances())

    def __iter__(self) -> Iterator[float]:
        return iter(self.distances().tolist())


@dataclass
class StaticTrace(MobilityTrace):
    """A client that does not move."""

    distance: float
    steps: int

    def __post_init__(self) -> None:
        if self.distance <= 0:
            raise ValueError("distance must be positive")
        if self.steps < 1:
            raise ValueError("steps must be >= 1")

    def distances(self) -> np.ndarray:
        return np.full(self.steps, float(self.distance))


@dataclass
class PiecewiseLinearTrace(MobilityTrace):
    """Linear interpolation through waypoints ``(step_index, distance)``.

    >>> t = PiecewiseLinearTrace([(0, 100.0), (2, 50.0), (4, 100.0)])
    >>> t.distances().tolist()
    [100.0, 75.0, 50.0, 75.0, 100.0]
    """

    waypoints: Sequence[tuple[int, float]]

    def __post_init__(self) -> None:
        if len(self.waypoints) < 2:
            raise ValueError("need at least two waypoints")
        steps = [s for s, _ in self.waypoints]
        if steps != sorted(steps) or len(set(steps)) != len(steps):
            raise ValueError("waypoint steps must be strictly increasing")
        if any(d <= 0 for _, d in self.waypoints):
            raise ValueError("distances must be positive")

    def distances(self) -> np.ndarray:
        steps = np.array([s for s, _ in self.waypoints], dtype=float)
        dists = np.array([d for _, d in self.waypoints], dtype=float)
        xs = np.arange(int(steps[0]), int(steps[-1]) + 1, dtype=float)
        return np.interp(xs, steps, dists)


def approach_and_retreat(
    far: float = 100.0, near: float = 50.0, in_steps: int = 3, out_steps: int = 2
) -> PiecewiseLinearTrace:
    """FIG8's trace for client A: ``far → near`` then back out.

    Default reproduces the paper: 100 m down to 50 m across x-points 0–3,
    then increasing again across points 3–5.
    """
    return PiecewiseLinearTrace(
        [(0, far), (in_steps, near), (in_steps + out_steps, far)]
    )


class RandomWaypointTrace(MobilityTrace):
    """Random-waypoint mobility within an annulus around the BS.

    Picks uniformly random target distances in ``[d_min, d_max]`` and
    moves toward each at ``speed`` metres/step.  Deterministic under a
    seeded generator.
    """

    def __init__(
        self,
        steps: int,
        d_min: float = 10.0,
        d_max: float = 150.0,
        speed: float = 10.0,
        rng: np.random.Generator | None = None,
        seed: int = 0,
    ) -> None:
        if not (0 < d_min < d_max):
            raise ValueError("require 0 < d_min < d_max")
        if speed <= 0 or steps < 1:
            raise ValueError("speed must be positive and steps >= 1")
        self.steps = steps
        self.d_min = d_min
        self.d_max = d_max
        self.speed = speed
        self._rng = rng if rng is not None else np.random.default_rng(seed)
        self._trace: np.ndarray | None = None

    def distances(self) -> np.ndarray:
        if self._trace is None:
            rng = self._rng
            pos = float(rng.uniform(self.d_min, self.d_max))
            target = float(rng.uniform(self.d_min, self.d_max))
            out = np.empty(self.steps)
            for i in range(self.steps):
                out[i] = pos
                if abs(target - pos) <= self.speed:
                    pos = target
                    target = float(rng.uniform(self.d_min, self.d_max))
                else:
                    pos += self.speed if target > pos else -self.speed
            self._trace = out
        return self._trace
