"""Signal-to-interference ratio — the paper's Eq. (1), vectorized.

For client *i* among *n* clients transmitting to one base station::

    SIR_i = P_i * g_i / ( sum_{j != i} P_j * g_j  +  sigma^2 )

All functions accept numpy arrays; the sweep variants evaluate a whole
experiment series in one vectorized call (per the HPC guide: vectorize the
hot loop, no per-step Python arithmetic).
"""

from __future__ import annotations

from typing import Union

import numpy as np

__all__ = ["sir", "sir_db", "sir_sweep", "to_db", "from_db", "sir_matrix"]


def to_db(x: Union[float, np.ndarray]) -> Union[float, np.ndarray]:
    """Linear power ratio → decibels."""
    return 10.0 * np.log10(x)


def from_db(x_db: Union[float, np.ndarray]) -> Union[float, np.ndarray]:
    """Decibels → linear power ratio."""
    return 10.0 ** (np.asarray(x_db, dtype=float) / 10.0)


def sir(powers: np.ndarray, gains: np.ndarray, sigma2: float) -> np.ndarray:
    """Per-client SIR for one system state.

    Parameters
    ----------
    powers, gains:
        Shape ``(n,)`` transmit powers and path gains.
    sigma2:
        Receiver noise power (>= 0).

    Returns
    -------
    ndarray of shape ``(n,)``: linear SIR per client.
    """
    p = np.asarray(powers, dtype=float)
    g = np.asarray(gains, dtype=float)
    if p.shape != g.shape or p.ndim != 1:
        raise ValueError(f"powers/gains must be equal 1-D shapes, got {p.shape} vs {g.shape}")
    if np.any(p < 0) or np.any(g < 0):
        raise ValueError("powers and gains must be non-negative")
    if sigma2 < 0:
        raise ValueError("sigma2 must be non-negative")
    received = p * g
    total = received.sum()
    interference = total - received  # sum over j != i, no Python loop
    denom = interference + sigma2
    if np.any(denom <= 0):
        raise ValueError("zero denominator: no interference and no noise")
    return received / denom


def sir_db(powers: np.ndarray, gains: np.ndarray, sigma2: float) -> np.ndarray:
    """Per-client SIR in dB (see :func:`sir`)."""
    return to_db(sir(powers, gains, sigma2))


def sir_sweep(powers: np.ndarray, gains: np.ndarray, sigma2: float) -> np.ndarray:
    """Vectorized SIR over a sweep of system states.

    Parameters
    ----------
    powers, gains:
        Shape ``(m, n)``: *m* sweep points × *n* clients.  Either may also
        be shape ``(n,)`` and will broadcast across the sweep.
    sigma2:
        Noise power, scalar or shape ``(m,)``.

    Returns
    -------
    ndarray ``(m, n)`` of linear SIRs.
    """
    p = np.atleast_2d(np.asarray(powers, dtype=float))
    g = np.atleast_2d(np.asarray(gains, dtype=float))
    p, g = np.broadcast_arrays(p, g)
    if np.any(p < 0) or np.any(g < 0):
        raise ValueError("powers and gains must be non-negative")
    received = p * g  # (m, n)
    total = received.sum(axis=1, keepdims=True)  # (m, 1)
    interference = total - received
    s2 = np.asarray(sigma2, dtype=float)
    if s2.ndim == 1:
        s2 = s2[:, None]
    denom = interference + s2
    if np.any(denom <= 0):
        raise ValueError("zero denominator in sweep")
    return received / denom


def sir_matrix(powers: np.ndarray, gain_matrix: np.ndarray, sigma2: np.ndarray) -> np.ndarray:
    """Multi-cell SIR: client *i* heard at base station *b*.

    Parameters
    ----------
    powers:
        ``(n,)`` client transmit powers.
    gain_matrix:
        ``(b, n)`` path gain of client *j* at base station *b*.
    sigma2:
        ``(b,)`` per-base-station noise powers.

    Returns
    -------
    ndarray ``(b, n)``: SIR of client *j*'s signal at base station *b*,
    treating all other clients as interference at that station.  Used by
    the multi-base-station extension experiments.
    """
    p = np.asarray(powers, dtype=float)
    G = np.asarray(gain_matrix, dtype=float)
    s2 = np.asarray(sigma2, dtype=float)
    if G.ndim != 2 or G.shape[1] != p.shape[0]:
        raise ValueError(f"gain_matrix {G.shape} incompatible with powers {p.shape}")
    received = G * p[None, :]  # (b, n)
    total = received.sum(axis=1, keepdims=True)
    return received / (total - received + s2[:, None])
